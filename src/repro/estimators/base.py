"""Interface that single-table estimators implement.

An estimator answers two questions about *one* table (paper Equation 1):

- ``estimate_row_count(pred)``: estimated ``|Q(T)|``;
- ``key_distribution(column, pred)``: estimated per-bin counts of a join
  key among rows satisfying the filter, i.e. ``P(key in bin | Q) * |Q(T)|``.

Estimators that cannot evaluate a predicate class (e.g. BayesCard with LIKE)
raise :class:`~repro.errors.UnsupportedQueryError` so the framework or the
user can fall back to the sampling estimator, exactly as Section 6.1 does
for IMDB-JOB.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.binning import Binning
from repro.data.schema import TableSchema
from repro.data.table import Table
from repro.errors import UnsupportedOperationError
from repro.sql.predicates import Predicate


class BaseTableEstimator(ABC):
    """One instance models one table.

    Persistence contract: a fitted estimator must survive a pickle
    round-trip with bit-identical answers — the serving layer
    (:mod:`repro.serve.artifact`) persists whole fitted models this way.
    Keep state in plain attributes (numpy arrays, dicts, dataclasses);
    no lambdas, no function-local classes, no open handles.
    """

    name: str = "base"
    #: Predicate classes this estimator evaluates (see
    #: :data:`repro.api.protocol.PREDICATE_CLASSES`); estimators raise
    #: :class:`~repro.errors.UnsupportedQueryError` outside this set.
    predicate_classes: tuple[str, ...] = ("equality", "range", "in",
                                          "like", "disjunction", "is_null")

    @abstractmethod
    def fit(self, table: Table, schema: TableSchema,
            key_binnings: dict[str, Binning]) -> "BaseTableEstimator":
        """Train on the table; ``key_binnings`` maps key columns to the
        binning of their equivalent key group."""

    @abstractmethod
    def estimate_row_count(self, pred: Predicate) -> float:
        """Estimated number of rows satisfying ``pred``."""

    @abstractmethod
    def key_distribution(self, column: str, pred: Predicate) -> np.ndarray:
        """Estimated per-bin counts of ``column`` among rows matching
        ``pred`` (unnormalized; sums to at most the row-count estimate —
        rows with NULL keys are excluded since they can never join)."""

    def update(self, new_rows: Table) -> None:
        """Incrementally absorb inserted rows (Section 4.3)."""
        raise UnsupportedOperationError(
            f"{type(self).__name__} does not support incremental updates")

    def supports_update(self) -> bool:
        """Whether this estimator overrides :meth:`update` (the serving
        layer rejects ``POST /update`` early for models that would raise)."""
        return type(self).update is not BaseTableEstimator.update

    def delete(self, deleted_rows: Table) -> None:
        """Incrementally absorb deleted rows (Section 4.3, symmetric to
        :meth:`update`).  Sample-based estimators cannot delete without
        bias and keep the default, which raises."""
        raise UnsupportedOperationError(
            f"{type(self).__name__} does not support incremental deletions")

    def supports_delete(self) -> bool:
        """Whether this estimator overrides :meth:`delete` (the serving
        layer rejects delete requests early for models that would raise)."""
        return type(self).delete is not BaseTableEstimator.delete


ESTIMATOR_REGISTRY: dict[str, type] = {}


def register_estimator(cls: type) -> type:
    """Class decorator adding an estimator to the plug-in registry."""
    ESTIMATOR_REGISTRY[cls.name] = cls
    return cls


def make_table_estimator(name: str, **kwargs) -> BaseTableEstimator:
    """Instantiate a registered estimator by name (user plug-in point)."""
    try:
        cls = ESTIMATOR_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown single-table estimator {name!r}; "
            f"available: {sorted(ESTIMATOR_REGISTRY)}") from None
    return cls(**kwargs)
