"""The estimation service: concurrent cardinality serving over a registry.

This is the online half of the paper made operational: a fitted model is
published into a :class:`~repro.serve.registry.ModelRegistry`, and the
service answers single (``estimate``), batched (``estimate_many``), and
optimizer-style sub-plan (``estimate_subplans``) requests against it, with
per-request latency accounting and a two-level result cache per model.

Sub-plan reuse
--------------
FactorJoin's estimate of a join query decomposes into per-sub-plan bound
computations, so overlapping queries share work.  The service exploits
that across requests: every answered estimate also lands in a *sub-plan
table* keyed on canonical, alias-invariant
:meth:`~repro.sql.query.Query.subplan_key` fingerprints, and

- a plain ``estimate`` that misses the query-level cache consults the
  sub-plan table — a query previously seen as a sub-plan of a *larger*
  query is answered without touching the model;
- ``estimate_subplans`` populates one sub-plan entry per connected
  sub-plan it computes, and assembles its whole answer from the table when
  every sub-plan is already present.

A sub-plan entry carries the *progressive* estimate (Section 5.2), and the
progressive estimator combines factors in exactly the greedy order the
plain-``estimate`` fold uses (see :mod:`repro.core.inference`), so the two
paths produce bit-identical numbers — reuse never changes an answer, it
only skips recomputing it.  Set ``subplan_reuse=False`` to insist on
whole-query caching only.

Workload recording
------------------
``start_recording(path)`` logs every served estimation request to a JSONL
workload file (see :mod:`repro.serve.warmup`); replaying that file against
a freshly loaded artifact pre-populates both cache levels before traffic
is admitted (``repro serve --warm``, ``POST /warmup``).

Concurrency contract
--------------------
Reads are lock-free: a request resolves its model record once and uses
that snapshot throughout, so a concurrent hot-swap never changes the model
under a request mid-flight.  Mutations (``update``, which edits a fitted
model's statistics in place, Section 4.3) serialize on a per-service lock
and invalidate that model's cache (both levels) afterwards.  Estimates
running concurrently with an ``update`` read a consistent model because
numpy in-place adds on the statistics are the only mutation and the online
phase never iterates those arrays across release points — the worst case
is an estimate reflecting a partially applied batch, the same semantics
the paper's incremental maintenance accepts.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from dataclasses import replace

from repro.api import (
    EstimateRequest,
    EstimateResponse,
    FeedbackRequest,
    FeedbackResponse,
    SubplanRequest,
    SubplanResponse,
    UpdateRequest,
    UpdateResponse,
    build_explain_trace,
    check_operation,
    coerce_query,
    q_error,
    with_cache_level,
    with_trace_id,
)
from repro.data.table import Table
from repro.errors import DataError, UnsupportedOperationError
from repro.obs.alerts import (
    NULL_ALERTS,
    AlertEngine,
    default_alert_rules,
)
from repro.obs.drift import (
    NULL_DRIFT,
    DriftMonitor,
    template_of,
)
from repro.obs.flight import NULL_FLIGHT, FlightRecorder
from repro.obs.metrics import (
    QERROR_BUCKETS,
    Histogram,
    MetricsRegistry,
)
from repro.obs.slo import (
    NULL_SLO,
    PLAN_QUALITY_OBJECTIVE,
    PLAN_QUALITY_THRESHOLD,
    SloTracker,
)
from repro.obs.trace import Tracer, current_trace_id, trace_span
from repro.serve.cache import EstimateCache, query_fingerprint
from repro.serve.registry import ModelRecord, ModelRegistry
from repro.serve.warmup import (
    KIND_ESTIMATE,
    KIND_SUBPLANS,
    WorkloadEntry,
    WorkloadRecorder,
)
from repro.sql.query import Query

DEFAULT_MODEL = "default"

#: Deprecation alias: the pre-``/v1`` name of the typed response object.
EstimateResult = EstimateResponse


class LatencyStats:
    """Deprecated shim: a view over an :mod:`repro.obs` histogram.

    Latency accounting now lives in the service's
    :class:`~repro.obs.metrics.MetricsRegistry` (the
    ``repro_request_seconds`` histogram), where percentiles are exact
    over the whole stream instead of a recent window.  This class keeps
    the pre-``repro.obs`` surface working — ``service.latency.count``,
    ``.observe()``, ``.summary()`` with the legacy ``*_ms`` keys — as a
    filtered view over that shared histogram.  New code should read
    ``service.metrics`` directly.
    """

    def __init__(self, window: int = 4096, histogram=None,
                 match: dict | None = None, labels: dict | None = None):
        #: Kept for signature compatibility; the histogram is windowless.
        self.window = window
        if histogram is None:
            histogram = Histogram("latency_seconds")
        self._histogram = histogram
        self._match = match
        self._labels = labels or {}

    @property
    def count(self) -> int:
        return self._histogram.snapshot(self._match)[0]

    @property
    def total_seconds(self) -> float:
        return self._histogram.snapshot(self._match)[1]

    def observe(self, seconds: float) -> None:
        """Record one request's wall-clock seconds."""
        self._histogram.observe(seconds, **self._labels)

    def summary(self) -> dict:
        """JSON-ready count / mean / p50 / p99 (legacy key names)."""
        merged = self._histogram.summary(self._match)
        return {
            "count": merged["count"],
            "total_seconds": merged["total"],
            "mean_ms": merged["mean"] * 1e3,
            "p50_ms": merged["p50"] * 1e3,
            "p99_ms": merged["p99"] * 1e3,
        }


class EstimationService:
    """Serves estimates from registered models; safe under concurrency.

    Parameters
    ----------
    registry:
        The model registry to serve from (a fresh one by default).
    cache_size:
        Query-level LRU entries per model.
    subplan_reuse:
        Enable the cross-request sub-plan table (default True).
    subplan_cache_size:
        Sub-plan-table entries per model (default ``8 * cache_size``).
    record_path:
        Start recording served requests to this JSONL path immediately
        (equivalent to calling :meth:`start_recording` after construction).
    metrics:
        The :class:`~repro.obs.metrics.MetricsRegistry` to instrument
        against (a fresh one by default; pass
        :data:`~repro.obs.metrics.NULL_METRICS` to disable telemetry).
    tracer:
        The :class:`~repro.obs.trace.Tracer` recording per-request span
        trees (a fresh one by default; pass
        :data:`~repro.obs.trace.NULL_TRACER` to disable tracing).
    drift:
        The :class:`~repro.obs.drift.DriftMonitor` attributing feedback
        accuracy per model/shard/table/template (a fresh one by default
        when metrics are enabled; tests inject fake-clock monitors).
    alerts:
        The :class:`~repro.obs.alerts.AlertEngine` evaluated by
        :meth:`evaluate_alerts` (defaults to one loaded with
        :func:`~repro.obs.alerts.default_alert_rules`).
    flight:
        The :class:`~repro.obs.flight.FlightRecorder` keeping
        worst-offender debug bundles by q-error and latency.
    """

    def __init__(self, registry: ModelRegistry | None = None,
                 cache_size: int = 1024, subplan_reuse: bool = True,
                 subplan_cache_size: int | None = None,
                 record_path=None, metrics=None, tracer=None,
                 drift=None, alerts=None, flight=None):
        self.registry = registry if registry is not None else ModelRegistry()
        self.cache_size = cache_size
        self.subplan_reuse = subplan_reuse
        self.subplan_cache_size = subplan_cache_size
        self._caches: dict[str, EstimateCache] = {}
        self._caches_lock = threading.Lock()
        self._update_lock = threading.Lock()
        # (name, version) pairs whose model mutated in place via update();
        # their publish-time artifact fingerprints are stale (see
        # _fingerprint_of)
        self._mutated_records: set[tuple[str, int]] = set()
        self._recorder: WorkloadRecorder | None = None
        self._recorder_lock = threading.Lock()
        # thread-local: warming replays must not be recorded, but other
        # threads' genuine traffic arriving mid-warmup must be
        self._suspended = threading.local()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self._request_seconds = self.metrics.histogram(
            "repro_request_seconds",
            "Request latency by endpoint and model (seconds).")
        self._qerror = self.metrics.histogram(
            "repro_qerror",
            "Rolling q-error of served estimates, per model "
            "(ground truth via POST /v1/feedback or record_truth).",
            buckets=QERROR_BUCKETS)
        self._shard_qerror = self.metrics.histogram(
            "repro_shard_qerror",
            "Rolling q-error attributed to each shard the estimate read.",
            buckets=QERROR_BUCKETS)
        self._perror = self.metrics.histogram(
            "repro_perror",
            "Rolling P-error (plan-cost suboptimality vs the truecard "
            "oracle) of plan-cost feedback, per model.",
            buckets=QERROR_BUCKETS)
        self._feedback_total = self.metrics.counter(
            "repro_feedback_total",
            "Ground-truth feedback samples absorbed, per model.")
        # bound (endpoint, model) latency children: the per-request
        # observe then skips label sorting and child lookup (a benign
        # race on setdefault hands back equivalent handles)
        self._bound_latency: dict[tuple[str, str], object] = {}
        # deprecated views over repro_request_seconds (same numbers the
        # old windowed LatencyStats reported, now stream-exact)
        self.latency = LatencyStats(
            histogram=self._request_seconds,
            match={"endpoint": ("estimate", "subplans")},
            labels={"endpoint": "estimate"})
        self.update_latency = LatencyStats(
            histogram=self._request_seconds,
            match={"endpoint": "update"},
            labels={"endpoint": "update"})
        # scrape-time collectors: these metrics' source of truth lives
        # behind other components' locks (cache counters, registry
        # records, cluster worker health), so /metrics reads one
        # consistent snapshot from the owner instead of mirroring
        self.metrics.register_collector(self._collect_cache_metrics)
        self.metrics.register_collector(self._collect_registry_metrics)
        self.metrics.register_collector(self._collect_model_metrics)
        # declared objectives over the signals above: availability and
        # latency from the request paths, accuracy from /v1/feedback;
        # burn rates export via the collector (repro_slo_burn_rate) and
        # GET /v1/slo.  Disabled alongside metrics so the overhead bench
        # compares genuinely uninstrumented serving.
        self.slo = SloTracker() if self.metrics.enabled else NULL_SLO
        self.slo.declare(
            "availability", objective=0.999,
            description="Requests answered without error")
        self.slo.declare(
            "latency", objective=0.99, threshold=0.1,
            description="Estimation requests answered within 100 ms")
        self.slo.declare(
            "qerror", objective=0.9, threshold=10.0,
            description="Feedback q-errors within 10x of ground truth")
        self.slo.declare(
            "plan_quality", objective=PLAN_QUALITY_OBJECTIVE,
            threshold=PLAN_QUALITY_THRESHOLD,
            description="Plan-cost feedback P-errors within "
                        f"{PLAN_QUALITY_THRESHOLD}x of the truecard-"
                        "oracle plan")
        self.metrics.register_collector(self.slo.collect)
        # drift attribution, alerting, and the flight recorder ride the
        # same enablement switch as the rest of the telemetry; each is
        # injectable so tests (and the detection bench) drive them with
        # fake clocks
        self.drift = (drift if drift is not None
                      else (DriftMonitor() if self.metrics.enabled
                            else NULL_DRIFT))
        self.alerts = (alerts if alerts is not None
                       else (AlertEngine(rules=default_alert_rules())
                             if self.metrics.enabled else NULL_ALERTS))
        self.flight = (flight if flight is not None
                       else (FlightRecorder() if self.metrics.enabled
                             else NULL_FLIGHT))
        self.metrics.register_collector(self._collect_drift_metrics)
        self.metrics.register_collector(self.alerts.collect)
        self._alert_ticker: threading.Thread | None = None
        self._alert_ticker_stop: threading.Event | None = None
        self.started_at = time.time()
        self.registry.add_swap_listener(self._on_swap)
        if record_path is not None:
            self.start_recording(record_path)

    def _latency_bound(self, endpoint: str, model: str):
        """The pre-resolved ``repro_request_seconds`` child for one
        (endpoint, model) pair — the request hot path's observe handle."""
        key = (endpoint, model)
        bound = self._bound_latency.get(key)
        if bound is None:
            bound = self._bound_latency.setdefault(
                key, self._request_seconds.bound(endpoint=endpoint,
                                                 model=model))
        return bound

    # -- model management ------------------------------------------------------

    def register(self, name: str, model, metadata: dict | None = None
                 ) -> ModelRecord:
        """Publish a fitted model for serving (atomic replace)."""
        return self.registry.publish(name, model, metadata=metadata)

    def _on_swap(self, name: str, record: ModelRecord | None) -> None:
        cache = self._caches.get(name)
        if cache is not None:
            cache.invalidate()

    def _cache_of(self, name: str) -> EstimateCache:
        cache = self._caches.get(name)
        if cache is None:
            with self._caches_lock:
                cache = self._caches.setdefault(
                    name, EstimateCache(
                        self.cache_size,
                        subplan_max_size=self.subplan_cache_size))
        return cache

    def _resolve(self, model: str | None) -> ModelRecord:
        if model is None:
            names = self.registry.names()
            if len(names) == 1:
                return self.registry.record(names[0])
            model = DEFAULT_MODEL
        return self.registry.record(model)

    def _default_name(self) -> str:
        """The registry name a ``model=None`` request resolves to."""
        return self._resolve(None).name

    @staticmethod
    def _as_query(query: Query | str) -> Query:
        """Deprecated shim: use :func:`repro.api.coerce_query`."""
        return coerce_query(query)

    # -- workload recording ----------------------------------------------------

    def start_recording(self, path) -> WorkloadRecorder:
        """Log every served estimation request to a JSONL workload file
        (closing any previous recorder); see :mod:`repro.serve.warmup`."""
        recorder = WorkloadRecorder(path)
        with self._recorder_lock:
            previous, self._recorder = self._recorder, recorder
        if previous is not None:
            previous.close()
        return recorder

    def stop_recording(self) -> int:
        """Stop recording; returns how many entries the recorder wrote."""
        with self._recorder_lock:
            recorder, self._recorder = self._recorder, None
        if recorder is None:
            return 0
        recorder.close()
        return recorder.recorded

    @contextlib.contextmanager
    def recording_suspended(self):
        """Context manager: requests served by *this thread* inside the
        block are not recorded.

        Cache warming replays a workload *through* the service; without
        suspension, warming a recording service would copy the old
        workload into the new log.  The suspension is thread-local, so a
        live ``POST /warmup`` does not stop concurrent client traffic on
        other threads from being recorded.
        """
        self._suspended.count = getattr(self._suspended, "count", 0) + 1
        try:
            yield self
        finally:
            self._suspended.count -= 1

    def _record(self, kind: str, query: Query, model: str | None,
                min_tables: int = 1) -> None:
        if getattr(self._suspended, "count", 0):
            return
        with self._recorder_lock:
            recorder = self._recorder
        if recorder is None:
            return
        recorder.record(WorkloadEntry(sql=query.to_sql(), kind=kind,
                                      model=model, min_tables=min_tables))

    # -- estimation ------------------------------------------------------------

    def estimate(self, query: Query | str,
                 model: str | None = None) -> EstimateResponse:
        """Single-query estimate: query-level cache, then the sub-plan
        table, then the model.  Shim over :meth:`serve_estimate`."""
        return self.serve_estimate(EstimateRequest(query=query,
                                                   model=model))

    def serve_estimate(self, request: EstimateRequest) -> EstimateResponse:
        """Answer one typed :class:`~repro.api.EstimateRequest`.

        With ``request.explain``, the response carries an
        :class:`~repro.api.ExplainTrace` (inference knobs, key groups and
        bins touched, shard pruning, cache level hit); with
        ``request.trace``, additionally the request's rendered span tree.
        """
        with self.tracer.trace("request.estimate",
                               model=request.model or "") as root:
            try:
                response = self._estimate_with(
                    self._resolve(request.model), request.query,
                    requested_model=request.model,
                    explain=request.explain)
            except Exception:
                self.slo.record("availability", False)
                raise
        response = self._attach_trace(response, root,
                                      want_tree=request.trace)
        self._flight_latency(response, root)
        return response

    def _flight_latency(self, response: EstimateResponse, root) -> None:
        """Offer a served estimate to the flight recorder's latency
        ring; the bundle (with the request's span tree, popped from the
        tracer if :meth:`_attach_trace` did not already) is assembled
        only for admitted offenders."""
        seconds = response.seconds
        if seconds is None or not self.flight.admits("latency", seconds):
            return
        trace = response.trace
        if trace is None and root is not None:
            record = self.tracer.record_of(root)
            if record is not None:
                trace = record.to_json()
        self.flight.record("latency", seconds, {
            "sql": response.sql,
            "model": response.model,
            "version": response.version,
            "estimate": response.estimate,
            "seconds": seconds,
            "cached": response.cached,
            "cache_level": response.cache_level,
            "trace_id": root.trace_id if root is not None else None,
            "trace": trace,
        })

    def _attach_trace(self, response: EstimateResponse, root,
                      want_tree: bool = False) -> EstimateResponse:
        """Stamp the recorded trace onto a response: the trace id on the
        explain (always, when tracing is on), and the rendered span tree
        when the request asked for it (``root`` is None under the null
        tracer)."""
        if root is None:
            return response
        if response.explain is not None:
            response = replace(response, explain=with_trace_id(
                response.explain, root.trace_id))
        if want_tree:
            record = self.tracer.record_of(root)
            if record is not None:
                response = replace(response, trace=record.to_json())
        return response

    @staticmethod
    def _touched_shards(model, query: Query):
        """The shard indices an estimate of ``query`` reads (the same
        pruning introspection the explain trace reports), or None for
        unsharded models / any failure.  Cache entries are tagged with
        this so a per-shard hot-swap evicts only what it invalidates."""
        candidate_shards = getattr(model, "candidate_shards", None)
        if candidate_shards is None:
            return None
        touched: set[int] = set()
        for alias in query.aliases:
            try:
                touched.update(candidate_shards(query, alias))
            except Exception:
                return None
        return frozenset(touched)

    def _estimate_with(self, record: ModelRecord, query: Query | str,
                       requested_model: str | None = None,
                       explain: bool = False) -> EstimateResponse:
        start = time.perf_counter()
        with trace_span("parse"):
            query = coerce_query(query)
        cache = self._cache_of(record.name)
        with trace_span("cache.lookup") as lookup_span:
            key = query_fingerprint(query)
            stamp = cache.invalidations
            value = cache.get(key)
            # a cache entry read while `record` is still published belongs
            # to record's version (every swap invalidates before the new
            # version can repopulate) — but a request pinned to a
            # swapped-out record (estimate_many mid-batch) must not serve
            # the *new* version's entries under the old version label, so
            # verify currency AFTER the read and recompute instead of
            # trusting a shared cache
            if value is not None and not self.registry.is_current(record):
                value = None
            cache_level = "query" if value is not None else None
            skey = None
            if value is None and self.subplan_reuse:
                skey = query.subplan_key()
                value = cache.get_subplan(skey)
                if value is not None and not self.registry.is_current(
                        record):
                    value = None
                if value is not None:
                    cache_level = "subplan"
                    # promote: the next identical request is a query-level
                    # hit
                    cache.put(key, value, stamp=stamp,
                              shards=self._touched_shards(record.model,
                                                          query))
            if lookup_span is not None:
                lookup_span.annotate(level=cache_level or "miss")
        if value is None:
            with trace_span("model.estimate", model=record.name):
                value = float(record.model.estimate(query))
            # cache only answers from the still-published model version
            # (estimate_many pins a record across a hot-swap) and only if
            # no update/swap invalidated the cache mid-computation; a swap
            # landing between these two checks still bumps the stamp, so
            # the put drops in every interleaving
            if self.registry.is_current(record):
                shards = self._touched_shards(record.model, query)
                cache.put(key, value, stamp=stamp, shards=shards)
                if skey is not None:
                    cache.put_subplan(skey, value, stamp=stamp,
                                      shards=shards)
        self._record(KIND_ESTIMATE, query, requested_model)
        trace = None
        if explain:
            trace = with_cache_level(
                build_explain_trace(record.model, query), cache_level)
        seconds = time.perf_counter() - start
        # the exemplar links this observation's bucket to its trace, so
        # a slow p99 bucket on a dashboard resolves to a concrete trace
        self._latency_bound("estimate", record.name).observe(
            seconds, trace_id=current_trace_id())
        self.slo.record("availability", True)
        self.slo.record_value("latency", seconds)
        return EstimateResponse(estimate=value, model=record.name,
                                version=record.version,
                                cached=cache_level is not None,
                                seconds=seconds, sql=query.to_sql(),
                                cache_level=cache_level, explain=trace)

    def estimate_many(self, queries: list[Query | str],
                      model: str | None = None) -> list[EstimateResponse]:
        """Batched estimates, all against one resolved model snapshot
        (a hot-swap mid-batch does not mix versions)."""
        record = self._resolve(model)
        return [self._estimate_with(record, q, requested_model=model)
                for q in queries]

    def explain(self, query: Query | str, model: str | None = None,
                trace: bool = False) -> EstimateResponse:
        """Estimate with a full :class:`~repro.api.ExplainTrace` attached
        (the ``POST /v1/explain`` entry point); ``trace=True`` also
        attaches the request's rendered span tree
        (``POST /v1/explain?trace=true``)."""
        return self.serve_estimate(EstimateRequest(query=query,
                                                   model=model,
                                                   explain=True,
                                                   trace=trace))

    def estimate_subplans(self, query: Query | str,
                          model: str | None = None,
                          min_tables: int = 1) -> dict[frozenset, float]:
        """Estimates for every connected sub-plan (optimizer interface);
        shim over :meth:`serve_subplans` returning the bare map."""
        return self.serve_subplans(SubplanRequest(
            query=query, model=model, min_tables=min_tables)).subplans

    def serve_subplans(self, request: SubplanRequest) -> SubplanResponse:
        """Answer one typed :class:`~repro.api.SubplanRequest`.

        Consults the query-level cache first; on a miss, the whole map is
        assembled from the sub-plan table when every sub-plan is already
        present (all-or-nothing — a partial set saves nothing, since the
        progressive estimator recomputes the map as one pass).  Computed
        maps populate both levels, so later *plain* estimates of any
        contained sub-plan are served without inference.
        """
        with self.tracer.trace("request.subplans",
                               model=request.model or ""):
            try:
                return self._subplans_with(request)
            except Exception:
                self.slo.record("availability", False)
                raise

    def _subplans_with(self, request: SubplanRequest) -> SubplanResponse:
        start = time.perf_counter()
        model, min_tables = request.model, request.min_tables
        record = self._resolve(model)
        with trace_span("parse"):
            query = coerce_query(request.query)
        cache = self._cache_of(record.name)
        with trace_span("cache.lookup") as lookup_span:
            key = query_fingerprint(query,
                                    request=("subplans", min_tables))
            stamp = cache.invalidations
            value = cache.get(key)
            # same currency rule as _estimate_with: a swap landing after
            # the read means the entry may belong to the newer version
            if value is not None and not self.registry.is_current(record):
                value = None
            level = "query" if value is not None else None
            skeys = None
            if value is None and self.subplan_reuse:
                # prefer the model's own fingerprint surface (FactorJoin.
                # subplan_fingerprints mirrors its estimate_subplans key
                # set by construction); fall back to the query's for
                # models that do not expose one
                fingerprints = getattr(record.model,
                                       "subplan_fingerprints", None)
                skeys = (fingerprints(query, min_tables=min_tables)
                         if fingerprints is not None
                         else query.subplan_keys(min_tables=min_tables))
                found = cache.lookup_subplans(list(skeys.values()))
                if found is not None and self.registry.is_current(record):
                    value = {subset: found[k]
                             for subset, k in skeys.items()}
                    level = "subplan"
                    cache.put(key, dict(value), stamp=stamp,
                              shards=self._touched_shards(record.model,
                                                          query))
            if lookup_span is not None:
                lookup_span.annotate(level=level or "miss")
        if value is None:
            with trace_span("model.subplans", model=record.name):
                value = record.model.estimate_subplans(
                    query, min_tables=min_tables)
            if self.registry.is_current(record):
                # sub-plans of one query share its touched-shard set (a
                # superset of each sub-plan's own — conservative)
                shards = self._touched_shards(record.model, query)
                cache.put(key, dict(value), stamp=stamp, shards=shards)
                if skeys is not None:
                    cache.put_subplans(
                        {skeys[s]: v for s, v in value.items()
                         if s in skeys}, stamp=stamp, shards=shards)
        self._record(KIND_SUBPLANS, query, model, min_tables=min_tables)
        seconds = time.perf_counter() - start
        self._latency_bound("subplans", record.name).observe(
            seconds, trace_id=current_trace_id())
        self.slo.record("availability", True)
        self.slo.record_value("latency", seconds)
        # a copied map: callers mutating their result must not poison
        # the cache
        return SubplanResponse(subplans=dict(value), model=record.name,
                               version=record.version, seconds=seconds,
                               sql=query.to_sql(), min_tables=min_tables)

    # -- planning --------------------------------------------------------------

    def serve_plan(self, request) -> "PlanResponse":
        """Choose a join order for one query (``POST /v1/plan``).

        The sub-plan lattice comes through the same path as
        ``serve_subplans`` — two-level cache, workload recording — then
        the DP optimizer picks the cheapest order under the service's
        estimates (equal-cost ties resolved by
        :func:`~repro.optimizer.dp.plan_order_key`, so the same model
        always answers a bit-identical plan), and the order plus every
        injected cardinality render as hint text in the requested
        dialect.  Returns a typed
        :class:`~repro.plan.messages.PlanResponse`.
        """
        from repro.optimizer.dp import make_oracle, optimize
        from repro.optimizer.plans import JoinPlan
        from repro.plan.hints import hints_of, leading_as_json, \
            leading_tree, render_hints
        from repro.plan.messages import PlanResponse

        with self.tracer.trace("request.plan",
                               model=request.model or "") as root:
            try:
                start = time.perf_counter()
                record = self._resolve(request.model)
                sub = self._subplans_with(SubplanRequest(
                    query=request.query, model=request.model,
                    min_tables=1))
                query = coerce_query(request.query)
                with trace_span("optimize"):
                    if len(query.aliases) == 1:
                        plan, cost = JoinPlan.leaf(query.aliases[0]), 0.0
                    else:
                        plan, cost = optimize(
                            query, make_oracle(sub.subplans))
                    hints = hints_of(plan, sub.subplans)
                    text = render_hints(hints, request.dialect)
            except Exception:
                self.slo.record("availability", False)
                raise
            seconds = time.perf_counter() - start
            self._latency_bound("plan", record.name).observe(
                seconds, trace_id=current_trace_id())
        trace = None
        if request.trace and root is not None:
            trace_record = self.tracer.record_of(root)
            if trace_record is not None:
                trace = trace_record.to_json()
        return PlanResponse(
            join_order=plan.render(),
            leading=leading_as_json(leading_tree(plan)),
            cardinalities=hints.cardinalities(),
            hint_text=text, dialect=request.dialect,
            estimated_cost=cost, model=sub.model, version=sub.version,
            seconds=seconds, sql=sub.sql, trace=trace)

    # -- mutation --------------------------------------------------------------

    @staticmethod
    def _check_batch(model, table_name: str, rows: Table,
                     op: str = "insert") -> Table:
        """Validate and normalize a mutation batch *before* any mutation.

        The model's ``update`` mutates statistics column by column, so a
        malformed batch failing midway would leave it half-updated —
        reject mismatched column sets up front instead.  Column *order*
        is normalized to the served table's storage order (JSON objects
        are unordered; order is a serving-layer concern, not an error).
        Also rejects models that cannot absorb the operation, so the
        caller gets a clean error instead of a partial mutation: via the
        per-table ``supports_update`` / ``supports_delete`` hooks when
        the model exposes them (FactorJoin's are estimator-derived), and
        via the declared :class:`~repro.api.Capabilities` otherwise
        (:func:`repro.api.check_operation`).
        """
        hook_name = "supports_update" if op == "insert" else "supports_delete"
        hook = getattr(model, hook_name, None)
        if callable(hook):
            if op == "insert" and not hook(table_name):
                raise UnsupportedOperationError(
                    f"the served model cannot absorb inserts into "
                    f"{table_name!r} (its table estimator has no update)")
            if op != "insert" and not hook(table_name):
                raise UnsupportedOperationError(
                    f"the served model cannot absorb deletions from "
                    f"{table_name!r} (its table estimator has no delete)")
        else:
            capabilities = getattr(model, "capabilities", None)
            if callable(capabilities):
                check_operation(capabilities(),
                                "update" if op == "insert" else "delete")
        try:
            want = model.database.table(table_name).column_names
        except Exception:
            return rows
        if set(want) != set(rows.column_names):
            raise DataError(
                f"{op} into {table_name!r} must provide exactly the "
                f"columns {sorted(want)}; got "
                f"{sorted(rows.column_names)}")
        if want != rows.column_names:
            return Table(rows.name, [rows[c] for c in want])
        return rows

    def update(self, table_name: str, new_rows: Table | None = None,
               model: str | None = None,
               deleted_rows: Table | None = None) -> dict:
        """Apply an incremental insert and/or delete to a served model
        (Section 4.3); shim over :meth:`serve_update` returning the
        legacy summary dict."""
        return self.serve_update(UpdateRequest(
            table=table_name, rows=new_rows, deleted_rows=deleted_rows,
            model=model)).describe()

    def serve_update(self, request: UpdateRequest) -> UpdateResponse:
        """Apply one typed :class:`~repro.api.UpdateRequest`.

        Serialized against other updates.  Both batches are validated
        before any statistic mutates, and the model's cache (both levels)
        is invalidated even when the update raises partway — a failed
        mutation must never leave pre-failure entries serving.
        """
        with self.tracer.trace("request.update",
                               model=request.model or ""):
            try:
                return self._update_with(request)
            except Exception:
                self.slo.record("availability", False)
                raise

    def _update_with(self, request: UpdateRequest) -> UpdateResponse:
        start = time.perf_counter()
        table_name = request.table
        new_rows, deleted_rows = request.rows, request.deleted_rows
        record = self._resolve(request.model)
        if new_rows is None and deleted_rows is None:
            # reject unsupported models first (the clearer error), then
            # the empty batch
            if not getattr(record.model, "supports_update",
                           lambda *a: True)(table_name):
                raise UnsupportedOperationError(
                    f"the served model cannot absorb inserts into "
                    f"{table_name!r} (its table estimator has no update)")
            raise DataError("update needs new_rows and/or deleted_rows")
        if new_rows is not None:
            new_rows = self._check_batch(record.model, table_name,
                                         new_rows, op="insert")
        if deleted_rows is not None:
            deleted_rows = self._check_batch(record.model, table_name,
                                             deleted_rows, op="delete")
        with self._update_lock, trace_span("model.update",
                                           model=record.name,
                                           table=table_name):
            try:
                if deleted_rows is not None:
                    record.model.update(table_name, new_rows,
                                        deleted_rows=deleted_rows)
                else:
                    record.model.update(table_name, new_rows)
            finally:
                self._cache_of(record.name).invalidate()
                # the artifact fingerprint no longer describes the mutated
                # model; snapshots taken from here on must stamp a content
                # hash instead (see _fingerprint_of).  Tracked out of band:
                # ModelRecord (and its metadata dict) is an immutable
                # snapshot that concurrent GET /models responses iterate
                self._mutated_records.add((record.name, record.version))
        seconds = time.perf_counter() - start
        self._latency_bound("update", record.name).observe(
            seconds, trace_id=current_trace_id())
        self.slo.record("availability", True)
        return UpdateResponse(
            model=record.name,
            version=record.version,
            table=table_name,
            rows=len(new_rows) if new_rows is not None else 0,
            deleted_rows=(len(deleted_rows) if deleted_rows is not None
                          else 0),
            seconds=seconds)

    def hot_swap_shard(self, shard: int, artifact,
                       model: str | None = None) -> dict:
        """Republish one shard of a served ensemble from a refreshed
        sub-artifact (``POST /v1/swap``), without taking the model out
        of serving.

        The swap itself is the model's atomic state publish — concurrent
        estimates finish against whichever state they resolved.  Cache
        eviction is scoped by what the swap could have changed: when the
        incoming shard's mergeable statistics equal the outgoing one's
        (``stats_changed`` false — a refit of the same rows, a
        re-encoded artifact), only entries whose recorded touched-shards
        include the swapped shard are evicted
        (:meth:`~repro.serve.cache.EstimateCache.invalidate_shards`);
        when they differ, the merged statistics every query reads moved,
        so both cache levels clear wholesale.
        """
        record = self._resolve(model)
        swap = getattr(record.model, "hot_swap_shard", None)
        if not callable(swap):
            raise UnsupportedOperationError(
                f"model {record.name!r} ({record.kind}) is not a sharded "
                f"ensemble; per-shard hot-swap needs one")
        cache = self._cache_of(record.name)
        with self._update_lock:
            # hot_swap_shard publishes its new state as the final atomic
            # step: any failure (bad index, missing artifact, worker
            # trouble) leaves the served state untouched, so a failed
            # swap must NOT cost the warmed cache — propagate as-is
            info = swap(shard, artifact)
            if info.get("stats_changed", True):
                cache.invalidate()
                evicted = None
            else:
                evicted = cache.invalidate_shards([shard])
            # the publish-time artifact fingerprint no longer describes
            # the served ensemble (see serve_update)
            self._mutated_records.add((record.name, record.version))
        return {
            "model": record.name,
            "version": record.version,
            **info,
            "evicted": evicted,
            "full_invalidation": evicted is None,
        }

    # -- accuracy telemetry ----------------------------------------------------

    def record_feedback(self, request: FeedbackRequest
                        ) -> FeedbackResponse:
        """Absorb one ground-truth sample (``POST /v1/feedback``).

        Records the q-error into the rolling per-model histogram
        (``repro_qerror``) and, for sharded ensembles, into the per-shard
        histogram (``repro_shard_qerror``) for every shard the estimate
        read — the raw drift signal feedback-driven refresh consumes.
        When the request does not pin the estimate it refers to, the
        service re-derives it (cheap: the answer is normally still
        cached); that re-derivation is never workload-recorded.

        When the request also carries plan costs (``plan_cost`` /
        ``optimal_cost`` from a plan harness, both under true
        cardinalities), their P-error lands in the per-model
        ``repro_perror`` histogram and the ``plan_quality`` SLO — the
        end-to-end counterpart of the q-error signal.
        """
        with self.tracer.trace("request.feedback",
                               model=request.model or ""):
            record = self._resolve(request.model)
            with trace_span("parse"):
                query = coerce_query(request.query)
            estimate = request.estimate
            if estimate is None:
                with self.recording_suspended():
                    estimate = self._estimate_with(
                        record, query,
                        requested_model=request.model).estimate
            error = q_error(estimate, request.true_cardinality)
            plan_error = None
            if request.plan_cost is not None:
                from repro.api import p_error

                plan_error = p_error(request.plan_cost,
                                     request.optimal_cost)
            shards = self._touched_shards(record.model, query)
            shard_list = tuple(sorted(shards)) if shards else ()
            with trace_span("qerror.record", model=record.name):
                self._qerror.observe(error, trace_id=current_trace_id(),
                                     model=record.name)
                for shard in shard_list:
                    self._shard_qerror.observe(error, model=record.name,
                                               shard=shard)
                self._feedback_total.inc(model=record.name)
                self.slo.record_value("qerror", error)
                if plan_error is not None:
                    self._perror.observe(plan_error,
                                         trace_id=current_trace_id(),
                                         model=record.name)
                    self.slo.record_value("plan_quality", plan_error)
                if self.drift.enabled:
                    tables = tuple(sorted(
                        {query.table_of(a) for a in query.aliases}))
                    sample = self.drift.sample_of(
                        record.name, "qerror", error, shards=shard_list,
                        tables=tables, template=template_of(query))
                    self._absorb_drift(record.model, sample)
                    if plan_error is not None:
                        self._absorb_drift(record.model, replace(
                            sample, metric="perror", value=plan_error))
            if self.flight.enabled and self.flight.admits("qerror", error):
                self.flight.record("qerror", error, {
                    "sql": query.to_sql(),
                    "model": record.name,
                    "version": record.version,
                    "estimate": float(estimate),
                    "true_cardinality": float(request.true_cardinality),
                    "q_error": error,
                    "p_error": plan_error,
                    "shards": list(shard_list),
                    "trace_id": current_trace_id(),
                    "cache": self._cache_of(record.name).counters(),
                })
            return FeedbackResponse(
                model=record.name, version=record.version,
                estimate=float(estimate),
                true_cardinality=float(request.true_cardinality),
                q_error=error, sql=query.to_sql(), shards=shard_list,
                p_error=plan_error)

    def record_truth(self, query: Query | str,
                     model: str | None = None) -> FeedbackResponse:
        """Compute ground truth locally and record it as feedback.

        The truescan path: when the served model retains its raw tables
        (``model.database`` — true for the ``truescan`` table estimator
        and every model fitted in-process), the exact cardinality is one
        scan away, so accuracy telemetry needs no external executor.
        Raises :class:`~repro.errors.UnsupportedOperationError` for
        models serving without their data.
        """
        record = self._resolve(model)
        database = getattr(record.model, "database", None)
        if database is None:
            raise UnsupportedOperationError(
                f"model {record.name!r} serves without its raw tables; "
                f"ground truth must come from the executor via "
                f"POST /v1/feedback")
        from repro.engine.executor import CardinalityExecutor

        parsed = coerce_query(query)
        truth = float(CardinalityExecutor(database).cardinality(parsed))
        return self.record_feedback(FeedbackRequest(
            query=parsed, true_cardinality=truth, model=model))

    def _absorb_drift(self, model, sample) -> None:
        """Route one stamped drift sample: shard-scope attribution is
        delegated to the owning workers when the model is cluster-backed
        (its ``absorb_drift`` hook), everything else — plus any shard a
        worker could not take — is absorbed locally.  Each attribution
        key therefore lives in exactly one process, which is what makes
        the federated ``/v1/drift`` merge lossless."""
        delegated = ()
        hook = getattr(model, "absorb_drift", None)
        if callable(hook) and sample.shards:
            try:
                delegated = tuple(hook(sample))
            except Exception:
                delegated = ()
        if delegated:
            sample = replace(sample, shards=tuple(
                s for s in sample.shards if s not in delegated))
        self.drift.absorb(sample)

    def _drift_extras(self) -> list[dict]:
        """Federated drift snapshots from every cluster-backed model's
        ``collect_drift`` hook (one broken model degrades the view,
        never kills it)."""
        extras = []
        for record in self.registry.records():
            hook = getattr(record.model, "collect_drift", None)
            if not callable(hook):
                continue
            try:
                extras.append(hook())
            except Exception:
                continue
        return extras

    def drift_report(self, top: int = 10):
        """The merged :class:`~repro.obs.drift.DriftReport` over the
        service's own monitor plus every cluster-backed model's
        federated worker snapshots — one view regardless of where the
        attribution keys live."""
        return self.drift.report(extra=self._drift_extras(), top=top)

    def drift_v1(self, top: int = 10) -> dict:
        """The ``GET /v1/drift`` body: per-status counts, the ``top``
        worst offenders, and every attribution key's score, status,
        magnitude, and onset (see :mod:`repro.obs.drift`)."""
        from repro.api import API_VERSION

        return {"api_version": API_VERSION,
                **self.drift_report(top=top).to_json()}

    def alerts_v1(self) -> dict:
        """The ``GET /v1/alerts`` body: every alert rule with its
        current state, last evaluated value, and transition counts (see
        :mod:`repro.obs.alerts`)."""
        from repro.api import API_VERSION

        return {"api_version": API_VERSION, **self.alerts.snapshot()}

    def debug_bundles_v1(self, kind: str | None = None,
                         limit: int | None = None) -> dict:
        """The ``GET /v1/debug/bundles`` body: the flight recorder's
        worst-offender bundles (``kind`` of ``qerror`` / ``latency``,
        or both), worst first, plus occupancy counts."""
        from repro.api import API_VERSION

        return {"api_version": API_VERSION,
                "recorder": self.flight.describe(),
                "bundles": self.flight.bundles(kind=kind, limit=limit)}

    def _resolve_signal(self, spec: str, report) -> float | None:
        """Resolve one alert-rule signal spec against the service's
        telemetry (see :mod:`repro.obs.alerts` for the grammar);
        ``report`` is this tick's drift report, computed once."""
        kind, _, rest = spec.partition(":")
        if kind == "slo_burn":
            name, _, window = rest.partition(":")
            for label, width in self.slo.windows:
                if label == window:
                    try:
                        return float(self.slo.burn_rate(name, width))
                    except KeyError:
                        return None
            return None
        if kind == "drift":
            counts = report.counts
            if rest == "critical":
                return float(counts["critical"])
            if rest == "drifting":
                return float(counts["drifting"] + counts["critical"])
            if rest == "max_score":
                return float(report.max_score())
            return None
        if kind == "metric":
            for metric in self.metrics.metrics():
                if metric.name != rest:
                    continue
                if isinstance(metric, Histogram):
                    count, _total, _low, _high, _counts = \
                        metric.snapshot()
                    return float(count)
                return float(sum(value for _labels, value
                                 in metric.samples()))
            return None
        return None

    def evaluate_alerts(self) -> list[dict]:
        """Run one alert-engine evaluation tick against the current SLO
        burn rates, the merged drift report, and registered metrics;
        returns (and exports) this tick's firing/resolved transition
        events.  The serving loop drives this via
        :meth:`start_alert_ticker`; tests call it directly under a fake
        clock."""
        if not self.alerts.enabled:
            return []
        report = self.drift_report()
        return self.alerts.evaluate(
            lambda spec: self._resolve_signal(spec, report))

    def start_alert_ticker(self, interval: float = 5.0) -> None:
        """Start the background daemon thread evaluating alerts every
        ``interval`` seconds (idempotent; no-op when alerting is
        disabled).  ``repro serve`` starts one and stops it on
        shutdown."""
        if not self.alerts.enabled or self._alert_ticker is not None:
            return
        stop = threading.Event()

        def _tick() -> None:
            while not stop.wait(interval):
                try:
                    self.evaluate_alerts()
                except Exception:
                    continue

        ticker = threading.Thread(target=_tick, name="repro-alert-ticker",
                                  daemon=True)
        self._alert_ticker = ticker
        self._alert_ticker_stop = stop
        ticker.start()

    def stop_alert_ticker(self) -> None:
        """Stop the background alert ticker, if one is running."""
        ticker, stop = self._alert_ticker, self._alert_ticker_stop
        self._alert_ticker = None
        self._alert_ticker_stop = None
        if stop is not None:
            stop.set()
        if ticker is not None:
            ticker.join(timeout=5.0)

    # -- cache snapshots -------------------------------------------------------

    def _fingerprint_of(self, record: ModelRecord) -> str:
        """The served model's snapshot fingerprint: the artifact SHA-256
        recorded at publish time when available (``repro serve --load``
        sets it from the manifest), else a content hash of the model.
        Once a record's model has absorbed an in-place ``update`` the
        artifact hash no longer describes it, so the content hash is
        used from then on."""
        from repro.serve.snapshot import model_fingerprint

        fingerprint = record.metadata.get("fingerprint")
        if (record.name, record.version) in self._mutated_records:
            fingerprint = None
        return fingerprint or model_fingerprint(record.model)

    def save_snapshot(self, path, model: str | None = None) -> dict:
        """Persist one model's cache (both levels) to ``path``, stamped
        with that model's fingerprint (see :mod:`repro.serve.snapshot`).

        The fingerprint and the cache contents must come from the same
        inter-invalidation epoch: an update landing between the two
        would stamp post-update entries with the pre-update fingerprint,
        and a later restore against the pristine artifact would accept
        them.  The stamp check retries until both were read in one
        epoch.
        """
        from repro.errors import ArtifactError
        from repro.serve.snapshot import save_snapshot

        record = self._resolve(model)
        cache = self._cache_of(record.name)
        for _ in range(5):
            stamp = cache.invalidations
            fingerprint = self._fingerprint_of(record)
            payload = cache.snapshot()
            if cache.invalidations == stamp:
                break
        else:
            raise ArtifactError(
                f"cache snapshot of model {record.name!r} kept racing "
                f"concurrent updates; retry when the update stream "
                f"quiesces")
        return save_snapshot(cache, path, fingerprint,
                             model_name=record.name, snapshot=payload)

    def restore_snapshot(self, path, model: str | None = None) -> dict:
        """Warm one model's cache from a snapshot taken earlier; refuses
        (:class:`~repro.errors.ArtifactError`) when the snapshot was
        stamped against a different model state.  Race-safe: the
        fingerprint is computed under an invalidation stamp, so a model
        update landing mid-restore drops the restore instead of
        resurrecting pre-update entries."""
        from repro.serve.snapshot import restore_snapshot

        record = self._resolve(model)
        cache = self._cache_of(record.name)
        stamp = cache.invalidations
        return restore_snapshot(cache, path, self._fingerprint_of(record),
                                stamp=stamp)

    # -- profiling -------------------------------------------------------------

    def profile(self, seconds: float = 1.0, hz: float = 99.0,
                model: str | None = None,
                worker: int | None = None) -> dict:
        """Sample stacks for ``seconds`` at ``hz`` (``GET /v1/profile``).

        With ``worker=None`` the serving process itself is profiled
        (every thread, wall-clock).  With a worker id, the request is
        forwarded as a ``Profile`` RPC to that shard worker of the
        resolved (cluster-backed) model, so a remote host is profiled
        through the same pane.  Returns a JSON-ready dict whose
        ``collapsed`` text is flamegraph-ready; duration and rate are
        clamped to safe bounds (see :mod:`repro.obs.profile`).
        """
        from repro.obs.profile import profile_here

        if worker is None:
            report = profile_here(seconds=seconds, hz=hz)
            return {"pid": os.getpid(), "worker": None,
                    **report.to_json()}
        record = self._resolve(model)
        hook = getattr(record.model, "profile_worker", None)
        if not callable(hook):
            raise UnsupportedOperationError(
                f"model {record.name!r} is not cluster-backed; only the "
                f"serving process can be profiled (omit 'worker')")
        result = hook(int(worker), seconds=seconds, hz=hz)
        return {"pid": result.pid, "worker": int(worker),
                "model": record.name, "seconds": result.seconds,
                "hz": result.hz, "samples": result.samples,
                "collapsed": result.collapsed}

    # -- introspection ---------------------------------------------------------

    def slo_v1(self) -> dict:
        """The ``GET /v1/slo`` body: every declared objective with
        lifetime outcome totals and per-window error/burn rates (see
        :mod:`repro.obs.slo`)."""
        from repro.api import API_VERSION

        return {"api_version": API_VERSION, **self.slo.snapshot()}

    def _workers_overview(self) -> dict | None:
        """Per-model worker rows for the ``/v1/stats`` ``workers``
        section: the pool's cheap describe() — liveness, restarts,
        generation, and per-worker monotone transport counters — for
        every cluster-backed model (None when none is)."""
        overview: dict[str, dict] = {}
        for record in self.registry.records():
            pool = getattr(record.model, "pool", None)
            describe = getattr(pool, "describe", None)
            if not callable(describe):
                continue
            try:
                overview[record.name] = describe()
            except Exception:  # a broken pool must not kill /v1/stats
                continue
        return overview or None

    def _collect_cache_metrics(self):
        """Scrape-time collector: per-model cache counters.

        Each model's counters come from one locked
        :meth:`~repro.serve.cache.EstimateCache.counters` snapshot, so a
        scrape can never pair a hit count from mid-lookup with a stale
        miss count (hits ≤ lookups holds in every exposition).
        """
        with self._caches_lock:
            caches = sorted(self._caches.items())
        hits, misses, evictions, entries = [], [], [], []
        invalidations, shard_evictions = [], []
        for name, cache in caches:
            counters = cache.counters()
            for level, prefix in (("query", ""), ("subplan", "subplan_")):
                labels = {"model": name, "level": level}
                hits.append((labels, counters[f"{prefix}hits"]))
                misses.append((labels, counters[f"{prefix}misses"]))
                evictions.append((labels, counters[f"{prefix}evictions"]))
                entries.append((labels, counters["size" if not prefix
                                                 else "subplan_size"]))
            invalidations.append(({"model": name},
                                  counters["invalidations"]))
            shard_evictions.append(({"model": name},
                                    counters["shard_evictions"]))
        return [
            ("counter", "repro_cache_hits_total",
             "Cache hits by model and level.", hits),
            ("counter", "repro_cache_misses_total",
             "Cache misses by model and level.", misses),
            ("counter", "repro_cache_evictions_total",
             "LRU evictions by model and level.", evictions),
            ("gauge", "repro_cache_entries",
             "Live cache entries by model and level.", entries),
            ("counter", "repro_cache_invalidations_total",
             "Whole-cache invalidations (swap/update) per model.",
             invalidations),
            ("counter", "repro_cache_shard_evictions_total",
             "Entries evicted by scoped per-shard hot-swaps.",
             shard_evictions),
        ]

    def _collect_registry_metrics(self):
        """Scrape-time collector: uptime, swap count, published models
        (one atomic :meth:`~repro.serve.registry.ModelRegistry.records`
        snapshot)."""
        records = self.registry.records()
        return [
            ("gauge", "repro_uptime_seconds",
             "Seconds since the service started.",
             [({}, time.time() - self.started_at)]),
            ("counter", "repro_model_swaps_total",
             "Registry publishes plus unpublishes.",
             [({}, float(self.registry.swap_count))]),
            ("gauge", "repro_model_version",
             "Published version per model (presence means serving).",
             [({"model": r.name, "kind": r.kind}, float(r.version))
              for r in records]),
        ]

    def _collect_model_metrics(self):
        """Scrape-time collector: families owned by the served models
        themselves — a cluster-backed model contributes per-worker
        health gauges and restart counters through its
        ``collect_metrics(model_name=...)`` hook."""
        families = []
        for record in self.registry.records():
            hook = getattr(record.model, "collect_metrics", None)
            if not callable(hook):
                continue
            try:
                families.extend(hook(model_name=record.name))
            except Exception:  # one broken model must not kill /metrics
                continue
        return families

    def _collect_drift_metrics(self):
        """Scrape-time collector: ``repro_drift_*`` families from the
        merged drift report (the service's own monitor plus federated
        worker snapshots), so ``/metrics`` and ``/v1/drift`` agree."""
        if not self.drift.enabled:
            return []
        return self.drift_report().families()

    def stats(self) -> dict:
        """Legacy JSON serving statistics (the ``GET /stats`` shim);
        new clients should read :meth:`stats_v1` at ``GET /v1/stats``."""
        with self._caches_lock:
            caches = dict(self._caches)
        with self._recorder_lock:
            recorder = self._recorder
        return {
            "uptime_seconds": time.time() - self.started_at,
            "models": self.registry.describe(),
            "swap_count": self.registry.swap_count,
            "subplan_reuse": self.subplan_reuse,
            "recording": (None if recorder is None else
                          {"path": str(recorder.path),
                           "recorded": recorder.recorded}),
            "estimate_latency": self.latency.summary(),
            "update_latency": self.update_latency.summary(),
            "caches": {name: cache.stats()
                       for name, cache in sorted(caches.items())},
        }

    def stats_v1(self) -> dict:
        """JSON serving statistics (``GET /v1/stats``): the registry's
        full metric families (histograms as stream-exact summaries, with
        exemplar trace links when present), registry/recording state,
        the trace-log occupancy, SLO burn rates, and — for
        cluster-backed models — a ``workers`` section of per-worker
        health rows and transport counters."""
        from repro.api import API_VERSION

        with self._recorder_lock:
            recorder = self._recorder
        return {
            "api_version": API_VERSION,
            "uptime_seconds": time.time() - self.started_at,
            "models": self.registry.describe(),
            "swap_count": self.registry.swap_count,
            "subplan_reuse": self.subplan_reuse,
            "recording": (None if recorder is None else
                          {"path": str(recorder.path),
                           "recorded": recorder.recorded}),
            "metrics": self.metrics.to_json(),
            "traces": self.tracer.log.describe(),
            "slo": self.slo.snapshot(),
            "workers": self._workers_overview(),
        }
