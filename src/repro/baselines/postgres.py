"""Postgres-style Selinger estimator (paper Section 6.1, baseline 1).

Per-column catalog statistics (MCVs + equi-depth histograms), attribute
independence across filter columns, and the classical join formula with
join-key uniformity:  each equi-join clause contributes a selectivity of
``1 / max(NDV(left), NDV(right))`` over the cartesian product (Figure 1a).
"""

from __future__ import annotations

from repro.baselines.base import CardEstMethod, MethodCharacteristics
from repro.data.database import Database
from repro.estimators.histogram1d import Histogram1DEstimator
from repro.sql.query import Query


class PostgresMethod(CardEstMethod):
    name = "Postgres"
    characteristics = MethodCharacteristics(
        efficient=True, small_model_size=True, fast_training=True,
        scalable_with_joins=True, generalizes_to_new_queries=True,
        supports_cyclic_join=True)

    def __init__(self, n_hist_bins: int = 100, n_mcv: int = 100):
        super().__init__()
        self._n_hist_bins = n_hist_bins
        self._n_mcv = n_mcv

    def _fit(self, database: Database, workload=None) -> None:
        self._db = database
        self._stats: dict[str, Histogram1DEstimator] = {}
        self._ndv: dict[tuple[str, str], int] = {}
        for name in database.table_names:
            tschema = database.schema.table(name)
            est = Histogram1DEstimator(self._n_hist_bins, self._n_mcv)
            est.fit(database.table(name), tschema, {})
            self._stats[name] = est
            for key in tschema.key_columns:
                self._ndv[(name, key)] = database.table(name)[key].distinct_count()

    def estimate(self, query: Query) -> float:
        est = 1.0
        for alias in query.aliases:
            table = query.table_of(alias)
            rows = len(self._db.table(table))
            sel = self._stats[table].selectivity(query.filter_of(alias))
            est *= max(rows * sel, 0.0)
        for join in query.joins:
            left_t = query.table_of(join.left.alias)
            right_t = query.table_of(join.right.alias)
            ndv_l = self._ndv.get((left_t, join.left.column), 1)
            ndv_r = self._ndv.get((right_t, join.right.column), 1)
            est /= max(ndv_l, ndv_r, 1)
        return max(est, 0.0)
