"""Common interface of join-level cardinality estimation methods.

``MethodCharacteristics`` reproduces the rows of the paper's Table 1: each
method declares which techniques it uses and which properties it satisfies,
and the Table 1 bench simply renders these declarations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.api.protocol import Capabilities, GenericEstimationSession
from repro.data.database import Database
from repro.errors import UnsupportedOperationError, UnsupportedQueryError
from repro.sql.query import Query
from repro.utils import Timer, pickled_size_bytes


@dataclass(frozen=True)
class MethodCharacteristics:
    """Table 1 row: technique usage + qualitative performance properties."""

    uses_sampling: bool = False
    uses_machine_learning: bool = False
    uses_query_information: bool = False
    denormalizes_join_tables: bool = False
    adds_extra_columns: bool = False
    uses_binning: bool = False
    uses_bound: bool = False
    effective: bool = False
    efficient: bool = False
    small_model_size: bool = False
    fast_training: bool = False
    scalable_with_joins: bool = False
    generalizes_to_new_queries: bool = False
    supports_cyclic_join: bool = False


class CardEstMethod(ABC):
    """One join-query cardinality estimator under evaluation.

    Every method implements the :class:`~repro.api.protocol.
    CardinalityModel` protocol: one-shot :meth:`estimate`, sub-plan maps
    (:meth:`estimate_subplans`), prepared sessions
    (:meth:`open_session`), and declared :meth:`capabilities` — so the
    registry, the serving layer, and the optimizer treat baselines and
    FactorJoin itself through one interface.
    """

    name: str = "base"
    characteristics: MethodCharacteristics = MethodCharacteristics()
    #: Predicate classes the method evaluates (see
    #: :data:`repro.api.protocol.PREDICATE_CLASSES`); refine per class.
    predicate_classes: tuple[str, ...] = ("equality", "range", "in")

    def __init__(self):
        self.fit_seconds = 0.0

    def fit(self, database: Database,
            workload: list[Query] | None = None) -> "CardEstMethod":
        """Train on the database (query-driven methods also consume the
        training workload).  Timing is recorded in ``fit_seconds``."""
        with Timer() as timer:
            self._fit(database, workload)
        self.fit_seconds = timer.elapsed
        return self

    @abstractmethod
    def _fit(self, database: Database,
             workload: list[Query] | None) -> None:
        ...

    @abstractmethod
    def estimate(self, query: Query) -> float:
        """Estimated cardinality of one query."""

    def estimate_subplans(self, query: Query,
                          min_tables: int = 1) -> dict[frozenset, float]:
        """Estimates for all connected sub-plans; the default routes
        through :meth:`open_session` (methods with progressive
        estimation override :meth:`open_session` instead)."""
        return self.open_session(query).estimate_all(min_tables=min_tables)

    def open_session(self, query: Query) -> GenericEstimationSession:
        """Prepare ``query`` for repeated sub-plan probing.

        The default session memoizes one-shot estimates of induced
        sub-queries — bit-identical to calling :meth:`estimate` per
        probe, paying the model once per distinct subset.  Methods with
        genuinely incremental sub-plan estimation (FactorJoin) override
        this with a prepared session.
        """
        return GenericEstimationSession(self, query)

    def capabilities(self) -> Capabilities:
        """Declared abilities, derived from which hooks the class
        overrides plus its Table 1 characteristics; the conformance
        suite checks the declaration against behavior."""
        supports_update = type(self).update is not CardEstMethod.update
        supports_delete = self._supports_delete()
        return Capabilities(
            name=self.name,
            supports_update=supports_update,
            supports_delete=supports_delete,
            supports_subplans=True,
            supports_sessions=True,
            predicate_classes=tuple(sorted(self.predicate_classes)),
            update_granularity=("row-batch" if supports_update
                                else "refit"),
            supports_cyclic_joins=(
                self.characteristics.supports_cyclic_join),
            supports_self_joins=(
                self.characteristics.supports_cyclic_join))

    def _supports_delete(self) -> bool:
        """Whether :meth:`update` absorbs ``deleted_rows`` batches;
        methods wrapping a delete-capable model override."""
        return False

    def supports(self, query: Query) -> bool:
        """Whether the method can estimate this query at all (Table 1's
        cyclic-join column; LIKE support is decided by the base estimator)."""
        try:
            self.check_supported(query)
        except UnsupportedQueryError:
            return False
        return True

    def check_supported(self, query: Query) -> None:
        """Raise UnsupportedQueryError when the query is out of scope."""

    def model_size_bytes(self) -> int:
        return pickled_size_bytes(self)

    def update(self, table_name: str, new_rows=None,
               deleted_rows=None) -> None:
        """Incrementally absorb inserted and/or deleted rows; methods
        without incremental maintenance keep this default, which raises
        the taxonomy error (code ``unsupported_operation``)."""
        raise UnsupportedOperationError(
            f"{type(self).__name__} does not support incremental updates")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
