"""The end-to-end plan-quality harness: estimates → plans → verdict.

The paper's headline evaluation is not q-error but what the estimates
*do* to plans (Section 6: inject cardinalities, compare query
performance).  This harness reproduces that loop with the in-repo
engine:

1. for each workload query, a :class:`~repro.plan.generator.
   CardinalityGenerator` supplies sub-plan estimates and the DP
   optimizer chooses a plan under them (:func:`~repro.plan.planner.
   plan_query`);
2. the *same* optimizer chooses the oracle plan under true sub-plan
   cardinalities (computed once per query and cached);
3. both plans are costed under **true** cardinalities — the
   execution-time proxy — yielding the per-query **P-error**
   (:func:`~repro.api.messages.p_error`: chosen true cost over oracle
   true cost, clamped ≥ 1) and whether the two plans agree exactly.

The report aggregates mean/median/tail P-error, the plan-choice
agreement rate, and the worst-regressing queries, and renders to JSON
(the shape ``benchmarks/bench_plan_quality.py`` persists and CI gates
on).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import coerce_query
from repro.api.messages import p_error
from repro.errors import ReproError, UnsupportedQueryError
from repro.optimizer.cost import C_OUT, CostModel
from repro.optimizer.dp import make_oracle, optimize
from repro.optimizer.endtoend import EndToEndRunner
from repro.plan.generator import CardinalityGenerator
from repro.plan.planner import PlanDecision, plan_query
from repro.sql.query import Query


@dataclass(frozen=True)
class PlanVerdict:
    """One query's end-to-end outcome under a generator's estimates."""

    sql: str
    chosen: str
    optimal: str
    estimated_cost: float
    true_cost: float
    optimal_cost: float
    p_error: float
    agreed: bool
    hint_text: str
    supported: bool = True

    def to_json(self) -> dict:
        return {
            "sql": self.sql,
            "chosen": self.chosen,
            "optimal": self.optimal,
            "estimated_cost": self.estimated_cost,
            "true_cost": self.true_cost,
            "optimal_cost": self.optimal_cost,
            "p_error": self.p_error,
            "agreed": self.agreed,
            "supported": self.supported,
        }


def _quantile(values: list[float], q: float) -> float:
    """Nearest-rank quantile of a non-empty sorted list."""
    index = min(len(values) - 1, max(0, round(q * (len(values) - 1))))
    return values[index]


@dataclass
class PlanQualityReport:
    """Aggregated plan quality of one generator over one workload."""

    name: str
    verdicts: list[PlanVerdict] = field(default_factory=list)

    @property
    def supported(self) -> list[PlanVerdict]:
        return [v for v in self.verdicts if v.supported]

    @property
    def num_unsupported(self) -> int:
        return len(self.verdicts) - len(self.supported)

    @property
    def agreement_rate(self) -> float:
        """The fraction of supported queries whose chosen plan equals
        the truecard-oracle plan exactly."""
        supported = self.supported
        if not supported:
            return 0.0
        return sum(1 for v in supported if v.agreed) / len(supported)

    def p_error_summary(self) -> dict:
        """Mean / median / p90 / max P-error over supported queries."""
        errors = sorted(v.p_error for v in self.supported)
        if not errors:
            return {"count": 0, "mean": 0.0, "median": 0.0,
                    "p90": 0.0, "max": 0.0}
        return {
            "count": len(errors),
            "mean": sum(errors) / len(errors),
            "median": _quantile(errors, 0.5),
            "p90": _quantile(errors, 0.9),
            "max": errors[-1],
        }

    def worst(self, n: int = 5) -> list[PlanVerdict]:
        """The ``n`` supported queries with the highest P-error — the
        regression list a perf PR reads first."""
        ranked = sorted(self.supported,
                        key=lambda v: (-v.p_error, v.sql))
        return ranked[:n]

    def to_json(self, worst: int = 5) -> dict:
        """The machine-readable report (``BENCH_plan.json`` shape)."""
        return {
            "name": self.name,
            "queries": len(self.verdicts),
            "unsupported": self.num_unsupported,
            "agreement_rate": self.agreement_rate,
            "p_error": self.p_error_summary(),
            "worst": [v.to_json() for v in self.worst(worst)],
        }


class PlanHarness:
    """Drives workloads through plan selection and scores the plans.

    Truth (per-query true sub-plan cardinalities and the oracle plan) is
    computed from ``database`` through the shared
    :class:`~repro.optimizer.endtoend.EndToEndRunner` and cached across
    generators, so comparing several estimators over one workload pays
    for ground truth once.
    """

    def __init__(self, database, cost_model: CostModel = C_OUT):
        self._runner = EndToEndRunner(database, cost_model=cost_model)
        self._cost_model = cost_model
        self._oracle_plans: dict = {}

    def oracle_decision(self, query: Query | str) -> tuple:
        """The truecard-oracle plan and its true cost for one query."""
        query = coerce_query(query)
        key = query.signature()
        if key not in self._oracle_plans:
            truth = self._runner.true_subplan_cards(query)
            if len(query.aliases) == 1:
                from repro.optimizer.plans import JoinPlan

                plan = JoinPlan.leaf(query.aliases[0])
            else:
                plan, _ = optimize(query, make_oracle(truth),
                                   self._cost_model)
            self._oracle_plans[key] = (
                plan, self._runner.true_cost_of_plan(query, plan))
        return self._oracle_plans[key]

    def judge(self, decision: PlanDecision) -> PlanVerdict:
        """Score one already-made :class:`~repro.plan.planner.
        PlanDecision` against the truecard oracle."""
        query = decision.query
        optimal_plan, optimal_cost = self.oracle_decision(query)
        true_cost = self._runner.true_cost_of_plan(query, decision.plan)
        return PlanVerdict(
            sql=query.to_sql(),
            chosen=decision.plan.render(),
            optimal=optimal_plan.render(),
            estimated_cost=decision.estimated_cost,
            true_cost=true_cost,
            optimal_cost=optimal_cost,
            p_error=p_error(true_cost, optimal_cost),
            agreed=decision.plan == optimal_plan,
            hint_text=decision.hint_text())

    def run_query(self, generator: CardinalityGenerator,
                  query: Query | str) -> PlanVerdict:
        """Plan one query under ``generator`` and score the plan; a
        query the backend cannot estimate scores as unsupported rather
        than aborting the workload."""
        query = coerce_query(query)
        try:
            decision = plan_query(query, generator, self._cost_model)
        except (UnsupportedQueryError, ReproError) as exc:
            if not isinstance(exc, UnsupportedQueryError) and (
                    "unsupported" not in str(exc)):
                raise
            return PlanVerdict(
                sql=query.to_sql(), chosen="", optimal="",
                estimated_cost=float("inf"), true_cost=float("inf"),
                optimal_cost=float("inf"), p_error=float("inf"),
                agreed=False, hint_text="", supported=False)
        return self.judge(decision)

    def run(self, generator: CardinalityGenerator, workload,
            name: str = "estimator") -> PlanQualityReport:
        """The whole workload through plan selection, scored."""
        report = PlanQualityReport(name)
        for query in workload:
            report.verdicts.append(self.run_query(generator, query))
        return report
