"""Column data types supported by the relational substrate."""

from __future__ import annotations

import enum

import numpy as np


class DataType(enum.Enum):
    """Logical column types.

    INT covers join keys, dates (stored as epoch-style ints) and counts —
    matching STATS/IMDB where filters are over numeric, categorical and
    string columns.
    """

    INT = "int"
    FLOAT = "float"
    STRING = "string"

    @property
    def numpy_dtype(self) -> np.dtype:
        if self is DataType.INT:
            return np.dtype(np.int64)
        if self is DataType.FLOAT:
            return np.dtype(np.float64)
        return np.dtype(object)

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT, DataType.FLOAT)


def infer_data_type(values) -> DataType:
    """Infer the logical type of a python/numpy value sequence."""
    arr = np.asarray(values)
    if arr.dtype.kind in "iub":
        return DataType.INT
    if arr.dtype.kind == "f":
        return DataType.FLOAT
    return DataType.STRING
