"""Command-line interface: ``python -m repro <command>``.

Commands
--------
summary    print the Table 2-style statistics of a synthetic benchmark
compare    fit a method line-up and print the end-to-end comparison table
estimate   fit FactorJoin on a benchmark and estimate one SQL query
"""

from __future__ import annotations

import argparse
import sys

from repro.core.estimator import FactorJoin, FactorJoinConfig
from repro.engine import CardinalityExecutor
from repro.eval.harness import (
    default_methods,
    end_to_end_table,
    make_context,
    run_end_to_end,
)
from repro.sql import parse_query
from repro.utils import format_table


def _add_benchmark_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--benchmark", choices=("stats", "imdb"),
                        default="stats")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="data size multiplier (default 0.1)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--queries", type=int, default=None,
                        help="number of workload queries")
    parser.add_argument("--max-tables", type=int, default=None,
                        help="largest join template size")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FactorJoin reproduction: benchmarks and estimation")
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser("summary", help="benchmark statistics")
    _add_benchmark_args(p_summary)
    p_summary.add_argument("--cardinalities", action="store_true",
                           help="also compute the true cardinality range")

    p_compare = sub.add_parser("compare", help="end-to-end comparison")
    _add_benchmark_args(p_compare)
    p_compare.add_argument("--bins", type=int, default=8)

    p_estimate = sub.add_parser("estimate", help="estimate one query")
    _add_benchmark_args(p_estimate)
    p_estimate.add_argument("sql", help="SELECT COUNT(*) query text")
    p_estimate.add_argument("--bins", type=int, default=8)
    p_estimate.add_argument("--estimator", default="bayescard",
                            choices=("bayescard", "sampling", "truescan",
                                     "histogram1d"))
    p_estimate.add_argument("--true", action="store_true",
                            help="also compute the exact cardinality")
    return parser


def cmd_summary(args) -> int:
    context = make_context(args.benchmark, scale=args.scale, seed=args.seed,
                           n_queries=args.queries,
                           max_tables=args.max_tables)
    summary = context.benchmark.summary(with_cardinalities=args.cardinalities)
    rows = [[key, str(value)] for key, value in summary.items()]
    print(format_table(["statistic", "value"], rows,
                       title=f"{context.benchmark.name} summary"))
    return 0


def cmd_compare(args) -> int:
    context = make_context(args.benchmark, scale=args.scale, seed=args.seed,
                           n_queries=args.queries,
                           max_tables=args.max_tables)
    methods = default_methods(args.benchmark, seed=args.seed,
                              n_bins=args.bins)
    results = run_end_to_end(context, methods)
    print(end_to_end_table(
        results, title=f"End-to-end comparison on {context.benchmark.name}"))
    return 0


def cmd_estimate(args) -> int:
    context = make_context(args.benchmark, scale=args.scale, seed=args.seed,
                           n_queries=args.queries,
                           max_tables=args.max_tables)
    query = parse_query(args.sql)
    model = FactorJoin(FactorJoinConfig(
        n_bins=args.bins, table_estimator=args.estimator))
    model.fit(context.database)
    estimate = model.estimate(query)
    print(f"estimate: {estimate:,.1f}")
    if args.true:
        true = CardinalityExecutor(context.database).cardinality(query)
        ratio = estimate / max(true, 1.0)
        print(f"true:     {true:,.1f}   (est/true {ratio:.3f})")
    return 0


COMMANDS = {
    "summary": cmd_summary,
    "compare": cmd_compare,
    "estimate": cmd_estimate,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
