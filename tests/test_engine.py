"""Tests for predicate evaluation and the true-cardinality executor.

The executor tests compare against brute-force nested-loop evaluation on
small random databases — including chain, star, cyclic and self joins.
"""

import itertools

import numpy as np
import pytest

from repro.data import (
    Column,
    ColumnSchema,
    Database,
    DatabaseSchema,
    DataType,
    JoinRelation,
    Table,
    TableSchema,
)
from repro.engine import CardinalityExecutor, evaluate_predicate, filter_table
from repro.engine.sampler import TableSample
from repro.sql import parse_query
from repro.sql.predicates import (
    And,
    Between,
    Comparison,
    In,
    IsNull,
    Like,
    Not,
    Or,
)


def simple_table():
    return Table("t", [
        Column("a", [1, 2, 3, 4, 5]),
        Column("s", ["Anna", "Bob", "Andrew", "Carl", "Dana"]),
        Column("n", [1, 2, 0, 0, 3], null_mask=[False, False, True,
                                                True, False]),
    ])


class TestFilter:
    def test_comparison_ops(self):
        t = simple_table()
        assert evaluate_predicate(Comparison("a", ">", 3), t).sum() == 2
        assert evaluate_predicate(Comparison("a", "<=", 2), t).sum() == 2
        assert evaluate_predicate(Comparison("a", "=", 1), t).sum() == 1
        assert evaluate_predicate(Comparison("a", "!=", 1), t).sum() == 4

    def test_string_equality(self):
        t = simple_table()
        assert evaluate_predicate(Comparison("s", "=", "Bob"), t).sum() == 1

    def test_between(self):
        t = simple_table()
        assert evaluate_predicate(Between("a", 2, 4), t).sum() == 3

    def test_in(self):
        t = simple_table()
        assert evaluate_predicate(In("a", [1, 5, 99]), t).sum() == 2

    def test_like_contains(self):
        t = simple_table()
        assert evaluate_predicate(Like("s", "%An%"), t).sum() == 2

    def test_like_underscore(self):
        t = simple_table()
        assert evaluate_predicate(Like("s", "B_b"), t).sum() == 1

    def test_not_like(self):
        t = simple_table()
        assert evaluate_predicate(Like("s", "%An%", negated=True),
                                  t).sum() == 3

    def test_null_fails_comparisons(self):
        t = simple_table()
        # nulls at rows 2,3 must not satisfy any comparison on n
        assert evaluate_predicate(Comparison("n", ">=", 0), t).sum() == 3

    def test_is_null(self):
        t = simple_table()
        assert evaluate_predicate(IsNull("n"), t).sum() == 2
        assert evaluate_predicate(IsNull("n", negated=True), t).sum() == 3

    def test_not_excludes_nulls(self):
        t = simple_table()
        # NOT (n = 1): rows with n != 1 and n not null -> rows 1, 4
        assert evaluate_predicate(Not(Comparison("n", "=", 1)), t).sum() == 2

    def test_and_or(self):
        t = simple_table()
        pred = Or([Comparison("a", "=", 1),
                   And([Comparison("a", ">", 3), Like("s", "%a%")])])
        # a=1 -> Anna; a>3 AND contains 'a': Carl(4), Dana(5)
        assert evaluate_predicate(pred, t).sum() == 3

    def test_filter_table(self):
        t = simple_table()
        assert len(filter_table(t, Comparison("a", ">", 3))) == 2


def brute_force_card(db, query):
    """Nested-loop COUNT(*) over the cartesian product of filtered tables."""
    from repro.engine.filter import evaluate_predicate as ev

    filtered = {}
    for alias in query.aliases:
        t = db.table(query.table_of(alias))
        mask = ev(query.filter_of(alias), t)
        filtered[alias] = t.take(mask)
    aliases = query.aliases
    count = 0
    for combo in itertools.product(*[range(len(filtered[a]))
                                     for a in aliases]):
        rows = dict(zip(aliases, combo))
        ok = True
        for join in query.joins:
            lt = filtered[join.left.alias]
            rt = filtered[join.right.alias]
            lcol = lt[join.left.column]
            rcol = rt[join.right.column]
            li, ri = rows[join.left.alias], rows[join.right.alias]
            if lcol.null_mask[li] or rcol.null_mask[ri]:
                ok = False
                break
            if lcol.values[li] != rcol.values[ri]:
                ok = False
                break
        count += ok
    return count


def random_db(rng, with_nulls=False):
    """Small random 3-table DB with two key groups (id and cid)."""
    n_a, n_b, n_c = 8, 10, 6
    a_id = rng.integers(0, 5, n_a)
    b_aid = rng.integers(0, 5, n_b)
    b_cid = rng.integers(0, 4, n_b)
    c_id = rng.integers(0, 4, n_c)
    null_b = (rng.random(n_b) < 0.2) if with_nulls else np.zeros(n_b, bool)
    schema = DatabaseSchema(
        [
            TableSchema("A", [ColumnSchema("id", DataType.INT, True),
                              ColumnSchema("x", DataType.INT)]),
            TableSchema("B", [ColumnSchema("aid", DataType.INT, True),
                              ColumnSchema("cid", DataType.INT, True),
                              ColumnSchema("y", DataType.INT)]),
            TableSchema("C", [ColumnSchema("id", DataType.INT, True),
                              ColumnSchema("z", DataType.INT)]),
        ],
        [
            JoinRelation("A", "id", "B", "aid"),
            JoinRelation("B", "cid", "C", "id"),
        ],
    )
    db = Database(schema, [
        Table("A", [Column("id", a_id), Column("x", rng.integers(0, 4, n_a))]),
        Table("B", [Column("aid", b_aid, null_mask=null_b),
                    Column("cid", b_cid),
                    Column("y", rng.integers(0, 4, n_b))]),
        Table("C", [Column("id", c_id), Column("z", rng.integers(0, 4, n_c))]),
    ])
    return db


class TestExecutor:
    @pytest.mark.parametrize("seed", range(5))
    def test_two_table_join_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        db = random_db(rng)
        q = parse_query(
            "SELECT COUNT(*) FROM A a, B b WHERE a.id = b.aid AND a.x > 0")
        ex = CardinalityExecutor(db)
        assert ex.cardinality(q) == brute_force_card(db, q)

    @pytest.mark.parametrize("seed", range(5))
    def test_chain_join_matches_brute_force(self, seed):
        rng = np.random.default_rng(100 + seed)
        db = random_db(rng)
        q = parse_query(
            "SELECT COUNT(*) FROM A a, B b, C c "
            "WHERE a.id = b.aid AND b.cid = c.id AND b.y >= 1 AND c.z < 3")
        ex = CardinalityExecutor(db)
        assert ex.cardinality(q) == brute_force_card(db, q)

    @pytest.mark.parametrize("seed", range(3))
    def test_null_join_keys_are_dropped(self, seed):
        rng = np.random.default_rng(200 + seed)
        db = random_db(rng, with_nulls=True)
        q = parse_query("SELECT COUNT(*) FROM A a, B b WHERE a.id = b.aid")
        ex = CardinalityExecutor(db)
        assert ex.cardinality(q) == brute_force_card(db, q)

    @pytest.mark.parametrize("seed", range(4))
    def test_self_join_matches_brute_force(self, seed):
        rng = np.random.default_rng(300 + seed)
        db = random_db(rng)
        q = parse_query(
            "SELECT COUNT(*) FROM A a1, A a2 "
            "WHERE a1.id = a2.id AND a1.x > 0 AND a2.x < 3")
        ex = CardinalityExecutor(db)
        assert ex.cardinality(q) == brute_force_card(db, q)

    @pytest.mark.parametrize("seed", range(4))
    def test_cyclic_join_matches_brute_force(self, seed):
        rng = np.random.default_rng(400 + seed)
        db = random_db(rng)
        # triangle: A joins B on id-group, B joins C, and C joins back to A
        # via the same variable as A.id (cyclic through shared groups)
        q = parse_query(
            "SELECT COUNT(*) FROM A a1, A a2, B b "
            "WHERE a1.id = b.aid AND a2.id = b.aid AND a1.x > 0")
        ex = CardinalityExecutor(db)
        assert ex.cardinality(q) == brute_force_card(db, q)

    def test_single_table_count(self):
        rng = np.random.default_rng(7)
        db = random_db(rng)
        q = parse_query("SELECT COUNT(*) FROM A a WHERE a.x = 1")
        ex = CardinalityExecutor(db)
        assert ex.cardinality(q) == brute_force_card(db, q)

    def test_empty_result(self):
        rng = np.random.default_rng(8)
        db = random_db(rng)
        q = parse_query("SELECT COUNT(*) FROM A a, B b "
                        "WHERE a.id = b.aid AND a.x > 100")
        ex = CardinalityExecutor(db)
        assert ex.cardinality(q) == 0

    @pytest.mark.parametrize("seed", range(3))
    def test_subplan_cardinalities_match_individual(self, seed):
        rng = np.random.default_rng(500 + seed)
        db = random_db(rng)
        q = parse_query(
            "SELECT COUNT(*) FROM A a, B b, C c "
            "WHERE a.id = b.aid AND b.cid = c.id AND a.x > 0")
        ex = CardinalityExecutor(db)
        sub_cards = ex.subplan_cardinalities(q)
        for subset, card in sub_cards.items():
            if len(subset) < 2:
                continue
            expected = ex.cardinality(q.subquery(set(subset)))
            assert card == expected, subset

    def test_cartesian_product(self):
        rng = np.random.default_rng(9)
        db = random_db(rng)
        q = parse_query("SELECT COUNT(*) FROM A a, C c WHERE a.x > 0")
        ex = CardinalityExecutor(db)
        assert ex.cardinality(q) == brute_force_card(db, q)


class TestSampler:
    def test_scale_factor(self):
        t = Table.from_dict("t", {"a": list(range(1000))})
        s = TableSample(t, rate=0.1, rng=0)
        assert len(s) == 100
        assert s.scale == pytest.approx(10.0)

    def test_estimate_count_close_to_truth(self):
        rng = np.random.default_rng(0)
        t = Table.from_dict("t", {"a": rng.integers(0, 10, 5000)})
        s = TableSample(t, rate=0.2, rng=1)
        est = s.estimate_count(Comparison("a", "<", 5))
        true = (t["a"].values < 5).sum()
        assert abs(est - true) / true < 0.2

    def test_bitmap_length(self):
        t = Table.from_dict("t", {"a": list(range(50))})
        s = TableSample(t, max_rows=10, rng=0)
        assert len(s.bitmap(Comparison("a", ">", 0))) == 10
