"""Per-bin combination rules for joining binned key distributions.

Two modes, matching the paper's Table 8 ablation:

- ``bound`` — the probabilistic upper bound of Equation 5: for bin *i* with
  per-key totals ``n_j`` and most-frequent-value counts ``V*_j``, the join
  contribution is ``min_j(n_j / V*_j) * prod_j V*_j`` ("at most
  ``min(n/V*)`` distinct heavy values, each pairing at most ``prod V*``
  times").
- ``uniform`` — the classical join-histogram expected value that *assumes*
  join uniformity within the bin: ``prod_j n_j / max_j(ndv_j)^(m-1)``.
"""

from __future__ import annotations

import numpy as np

BOUND = "bound"
UNIFORM = "uniform"
MODES = (BOUND, UNIFORM)


def per_bin_bound(totals: list[np.ndarray], mfvs: list[np.ndarray]) -> np.ndarray:
    """Equation 5 generalized to any number of factors sharing the variable.

    Any bin where some factor has zero rows, or a zero MFV despite positive
    estimated totals (no actual values recorded), contributes zero.
    """
    totals = [np.asarray(t, dtype=np.float64) for t in totals]
    mfvs = [np.asarray(v, dtype=np.float64) for v in mfvs]
    k = totals[0].shape[0]
    ratios = np.full(k, np.inf)
    product = np.ones(k)
    alive = np.ones(k, dtype=bool)
    for n, v in zip(totals, mfvs):
        alive &= (n > 0) & (v > 0)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.minimum(ratios, np.where(v > 0, n / v, np.inf))
        product *= v
    ratios[~alive] = 0.0
    return ratios * product


def per_bin_uniform(totals: list[np.ndarray],
                    ndvs: list[np.ndarray]) -> np.ndarray:
    """Join-histogram estimate under per-bin join uniformity.

    ``prod_j n_j / max_j(ndv_j)^(m-1)`` — the distinct-value method applied
    inside each bin (Section 2.2), the behaviour FactorJoin's bound replaces.
    """
    totals = [np.asarray(t, dtype=np.float64) for t in totals]
    ndvs = [np.asarray(d, dtype=np.float64) for d in ndvs]
    k = totals[0].shape[0]
    product = np.ones(k)
    max_ndv = np.zeros(k)
    alive = np.ones(k, dtype=bool)
    for n, d in zip(totals, ndvs):
        alive &= n > 0
        product *= n
        max_ndv = np.maximum(max_ndv, d)
    m = len(totals)
    with np.errstate(divide="ignore", invalid="ignore"):
        denom = np.where(max_ndv > 0, max_ndv ** (m - 1), np.inf)
        out = np.where(alive, product / denom, 0.0)
    return out


def combine_per_bin(mode: str, totals: list[np.ndarray],
                    mfvs: list[np.ndarray],
                    ndvs: list[np.ndarray]) -> np.ndarray:
    if mode == BOUND:
        return per_bin_bound(totals, mfvs)
    if mode == UNIFORM:
        return per_bin_uniform(totals, ndvs)
    raise ValueError(f"unknown combination mode {mode!r}")
