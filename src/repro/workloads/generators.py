"""Synthetic data generation primitives.

The generators mimic the statistical properties the paper's benchmarks
stress: Zipf-skewed foreign keys (join-key skew), correlated attributes
(attribute correlation), dangling foreign keys (NULLs), and word-built
strings for LIKE predicates.
"""

from __future__ import annotations

import numpy as np

from repro.utils import resolve_rng

_SYLLABLES = np.array([
    "an", "ar", "ba", "bel", "cor", "dan", "del", "el", "fan", "gar",
    "hal", "in", "jor", "kal", "lan", "mar", "nor", "or", "pan", "qui",
    "ran", "sal", "tan", "ur", "van", "wen", "xan", "yor", "zan", "the",
    "ing", "ter", "son", "ton", "ley", "ford", "wood", "stone", "field",
    "brook",
])


def zipf_fk(rng: np.random.Generator, n_rows: int, n_parents: int,
            a: float = 1.3, null_fraction: float = 0.0,
            perm: np.ndarray | None = None
            ) -> tuple[np.ndarray, np.ndarray]:
    """Skewed foreign keys into ``[0, n_parents)`` plus a null mask.

    The Zipf rank sample is permuted over the parent domain so heavy
    parents are arbitrary ids.  Pass a shared ``perm`` across the FK
    columns referencing one parent table to make the *same* parents hot
    everywhere — the property of real data (a popular post collects many
    comments AND votes) that drives large join results.
    """
    ranks = np.minimum(rng.zipf(a, size=n_rows), n_parents) - 1
    if perm is None:
        perm = rng.permutation(n_parents)
    values = perm[ranks].copy()
    nulls = rng.random(n_rows) < null_fraction
    values[nulls] = 0  # placeholder under the mask
    return values.astype(np.int64), nulls


def correlated_int(rng: np.random.Generator, base: np.ndarray,
                   noise: float, low: int, high: int) -> np.ndarray:
    """An int column correlated with ``base`` (rescaled + gaussian noise)."""
    base = np.asarray(base, dtype=np.float64)
    span = base.max() - base.min()
    scaled = (base - base.min()) / (span if span > 0 else 1.0)
    values = scaled * (high - low) + low + rng.normal(
        0, noise * (high - low), size=len(base))
    return np.clip(np.round(values), low, high).astype(np.int64)


def skewed_int(rng: np.random.Generator, n: int, low: int, high: int,
               a: float = 1.5) -> np.ndarray:
    """Zipf-skewed int attribute over [low, high]."""
    vals = np.minimum(rng.zipf(a, size=n), high - low + 1) - 1
    return (vals + low).astype(np.int64)


def date_column(rng: np.random.Generator, n: int, start: int = 0,
                end: int = 4000, recency_bias: float = 2.0) -> np.ndarray:
    """Day-number timestamps biased toward recent dates (like forum data)."""
    u = rng.random(n) ** (1.0 / recency_bias)
    return (start + u * (end - start)).astype(np.int64)


def categorical(rng: np.random.Generator, n: int, n_values: int,
                skew: float = 1.2) -> np.ndarray:
    """Skewed categorical codes in [0, n_values)."""
    ranks = np.minimum(rng.zipf(skew, size=n), n_values) - 1
    return ranks.astype(np.int64)


def words(rng: np.random.Generator, n: int, min_syllables: int = 2,
          max_syllables: int = 4) -> np.ndarray:
    """Pronounceable pseudo-words (for names / titles / keywords)."""
    counts = rng.integers(min_syllables, max_syllables + 1, size=n)
    max_c = int(counts.max()) if n else 0
    picks = rng.integers(0, len(_SYLLABLES), size=(n, max(max_c, 1)))
    out = np.empty(n, dtype=object)
    for i in range(n):
        out[i] = "".join(_SYLLABLES[picks[i, : counts[i]]])
    return out


def titles(rng: np.random.Generator, n: int) -> np.ndarray:
    """Multi-word title strings ("The Xanley Brookson")."""
    first = words(rng, n, 1, 2)
    second = words(rng, n, 2, 3)
    out = np.empty(n, dtype=object)
    use_the = rng.random(n) < 0.3
    for i in range(n):
        prefix = "The " if use_the[i] else ""
        out[i] = f"{prefix}{first[i].capitalize()} {second[i].capitalize()}"
    return out
