"""Two-level LRU cache of estimates: query fingerprints + sub-plan table.

Optimizers re-ask the same cardinalities constantly (every DP enumeration
revisits the same sub-plans; dashboards re-issue identical templates), and
FactorJoin's estimates are deterministic given a fitted model — so caching
turns repeated sub-millisecond inference into microsecond lookups.

The cache has two levels:

- **query level** — exact request fingerprints (sorted table set,
  normalized join conditions, normalized predicates via
  :meth:`repro.sql.query.Query.signature`, plus the request shape), so
  syntactic permutations of one request share an entry;
- **sub-plan level** — canonical, alias-renaming-invariant
  (table-set, predicate, join-structure) keys from
  :meth:`repro.sql.query.Query.subplan_key`.  Every answered estimate and
  every entry of a sub-plan map lands here, so a *different* query that
  contains (or equals) a previously served sub-plan is answered without
  touching the model — the cross-request reuse FactorJoin's per-sub-plan
  decomposition makes possible.

The two levels keep separate hit/miss counters (``stats()``), so benchmark
numbers for whole-query caching and sub-plan reuse are never conflated.

Entries are only valid for one model version: the serving layer keeps one
cache per model name and invalidates it on every registry swap or
in-place ``update()``.  Invalidation clears both levels atomically, and
the stamped-put mechanism (see :meth:`EstimateCache.put`) covers both, so
a slow computation racing a model update can never resurrect pre-update
state at either level.

For sharded models, entries may additionally be tagged with the set of
shards the answer read (the serving layer derives it from the same
pruning introspection the explain trace reports).  A **per-shard
hot-swap** then evicts only the entries whose answer could have changed
— :meth:`EstimateCache.invalidate_shards` — instead of clearing both
levels wholesale, so a 16-shard ensemble republishing one shard keeps
~15/16ths of its warmed state.  Untagged entries (no pruning info) are
evicted conservatively.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.sql.query import Query


def query_fingerprint(query: Query, request: tuple = ()) -> tuple:
    """Hashable canonical identity of an estimation request.

    ``request`` distinguishes request shapes that share a query but not an
    answer (e.g. ``("subplans", min_tables)`` vs a plain estimate).
    """
    return request + query.signature()


class EstimateCache:
    """Bounded two-level LRU (query fingerprints + sub-plan table).

    All operations take the cache lock; they are dict manipulations, so the
    critical sections are tiny compared to even a cached model inference.

    Parameters
    ----------
    max_size:
        Query-level entry bound.
    subplan_max_size:
        Sub-plan-table entry bound; defaults to ``8 * max_size`` (one
        served query typically contributes several sub-plans).
    """

    def __init__(self, max_size: int = 1024,
                 subplan_max_size: int | None = None):
        if max_size < 1:
            raise ValueError("cache max_size must be >= 1")
        if subplan_max_size is None:
            subplan_max_size = 8 * max_size
        if subplan_max_size < 1:
            raise ValueError("cache subplan_max_size must be >= 1")
        self.max_size = max_size
        self.subplan_max_size = subplan_max_size
        self._lock = threading.Lock()
        # both levels store (value, shard_tag) pairs; shard_tag is a
        # frozenset of shard indices the answer read, or None (unknown)
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self._subplans: OrderedDict[tuple, tuple] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.subplan_hits = 0
        self.subplan_misses = 0
        self.subplan_evictions = 0
        self.invalidations = 0
        self.shard_evictions = 0

    _MISSING = object()

    # -- query level -----------------------------------------------------------

    def get(self, key: tuple):
        """The cached value, or None on a miss (estimates are floats > 0 or
        dicts, so None is unambiguous)."""
        with self._lock:
            entry = self._entries.get(key, self._MISSING)
            if entry is self._MISSING:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: tuple, value, stamp: int | None = None,
            shards=None) -> None:
        """Insert ``key``; with ``stamp`` (an invalidation count observed
        before computing ``value``), the put is dropped when an
        invalidation happened in between — a slow computation racing an
        ``update()`` must not resurrect pre-update state.  ``shards``
        optionally tags the entry with the shard indices the answer read
        (see :meth:`invalidate_shards`)."""
        with self._lock:
            if stamp is not None and stamp != self.invalidations:
                return
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (value, _shard_tag(shards))
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self.evictions += 1

    # -- sub-plan level --------------------------------------------------------

    def get_subplan(self, key: tuple):
        """The cached sub-plan estimate for a canonical
        :meth:`~repro.sql.query.Query.subplan_key`, or None on a miss."""
        with self._lock:
            entry = self._subplans.get(key, self._MISSING)
            if entry is self._MISSING:
                self.subplan_misses += 1
                return None
            self._subplans.move_to_end(key)
            self.subplan_hits += 1
            return entry[0]

    def lookup_subplans(self, keys: list[tuple]):
        """All-or-nothing batch lookup: ``{key: value}`` when *every* key
        is present, else None.

        Used to assemble a full sub-plan map from previously served
        entries; a partial set is useless there (the model recomputes the
        whole map anyway), so hits are only counted when the assembly
        succeeds, and on failure only the absent keys count as misses —
        keeping the counters an honest measure of avoided inference.
        """
        with self._lock:
            absent = [k for k in keys if k not in self._subplans]
            if absent:
                self.subplan_misses += len(absent)
                return None
            out = {}
            for key in keys:
                self._subplans.move_to_end(key)
                out[key] = self._subplans[key][0]
            self.subplan_hits += len(keys)
            return out

    def put_subplan(self, key: tuple, value: float,
                    stamp: int | None = None, shards=None) -> None:
        """Insert one sub-plan estimate (same stamp semantics as
        :meth:`put`)."""
        self.put_subplans({key: value}, stamp=stamp, shards=shards)

    def put_subplans(self, entries: dict[tuple, float],
                     stamp: int | None = None, shards=None) -> None:
        """Insert a batch of sub-plan estimates under one lock acquisition
        (same stamp semantics as :meth:`put`); a batch straddling an
        invalidation is dropped whole.  ``shards`` tags the whole batch
        (sub-plans of one query share the query's touched-shard set — a
        superset of each sub-plan's own, so per-shard eviction stays
        conservative)."""
        tag = _shard_tag(shards)
        with self._lock:
            if stamp is not None and stamp != self.invalidations:
                return
            for key, value in entries.items():
                if key in self._subplans:
                    self._subplans.move_to_end(key)
                self._subplans[key] = (value, tag)
            while len(self._subplans) > self.subplan_max_size:
                self._subplans.popitem(last=False)
                self.subplan_evictions += 1

    # -- persistence -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Copyable view of both levels (see :mod:`repro.serve.snapshot`).

        Entries are returned in LRU order (least recent first) so a
        restore into a smaller cache keeps the hottest ones.  Each row is
        ``(key, value, shard_tag)``; restores also accept the pre-tag
        two-element rows of older snapshots.
        """
        with self._lock:
            return {
                "entries": [(key, value, _tag_list(tag))
                            for key, (value, tag) in self._entries.items()],
                "subplans": [(key, value, _tag_list(tag))
                             for key, (value, tag)
                             in self._subplans.items()],
            }

    def restore(self, snapshot: dict, stamp: int | None = None) -> dict:
        """Refill both levels from a :meth:`snapshot` payload.

        Existing entries are kept (restored ones overwrite on key
        collision); bounds are enforced, so restoring a snapshot larger
        than the cache keeps its most-recent tail.  Returns counts of
        restored entries per level, plus ``dropped``.  Callers are
        responsible for only restoring snapshots taken against the
        *same* model version — the serving layer stamps snapshots with a
        model fingerprint (:func:`repro.serve.snapshot.save_snapshot`)
        for exactly that, and passes the invalidation ``stamp`` it
        observed when it verified the fingerprint: like :meth:`put`, a
        restore racing an invalidation is dropped whole rather than
        resurrecting pre-update entries.
        """
        entries = [_restore_row(row) for row in snapshot.get("entries", ())]
        subplans = [_restore_row(row)
                    for row in snapshot.get("subplans", ())]
        with self._lock:
            if stamp is not None and stamp != self.invalidations:
                return {"entries": 0, "subplans": 0, "dropped": True}
            for key, value, tag in entries:
                self._entries[key] = (value, tag)
                self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
            for key, value, tag in subplans:
                self._subplans[key] = (value, tag)
                self._subplans.move_to_end(key)
            while len(self._subplans) > self.subplan_max_size:
                self._subplans.popitem(last=False)
            # report what actually survived bound enforcement, not the
            # snapshot's size — operators read these to judge warm-start
            # coverage
            kept_entries = sum(1 for key, _, _ in entries
                               if key in self._entries)
            kept_subplans = sum(1 for key, _, _ in subplans
                                if key in self._subplans)
        return {"entries": kept_entries, "subplans": kept_subplans,
                "dropped": False}

    # -- lifecycle -------------------------------------------------------------

    def invalidate(self) -> None:
        """Drop every entry at both levels (model swapped or updated in
        place); bumps the invalidation stamp so in-flight puts drop."""
        with self._lock:
            self._entries.clear()
            self._subplans.clear()
            self.invalidations += 1

    def invalidate_shards(self, shard_indices) -> dict:
        """Evict only the entries whose answer read one of
        ``shard_indices`` (a per-shard hot-swap republished them).

        Entries with no shard tag are evicted too — an unknown read set
        must be assumed stale.  The invalidation stamp is bumped, so
        every in-flight stamped put drops, including puts for untouched
        queries: dropping a still-valid put costs one recomputation,
        while admitting a put that raced the swap could serve a mixed
        answer.  Returns per-level eviction counts.
        """
        touched = frozenset(int(index) for index in shard_indices)

        def stale(tag) -> bool:
            return tag is None or bool(tag & touched)

        with self._lock:
            dropped_entries = [key for key, (_, tag)
                               in self._entries.items() if stale(tag)]
            for key in dropped_entries:
                del self._entries[key]
            dropped_subplans = [key for key, (_, tag)
                                in self._subplans.items() if stale(tag)]
            for key in dropped_subplans:
                del self._subplans[key]
            self.invalidations += 1
            self.shard_evictions += len(dropped_entries) + len(
                dropped_subplans)
            return {"entries": len(dropped_entries),
                    "subplans": len(dropped_subplans),
                    "kept_entries": len(self._entries),
                    "kept_subplans": len(self._subplans)}

    def __len__(self) -> int:
        """Number of query-level entries (see ``stats()['subplan_size']``
        for the sub-plan table)."""
        with self._lock:
            return len(self._entries)

    def counters(self) -> dict:
        """One consistent snapshot of every raw counter, read under the
        cache lock.

        This is the *only* sanctioned way for observers (``/metrics``
        collectors, ``stats()``) to read the counters: reading the
        attributes field by field without the lock can pair a hit count
        incremented by one in-flight lookup with a miss count from
        before it — momentarily reporting more hits than lookups.  A
        snapshot is internally consistent by construction
        (``hits + misses`` equals the lookups that had completed when
        the lock was held).
        """
        with self._lock:
            return {
                "size": len(self._entries),
                "max_size": self.max_size,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "subplan_size": len(self._subplans),
                "subplan_max_size": self.subplan_max_size,
                "subplan_hits": self.subplan_hits,
                "subplan_misses": self.subplan_misses,
                "subplan_evictions": self.subplan_evictions,
                "invalidations": self.invalidations,
                "shard_evictions": self.shard_evictions,
            }

    def stats(self) -> dict:
        """JSON-ready counters, split by level: ``hits``/``misses``/
        ``hit_rate`` are query-level; ``subplan_*`` mirror them for the
        sub-plan table.  Derived from one :meth:`counters` snapshot, so
        the rates are always computed from a consistent pair."""
        snapshot = self.counters()
        lookups = snapshot["hits"] + snapshot["misses"]
        sub_lookups = (snapshot["subplan_hits"]
                       + snapshot["subplan_misses"])
        snapshot["hit_rate"] = (snapshot["hits"] / lookups
                                if lookups else 0.0)
        snapshot["subplan_hit_rate"] = (
            snapshot["subplan_hits"] / sub_lookups if sub_lookups else 0.0)
        return snapshot


def _shard_tag(shards):
    """Normalize a touched-shards hint to a frozenset (or None)."""
    if shards is None:
        return None
    return frozenset(int(index) for index in shards)


def _tag_list(tag):
    """JSON/pickle-friendly snapshot form of a shard tag."""
    return sorted(tag) if tag is not None else None


def _restore_row(row):
    """``(key, value[, shard_tag])`` — tolerant of pre-tag snapshots."""
    if len(row) == 2:
        key, value = row
        return key, value, None
    key, value, tag = row
    return key, value, _shard_tag(tag)
