"""Hypothesis round-trip properties across the SQL layer.

Random predicate trees and queries are rendered to SQL and parsed back;
the parsed artifacts must be semantically identical (same signature, same
rows selected).  The cluster transport's frame codec gets the same
treatment: arbitrary payloads through arbitrary stream chunkings.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Column, Table
from repro.engine.filter import evaluate_predicate
from repro.sql import parse_query
from repro.sql.predicates import (
    And,
    Between,
    Comparison,
    In,
    IsNull,
    Like,
    Not,
    Or,
)
from repro.sql.query import ColumnRef, JoinCondition, Query, TableRef

COLUMNS = ("c0", "c1", "c2")


@st.composite
def leaf_predicate(draw):
    column = draw(st.sampled_from(COLUMNS))
    kind = draw(st.integers(0, 4))
    if kind == 0:
        op = draw(st.sampled_from(("=", "!=", "<", "<=", ">", ">=")))
        return Comparison(column, op, draw(st.integers(-5, 15)))
    if kind == 1:
        low = draw(st.integers(-5, 10))
        return Between(column, low, low + draw(st.integers(0, 8)))
    if kind == 2:
        values = draw(st.lists(st.integers(-5, 15), min_size=1, max_size=4))
        return In(column, sorted(set(values)))
    if kind == 3:
        return IsNull(column, negated=draw(st.booleans()))
    return Not(Comparison(column, "=", draw(st.integers(-5, 15))))


@st.composite
def predicate_tree(draw, depth=2):
    if depth == 0:
        return draw(leaf_predicate())
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return draw(leaf_predicate())
    children = draw(st.lists(predicate_tree(depth=depth - 1),
                             min_size=1, max_size=3))
    return And(children) if kind == 1 else Or(children)


def random_table(seed=0, n=40):
    rng = np.random.default_rng(seed)
    cols = []
    for name in COLUMNS:
        values = rng.integers(-5, 15, n)
        nulls = rng.random(n) < 0.15
        cols.append(Column(name, values, null_mask=nulls))
    return Table("t", cols)


class TestPredicateRoundTrip:
    @given(predicate_tree())
    @settings(max_examples=150, deadline=None)
    def test_sql_roundtrip_selects_same_rows(self, pred):
        table = random_table()
        query = Query([TableRef("t", "t")], [], {"t": pred})
        reparsed = parse_query(query.to_sql())
        original = evaluate_predicate(pred, table)
        again = evaluate_predicate(reparsed.filter_of("t"), table)
        assert (original == again).all()

    @given(predicate_tree())
    @settings(max_examples=100, deadline=None)
    def test_columns_preserved(self, pred):
        query = Query([TableRef("t", "t")], [], {"t": pred})
        reparsed = parse_query(query.to_sql())
        assert reparsed.filter_of("t").columns() == pred.columns()


@st.composite
def random_query(draw):
    n_tables = draw(st.integers(2, 4))
    tables = [TableRef(f"T{i}", f"t{i}") for i in range(n_tables)]
    joins = []
    for i in range(1, n_tables):
        left = draw(st.integers(0, i - 1))
        joins.append(JoinCondition(
            ColumnRef(f"t{left}", draw(st.sampled_from(("id", "k")))),
            ColumnRef(f"t{i}", draw(st.sampled_from(("fk", "k"))))))
    filters = {}
    if draw(st.booleans()):
        alias = draw(st.sampled_from([t.alias for t in tables]))
        filters[alias] = draw(leaf_predicate())
    return Query(tables, joins, filters)


class TestQueryRoundTrip:
    @given(random_query())
    @settings(max_examples=150, deadline=None)
    def test_signature_stable_through_sql(self, query):
        reparsed = parse_query(query.to_sql())
        assert reparsed.signature() == query.signature()

    @given(random_query())
    @settings(max_examples=100, deadline=None)
    def test_join_graph_preserved(self, query):
        reparsed = parse_query(query.to_sql())
        assert reparsed.adjacency() == query.adjacency()
        assert reparsed.is_cyclic() == query.is_cyclic()

    def test_like_roundtrip_with_wildcards(self):
        query = Query([TableRef("t", "t")], [],
                      {"t": Like("c0", "%ab_c%")})
        reparsed = parse_query(query.to_sql())
        assert reparsed.filter_of("t") == Like("c0", "%ab_c%")

    def test_string_with_quotes_roundtrip(self):
        query = Query([TableRef("t", "t")], [],
                      {"t": Comparison("c0", "=", "o'brien")})
        reparsed = parse_query(query.to_sql())
        assert reparsed.filter_of("t") == Comparison("c0", "=", "o'brien")


class TestFrameCodecRoundTrip:
    """The TCP frame codec: any payload survives any chunking of the
    byte stream, and garbage or oversized prefixes are refused rather
    than misparsed."""

    @given(st.lists(st.binary(max_size=2048), max_size=8),
           st.integers(min_value=1, max_value=97))
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_through_arbitrary_chunking(self, payloads, step):
        from repro.cluster.net import FrameDecoder, encode_frame

        stream = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        out = []
        for start in range(0, len(stream), step):
            out.extend(decoder.feed(stream[start:start + step]))
        assert out == payloads

    @given(st.binary(min_size=12, max_size=64))
    @settings(max_examples=150, deadline=None)
    def test_garbage_magic_is_refused(self, blob):
        from repro.cluster.net import FRAME_MAGIC, FrameDecoder, FrameError

        if blob[:4] == FRAME_MAGIC:
            blob = b"XXXX" + blob[4:]
        with pytest.raises(FrameError):
            FrameDecoder().feed(blob)

    @given(st.integers(min_value=1, max_value=1 << 40))
    @settings(max_examples=100, deadline=None)
    def test_oversized_length_prefix_is_refused(self, excess):
        import struct

        from repro.cluster.net import FRAME_MAGIC, FrameDecoder, FrameError

        limit = 4096
        header = struct.pack(">4sQ", FRAME_MAGIC, limit + excess)
        with pytest.raises(FrameError):
            FrameDecoder(max_frame=limit).feed(header)

    @given(st.binary(min_size=0, max_size=512),
           st.integers(min_value=0, max_value=11))
    @settings(max_examples=150, deadline=None)
    def test_partial_read_resumes(self, payload, cut):
        """Feeding any prefix — even a split header — yields nothing,
        and the remainder completes the frame exactly once."""
        from repro.cluster.net import FrameDecoder, encode_frame

        frame = encode_frame(payload)
        decoder = FrameDecoder()
        assert decoder.feed(frame[:cut]) == []
        assert decoder.feed(frame[cut:-1] if len(frame) > cut else b"") == []
        tail = frame[-1:] if len(frame) > cut else frame[cut:]
        assert decoder.feed(tail) == [payload]

    @given(st.binary(max_size=4096))
    @settings(max_examples=100, deadline=None)
    def test_encode_respects_max_frame(self, payload):
        from repro.cluster.net import FrameError, encode_frame

        if len(payload) > 64:
            with pytest.raises(FrameError):
                encode_frame(payload, max_frame=64)
        else:
            assert encode_frame(payload, max_frame=64)
