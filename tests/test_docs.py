"""Documentation health: intra-repo links resolve, examples compile,
and the documented serving surface keeps its docstrings.

Run standalone in the CI docs job:
``python -m pytest tests/test_docs.py``.
"""

import compileall
import inspect
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

# [text](target) — excluding images; targets are checked when they are
# repo-relative paths (external URLs and pure #anchors are skipped)
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")

_EXTERNAL = ("http://", "https://", "mailto:")


def _doc_files() -> list[Path]:
    return sorted([REPO / "README.md", *(REPO / "docs").glob("*.md")])


def _intra_repo_links(path: Path) -> list[str]:
    return [t for t in _LINK.findall(path.read_text(encoding="utf-8"))
            if not t.startswith(_EXTERNAL) and not t.startswith("#")]


class TestDocLinks:
    def test_doc_pages_exist_and_are_linked_from_readme(self):
        assert (REPO / "docs" / "ARCHITECTURE.md").is_file()
        assert (REPO / "docs" / "API.md").is_file()
        readme_links = _intra_repo_links(REPO / "README.md")
        assert "docs/ARCHITECTURE.md" in readme_links
        assert "docs/API.md" in readme_links

    @pytest.mark.parametrize("doc", _doc_files(),
                             ids=lambda p: str(p.relative_to(REPO)))
    def test_intra_repo_links_resolve(self, doc):
        """Every repo-relative markdown link must point at a real file or
        directory (anchors are stripped before checking)."""
        broken = []
        for target in _intra_repo_links(doc):
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (doc.parent / relative).exists():
                broken.append(target)
        assert not broken, f"broken links in {doc.name}: {broken}"


class TestExamples:
    def test_examples_compile(self):
        """Every example must at least be syntactically valid (the CI docs
        job runs the same check as ``python -m compileall examples/``)."""
        assert compileall.compile_dir(str(REPO / "examples"), quiet=2,
                                      force=True)


class TestServeDocstrings:
    """docs/API.md documents the serving surface; these checks keep the
    code side of that contract honest."""

    def _public_symbols(self):
        import repro.serve as serve

        for name in serve.__all__:
            obj = getattr(serve, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                yield name, obj

    def test_every_public_serve_symbol_has_a_docstring(self):
        missing = [name for name, obj in self._public_symbols()
                   if not (obj.__doc__ or "").strip()]
        assert not missing, f"undocumented serve symbols: {missing}"

    def test_every_public_method_has_a_docstring(self):
        missing = []
        for name, obj in self._public_symbols():
            if not inspect.isclass(obj):
                continue
            for attr, member in vars(obj).items():
                if attr.startswith("_") or not callable(member):
                    continue
                if not (getattr(member, "__doc__", "") or "").strip():
                    missing.append(f"{name}.{attr}")
        assert not missing, f"undocumented serve methods: {missing}"

    def test_api_md_mentions_every_public_symbol(self):
        api = (REPO / "docs" / "API.md").read_text(encoding="utf-8")
        missing = [name for name, _ in self._public_symbols()
                   if name not in api]
        assert not missing, f"symbols absent from docs/API.md: {missing}"
