"""obs.trace: span trees, context propagation (threads and processes),
ring buffers, and the JSONL exporter."""

import json
import threading

from repro.obs import (
    NULL_TRACER,
    JsonlTraceExporter,
    TraceLog,
    Tracer,
    absorb_remote_spans,
    capture_context,
    trace_span,
    use_context,
    wire_context,
)
from repro.obs.trace import remote_span


def _tree_names(span, out=None):
    out = [] if out is None else out
    out.append(span["name"])
    for child in span["children"]:
        _tree_names(child, out)
    return out


class TestSpanTree:
    def test_nested_spans_render_one_tree(self):
        tracer = Tracer()
        with tracer.trace("request", model="m") as root:
            with trace_span("parse"):
                pass
            with trace_span("estimate"):
                with trace_span("probe"):
                    pass
        record = tracer.record_of(root)
        tree = record.to_json()
        assert tree["trace_id"] == root.trace_id
        assert tree["span_count"] == 4
        assert _tree_names(tree["root"]) == ["request", "parse",
                                             "estimate", "probe"]
        probe = tree["root"]["children"][1]["children"][0]
        assert probe["parent_id"] == tree["root"]["children"][1]["span_id"]
        assert all(span["trace_id"] == root.trace_id
                   for span in (tree["root"], probe))

    def test_span_outside_any_trace_is_free_and_silent(self):
        with trace_span("orphan") as span:
            assert span is None

    def test_errors_are_recorded_on_the_span(self):
        tracer = Tracer()
        try:
            with tracer.trace("request") as root:
                with trace_span("inner"):
                    raise ValueError("boom")
        except ValueError:
            pass
        tree = tracer.record_of(root).to_json()
        assert "ValueError" in tree["root"]["error"]
        assert "ValueError" in tree["root"]["children"][0]["error"]

    def test_annotate_attaches_attributes(self):
        tracer = Tracer()
        with tracer.trace("request") as root:
            with trace_span("cache.lookup") as span:
                span.annotate(level="subplan")
        tree = tracer.record_of(root).to_json()
        assert tree["root"]["children"][0]["attributes"] == {
            "level": "subplan"}

    def test_record_of_is_consumed_once(self):
        tracer = Tracer()
        with tracer.trace("request") as root:
            pass
        assert tracer.record_of(root) is not None
        assert tracer.record_of(root) is None


class TestContextPropagation:
    def test_executor_thread_joins_the_trace_via_capture(self):
        tracer = Tracer()
        with tracer.trace("request") as root:
            ctx = capture_context()

            def task():
                with use_context(ctx):
                    with trace_span("worker.task"):
                        pass

            t = threading.Thread(target=task)
            t.start()
            t.join()
        tree = tracer.record_of(root).to_json()
        assert "worker.task" in _tree_names(tree["root"])

    def test_wire_context_round_trip_absorbs_remote_spans(self):
        tracer = Tracer()
        with tracer.trace("request") as root:
            with trace_span("rpc.BatchProbe") as rpc:
                wire = wire_context()
                assert wire == (root.trace_id, rpc.span_id)
                # the "worker side": a picklable dict against the wire
                span = remote_span(wire[0], wire[1], "worker.BatchProbe",
                                   1.0, 0.002, attributes={"pid": 42})
                absorb_remote_spans((span,))
        tree = tracer.record_of(root).to_json()
        rpc_node = tree["root"]["children"][0]
        worker_node = rpc_node["children"][0]
        assert worker_node["name"] == "worker.BatchProbe"
        assert worker_node["remote"] and worker_node["attributes"] == {
            "pid": 42}
        assert worker_node["trace_id"] == root.trace_id

    def test_foreign_trace_spans_are_rejected(self):
        tracer = Tracer()
        with tracer.trace("request") as root:
            alien = remote_span("t-other", "s-other", "worker.X", 0.0, 0.1)
            absorb_remote_spans((alien,))
        assert tracer.record_of(root).to_json()["span_count"] == 1

    def test_wire_context_is_none_outside_a_trace(self):
        assert wire_context() is None
        absorb_remote_spans(({"trace_id": "t"},))  # harmless no-op


class TestTraceLog:
    def test_slow_ring_keeps_only_slow_traces(self):
        log = TraceLog(capacity=8, slow_capacity=8, slow_threshold_ms=50.0)
        tracer = Tracer(log=log)
        with tracer.trace("fast"):
            pass
        with tracer.trace("slow") as root:
            root._t0 -= 1.0  # backdate: 1s duration
        recent = tracer.traces()
        assert [t["name"] for t in recent] == ["slow", "fast"]
        slow = tracer.traces(slow=True)
        assert [t["name"] for t in slow] == ["slow"]
        assert log.describe() == {"recent": 2, "slow": 1,
                                  "slow_threshold_ms": 50.0}

    def test_ring_capacity_bounds_memory(self):
        tracer = Tracer(log=TraceLog(capacity=4, slow_capacity=2))
        for i in range(10):
            with tracer.trace(f"r{i}"):
                pass
        names = [t["name"] for t in tracer.traces(limit=100)]
        assert names == ["r9", "r8", "r7", "r6"]


class TestExporter:
    def test_one_json_line_per_trace(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        with JsonlTraceExporter(str(path)) as exporter:
            tracer = Tracer(exporter=exporter)
            for name in ("a", "b"):
                with tracer.trace(name):
                    with trace_span("step"):
                        pass
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["name"] == "a" and first["span_count"] == 2
        assert first["root"]["children"][0]["name"] == "step"

    def test_export_failure_never_fails_the_request(self, tmp_path):
        class Broken:
            def export(self, record):
                raise OSError("disk full")

        tracer = Tracer(exporter=Broken())
        with tracer.trace("request"):
            pass
        assert tracer.traces()[0]["name"] == "request"


class TestNullTracer:
    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.trace("request") as root:
            assert root is None
            with NULL_TRACER.span("inner") as span:
                assert span is None
        assert NULL_TRACER.traces() == []
        assert NULL_TRACER.record_of(None) is None
        assert not NULL_TRACER.enabled
