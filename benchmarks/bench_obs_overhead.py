"""Observability overhead gate: always-on telemetry must stay <5% QPS.

The obs layer's contract is that instrumenting the serving hot path —
the metrics registry's histogram observes and the tracer's span scopes —
is cheap enough to leave on in production.  This bench serves the same
workload through two builds of the *same* service code:

- **instrumented**: the default ``EstimationService`` (live
  ``MetricsRegistry`` + ``Tracer``);
- **null**: the no-op twins (:data:`~repro.obs.NULL_METRICS`,
  :data:`~repro.obs.NULL_TRACER`), i.e. genuinely uninstrumented.

What the gate measures, and why
-------------------------------
Per-request instrumentation has a hard floor in pure Python: a span is
an object allocation plus two clock reads, a labeled histogram observe
is a lock plus a dict update — together ~10-15us per request.  That
floor can never be <5% of a ~20us in-memory cache hit, so a relative
gate on the hit path would only ever measure the interpreter, not the
design.  The regime that matters is the one the paper's system actually
serves: FactorJoin *inference* (cache miss), which costs milliseconds
per query at benchmark scale.  There the same 15us is ~1%.

So this bench gates the <5% QPS budget on the **inference path** — an
LRU-1 cache and ``subplan_reuse=False`` over distinct workload queries
make every request a genuine model estimate — and separately bounds the
**absolute** per-request cost on the cache-hit path, which pins the
instrumentation floor itself without drowning it in a ratio.

Rounds are interleaved (null, instrumented, null, ...) so scheduler and
thermal drift hit both builds alike, and each *query* keeps its best
time across rounds — a preemption spike poisons one query in one round,
not a whole round — so the sum of per-query minima is the least
noise-contaminated sample of each code path's true cost.

The final check scrapes a **live** ``GET /metrics`` under concurrent
traffic and validates the body with the strict exposition parser — the
CI guard that the text Prometheus ingests is well-formed while the
counters underneath are moving.

The cluster scenario applies the same discipline one layer down: two
real TCP shard workers with live per-worker registries versus two with
:data:`~repro.obs.NULL_METRICS`, gating worker-side instrumentation to
the same <5% budget and bounding the latency of a federated scrape
(driver ``/metrics`` → ``CollectMetrics`` RPC per worker).

Every gate also records its numbers into ``BENCH_obs.json``
(machine-readable: QPS, overhead %, scrape latency) so CI can upload
the measurements as an artifact and trend them across commits.
"""

import json
import os
import threading
import time
from contextlib import contextmanager

import pytest

from repro.cluster import ClusterModel, WorkerServer
from repro.core.estimator import FactorJoin, FactorJoinConfig
from repro.eval.harness import make_context
from repro.obs import NULL_METRICS, NULL_TRACER, parse_prometheus_text
from repro.serve import EstimationService, LocalArtifactStore, \
    serve_in_background
from repro.shard import ShardedFactorJoin
from repro.utils import format_table

#: Instrumented serving must retain this fraction of null-build QPS on
#: the inference (cache-miss) path.
MIN_QPS_RATIO = 0.95

#: Absolute per-request instrumentation budget on the cache-hit path.
#: The measured floor is ~15us (4 spans + 1 bound observe); the bound
#: leaves headroom for a noisy shared runner while still failing fast
#: if the hot path grows a disproportionate cost.
MAX_HIT_OVERHEAD_US = 75.0

#: A federated scrape does one 5s-timeout ``CollectMetrics`` RPC per
#: worker, serially; against two healthy localhost workers it takes
#: milliseconds.  The bound catches a scrape path that starts blocking
#: on worker traffic (it must never ride the request lock).
MAX_FEDERATED_SCRAPE_SECONDS = 2.0

ROUNDS = 10
N_QUERIES = 20
N_CLUSTER_WORKERS = 2

#: Gate measurements accumulated across tests, flushed to
#: ``BENCH_obs.json`` (override the path with ``BENCH_OBS_JSON``) by the
#: module-scoped reporter fixture below.
RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Write whatever gates ran to the machine-readable report, even on
    partial failure — CI uploads the file as an artifact either way."""
    yield
    path = os.environ.get("BENCH_OBS_JSON", "BENCH_obs.json")
    payload = {"generated_by": "benchmarks/bench_obs_overhead.py",
               **RESULTS}
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.fixture(scope="module")
def obs_ctx():
    # large enough that one inference costs ~1ms — the serving regime
    # the 5% budget is written for (see module docstring)
    return make_context("stats", scale=0.2, seed=0, max_tables=6)


@pytest.fixture(scope="module")
def fitted(obs_ctx):
    model = FactorJoin(FactorJoinConfig(
        n_bins=8, table_estimator="truescan", seed=0))
    return model.fit(obs_ctx.database)


def _service(fitted, instrumented: bool, **kwargs) -> EstimationService:
    if not instrumented:
        kwargs.update(metrics=NULL_METRICS, tracer=NULL_TRACER)
    service = EstimationService(**kwargs)
    service.register("default", fitted)
    return service


def _interleaved_best(services: dict, queries) -> dict:
    """Mean of per-query best seconds for each service, rounds
    interleaved (see the module docstring for why per-query minima)."""
    for service in services.values():  # warm caches and code paths
        for query in queries:
            service.estimate(query)
    best = {name: [float("inf")] * len(queries) for name in services}
    for _ in range(ROUNDS):
        for name, service in services.items():
            per_query = best[name]
            for i, query in enumerate(queries):
                start = time.perf_counter()
                service.estimate(query)
                elapsed = time.perf_counter() - start
                if elapsed < per_query[i]:
                    per_query[i] = elapsed
    return {name: sum(per_query) / len(per_query)
            for name, per_query in best.items()}


class TestOverheadGate:
    def test_inference_qps_within_five_percent_of_null(self, fitted,
                                                       obs_ctx):
        queries = obs_ctx.workload[:N_QUERIES]
        # LRU-1 + no subplan reuse + distinct queries round-robin:
        # every request is a genuine inference
        services = {
            "null": _service(fitted, False, cache_size=1,
                             subplan_reuse=False),
            "instrumented": _service(fitted, True, cache_size=1,
                                     subplan_reuse=False),
        }
        best = _interleaved_best(services, queries)
        ratio = best["null"] / best["instrumented"]
        RESULTS["inference"] = {
            "null_qps": 1.0 / best["null"],
            "instrumented_qps": 1.0 / best["instrumented"],
            "qps_ratio": ratio,
            "overhead_pct": (1.0 - ratio) * 100.0,
        }
        print()
        print(format_table(
            ["build", "inference QPS", "ratio vs null"],
            [["null (NULL_METRICS/NULL_TRACER)",
              f"{1.0 / best['null']:.0f}", "1.000"],
             ["instrumented (default)",
              f"{1.0 / best['instrumented']:.0f}", f"{ratio:.3f}"]]))
        assert ratio >= MIN_QPS_RATIO, (
            f"always-on telemetry costs {(1 - ratio) * 100:.1f}% QPS "
            f"(gate: <{(1 - MIN_QPS_RATIO) * 100:.0f}%)")
        # the instrumented build actually recorded the traffic it served
        count, *_ = services["instrumented"].metrics.histogram(
            "repro_request_seconds").snapshot()
        assert count > 0
        assert services["null"].metrics.collect() == []

    def test_hit_path_cost_stays_bounded(self, fitted, obs_ctx):
        queries = obs_ctx.workload[:N_QUERIES]
        services = {
            "null": _service(fitted, False),
            "instrumented": _service(fitted, True),
        }
        best = _interleaved_best(services, queries)
        overhead_us = (best["instrumented"] - best["null"]) * 1e6
        RESULTS["hit_path"] = {
            "null_us_per_request": best["null"] * 1e6,
            "instrumented_us_per_request": best["instrumented"] * 1e6,
            "overhead_us": overhead_us,
        }
        print()
        print(format_table(
            ["build", "cache-hit us/req"],
            [["null", f"{best['null'] * 1e6:.1f}"],
             ["instrumented", f"{best['instrumented'] * 1e6:.1f}"],
             ["overhead", f"{overhead_us:.1f}"]]))
        assert overhead_us < MAX_HIT_OVERHEAD_US, (
            f"per-request instrumentation cost {overhead_us:.1f}us "
            f"exceeds the {MAX_HIT_OVERHEAD_US:.0f}us budget")


class TestLiveScrape:
    def test_metrics_scrape_parses_under_concurrent_traffic(self, fitted,
                                                            obs_ctx):
        import urllib.request

        queries = obs_ctx.workload[:10]
        service = _service(fitted, instrumented=True)
        server, _ = serve_in_background(service, port=0)
        try:
            host, port = server.server_address[:2]
            stop = threading.Event()

            def traffic():
                while not stop.is_set():
                    for query in queries:
                        service.estimate(query)

            thread = threading.Thread(target=traffic)
            thread.start()
            try:
                scrape_seconds = []
                for _ in range(10):
                    started = time.perf_counter()
                    with urllib.request.urlopen(
                            f"http://{host}:{port}/metrics",
                            timeout=10) as resp:
                        assert resp.status == 200
                        body = resp.read().decode()
                    scrape_seconds.append(time.perf_counter() - started)
                    families = parse_prometheus_text(body)
                    assert families["repro_request_seconds"][
                        "type"] == "histogram"
                    assert "repro_cache_hits_total" in families
                RESULTS["live_scrape"] = {
                    "best_seconds": min(scrape_seconds),
                    "worst_seconds": max(scrape_seconds),
                }
            finally:
                stop.set()
                thread.join()
        finally:
            server.shutdown()
            server.server_close()


@pytest.fixture(scope="module")
def cluster_artifact(obs_ctx, tmp_path_factory):
    model = ShardedFactorJoin(
        FactorJoinConfig(n_bins=8, table_estimator="truescan", seed=0),
        n_shards=N_CLUSTER_WORKERS, parallel="serial").fit(
            obs_ctx.database)
    path = tmp_path_factory.mktemp("obs-cluster") / "ensemble"
    model.save(path)
    return path


@contextmanager
def _tcp_cluster(path, store_root, instrumented: bool):
    """A ClusterModel over real TCP worker servers whose registries are
    live (default) or :data:`NULL_METRICS` (genuinely uninstrumented)."""
    metrics = None if instrumented else NULL_METRICS
    servers = [
        WorkerServer(store=LocalArtifactStore(store_root),
                     metrics=metrics).start()
        for _ in range(N_CLUSTER_WORKERS)
    ]
    model = ClusterModel.from_artifact(
        path, addresses=[server.address for server in servers],
        store=LocalArtifactStore(store_root))
    try:
        yield model
    finally:
        model.close()
        for server in servers:
            server.stop()


class TestClusterOverheadGate:
    def test_worker_instrumentation_and_federated_scrape(
            self, cluster_artifact, obs_ctx, tmp_path_factory):
        """Same <5% budget, one layer down: per-worker registries timing
        every handler dispatch across real TCP transports, then a
        federated ``/metrics`` scrape (CollectMetrics RPC per worker)
        that must stay fast and strict-parse clean."""
        queries = obs_ctx.workload[:N_QUERIES]
        roots = tmp_path_factory.mktemp("obs-cluster-stores")
        with _tcp_cluster(cluster_artifact, roots / "null",
                          instrumented=False) as null_model, \
                _tcp_cluster(cluster_artifact, roots / "live",
                             instrumented=True) as live_model:
            best = _interleaved_best(
                {"null": null_model, "instrumented": live_model}, queries)
            ratio = best["null"] / best["instrumented"]

            service = _service_for(live_model)
            started = time.perf_counter()
            text = service.metrics.render_prometheus()
            scrape = time.perf_counter() - started
            families = parse_prometheus_text(text)

        RESULTS["cluster"] = {
            "n_workers": N_CLUSTER_WORKERS,
            "null_qps": 1.0 / best["null"],
            "instrumented_qps": 1.0 / best["instrumented"],
            "qps_ratio": ratio,
            "overhead_pct": (1.0 - ratio) * 100.0,
            "federated_scrape_seconds": scrape,
        }
        print()
        print(format_table(
            ["build", "cluster QPS", "ratio vs null"],
            [["null workers (NULL_METRICS)",
              f"{1.0 / best['null']:.0f}", "1.000"],
             ["instrumented workers",
              f"{1.0 / best['instrumented']:.0f}", f"{ratio:.3f}"]]))
        print(f"federated scrape: {scrape * 1e3:.1f}ms "
              f"(bound {MAX_FEDERATED_SCRAPE_SECONDS:.1f}s)")

        assert ratio >= MIN_QPS_RATIO, (
            f"worker-side telemetry costs {(1 - ratio) * 100:.1f}% QPS "
            f"(gate: <{(1 - MIN_QPS_RATIO) * 100:.0f}%)")
        assert scrape < MAX_FEDERATED_SCRAPE_SECONDS, (
            f"federated scrape took {scrape:.2f}s through "
            f"{N_CLUSTER_WORKERS} TCP workers")
        handler = families["repro_worker_handler_seconds"]
        workers_seen = {labels["worker"]
                        for _name, labels, _value in handler["samples"]}
        assert len(workers_seen) == N_CLUSTER_WORKERS


def _service_for(model) -> EstimationService:
    service = EstimationService()
    service.register("cluster", model)
    return service
