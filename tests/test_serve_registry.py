"""Tests for the thread-safe model registry and its hot-swap semantics."""

import threading

import pytest

from repro.errors import ModelNotFoundError
from repro.serve.registry import ModelRegistry


class TestPublish:
    def test_publish_and_get(self):
        reg = ModelRegistry()
        model = object()
        record = reg.publish("m", model, metadata={"k": 1})
        assert reg.get("m") is model
        assert record.version == 1
        assert record.metadata == {"k": 1}
        assert "m" in reg and len(reg) == 1

    def test_versions_are_monotone_per_name(self):
        reg = ModelRegistry()
        assert reg.publish("m", object()).version == 1
        assert reg.publish("m", object()).version == 2
        assert reg.publish("other", object()).version == 1
        # a republish after unpublish keeps counting up
        reg.unpublish("m")
        assert reg.publish("m", object()).version == 3

    def test_swap_replaces_atomically(self):
        reg = ModelRegistry()
        old, new = object(), object()
        reg.publish("m", old)
        before = reg.record("m")
        reg.publish("m", new)
        assert reg.get("m") is new
        # the retired record is untouched — in-flight readers keep a
        # consistent snapshot
        assert before.model is old

    def test_unknown_name(self):
        reg = ModelRegistry()
        reg.publish("present", object())
        with pytest.raises(ModelNotFoundError, match="present"):
            reg.get("absent")

    def test_unpublish(self):
        reg = ModelRegistry()
        model = object()
        reg.publish("m", model)
        assert reg.unpublish("m").model is model
        assert "m" not in reg
        with pytest.raises(ModelNotFoundError):
            reg.get("m")


class TestListeners:
    def test_listener_sees_publish_and_unpublish(self):
        reg = ModelRegistry()
        events = []
        reg.add_swap_listener(lambda name, rec: events.append((name, rec)))
        reg.publish("m", object())
        reg.unpublish("m")
        assert [name for name, _ in events] == ["m", "m"]
        assert events[0][1].version == 1
        assert events[1][1] is None

    def test_swap_count(self):
        reg = ModelRegistry()
        reg.publish("a", object())
        reg.publish("a", object())
        reg.unpublish("a")
        assert reg.swap_count == 3


class TestConcurrency:
    def test_concurrent_publish_and_read(self):
        """Hammer the registry from publisher and reader threads; readers
        must always observe a complete record."""
        reg = ModelRegistry()
        reg.publish("m", 0)
        stop = threading.Event()
        errors = []

        def publisher():
            for i in range(200):
                reg.publish("m", i)

        def reader():
            while not stop.is_set():
                record = reg.record("m")
                if not isinstance(record.model, int) or record.version < 1:
                    errors.append(record)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for t in readers:
            t.start()
        writers = [threading.Thread(target=publisher) for _ in range(4)]
        for t in writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert not errors
        # the seed publish plus 4 threads x 200 publishes
        assert reg.record("m").version == 801
