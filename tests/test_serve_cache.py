"""Tests for the LRU estimate cache and canonical query fingerprints."""

import pytest

from repro.serve.cache import EstimateCache, query_fingerprint
from repro.sql import parse_query


class TestFingerprint:
    def test_syntactic_permutations_share_a_fingerprint(self):
        q1 = parse_query("SELECT COUNT(*) FROM A a, B b "
                         "WHERE a.id = b.aid AND a.x > 1")
        q2 = parse_query("SELECT COUNT(*) FROM B b, A a "
                         "WHERE b.aid = a.id AND a.x > 1")
        assert query_fingerprint(q1) == query_fingerprint(q2)

    def test_different_predicates_differ(self):
        q1 = parse_query("SELECT COUNT(*) FROM A a WHERE a.x > 1")
        q2 = parse_query("SELECT COUNT(*) FROM A a WHERE a.x > 2")
        assert query_fingerprint(q1) != query_fingerprint(q2)

    def test_request_shape_disambiguates(self):
        q = parse_query("SELECT COUNT(*) FROM A a WHERE a.x > 1")
        assert query_fingerprint(q) != query_fingerprint(
            q, request=("subplans", 1))


class TestCache:
    def test_hit_miss_accounting(self):
        cache = EstimateCache(max_size=4)
        assert cache.get(("k",)) is None
        cache.put(("k",), 1.5)
        assert cache.get(("k",)) == 1.5
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_lru_eviction_order(self):
        cache = EstimateCache(max_size=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.get(("a",))           # refresh a; b becomes the LRU entry
        cache.put(("c",), 3)
        assert cache.get(("a",)) == 1
        assert cache.get(("b",)) is None
        assert cache.stats()["evictions"] == 1

    def test_put_existing_key_refreshes_without_evicting(self):
        cache = EstimateCache(max_size=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.put(("a",), 10)
        assert len(cache) == 2
        assert cache.get(("a",)) == 10
        assert cache.stats()["evictions"] == 0

    def test_invalidate_clears_but_keeps_counters(self):
        cache = EstimateCache(max_size=4)
        cache.put(("a",), 1)
        cache.get(("a",))
        cache.invalidate()
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["invalidations"] == 1
        assert cache.get(("a",)) is None

    def test_rejects_degenerate_size(self):
        with pytest.raises(ValueError):
            EstimateCache(max_size=0)

    def test_stamped_put_dropped_after_invalidation(self):
        """A computation that started before an invalidation must not
        resurrect pre-invalidation state (estimate/update race)."""
        cache = EstimateCache(max_size=4)
        stamp = cache.invalidations
        cache.invalidate()                  # update() lands mid-computation
        cache.put(("k",), 1.0, stamp=stamp)
        assert cache.get(("k",)) is None
        cache.put(("k",), 2.0, stamp=cache.invalidations)
        assert cache.get(("k",)) == 2.0


class TestSubplanLevel:
    def test_levels_keep_separate_counters(self):
        """Query-level and sub-plan-level hits must never be conflated —
        benchmark numbers depend on the split."""
        cache = EstimateCache(max_size=4)
        cache.put(("q",), 1.0)
        cache.put_subplan(("s",), 2.0)
        assert cache.get(("q",)) == 1.0
        assert cache.get_subplan(("s",)) == 2.0
        assert cache.get_subplan(("absent",)) is None
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 0
        assert stats["subplan_hits"] == 1 and stats["subplan_misses"] == 1
        assert stats["subplan_hit_rate"] == 0.5
        assert stats["size"] == 1 and stats["subplan_size"] == 1

    def test_lookup_subplans_all_or_nothing(self):
        cache = EstimateCache(max_size=4)
        cache.put_subplans({("a",): 1.0, ("b",): 2.0})
        assert cache.lookup_subplans([("a",), ("b",)]) == {
            ("a",): 1.0, ("b",): 2.0}
        assert cache.stats()["subplan_hits"] == 2
        # one absent key fails the whole lookup; only the absent key
        # counts as a miss (present entries were not used)
        assert cache.lookup_subplans([("a",), ("c",)]) is None
        stats = cache.stats()
        assert stats["subplan_hits"] == 2
        assert stats["subplan_misses"] == 1

    def test_subplan_lru_bound_and_evictions(self):
        cache = EstimateCache(max_size=1, subplan_max_size=2)
        cache.put_subplans({("a",): 1.0, ("b",): 2.0})
        cache.get_subplan(("a",))           # refresh a; b becomes LRU
        cache.put_subplan(("c",), 3.0)
        assert cache.get_subplan(("a",)) == 1.0
        assert cache.get_subplan(("b",)) is None
        assert cache.stats()["subplan_evictions"] == 1

    def test_invalidate_clears_both_levels(self):
        cache = EstimateCache(max_size=4)
        cache.put(("q",), 1.0)
        cache.put_subplan(("s",), 2.0)
        cache.invalidate()
        assert cache.get(("q",)) is None
        assert cache.get_subplan(("s",)) is None
        assert cache.stats()["invalidations"] == 1

    def test_stamped_subplan_put_dropped_after_invalidation(self):
        """The stamped-put race protection covers the sub-plan table: a
        sub-plan map computed against a pre-update model must not land
        after the invalidation."""
        cache = EstimateCache(max_size=4)
        stamp = cache.invalidations
        cache.invalidate()
        cache.put_subplans({("s",): 1.0, ("t",): 2.0}, stamp=stamp)
        assert cache.get_subplan(("s",)) is None
        assert cache.get_subplan(("t",)) is None

    def test_rejects_degenerate_subplan_size(self):
        with pytest.raises(ValueError):
            EstimateCache(max_size=4, subplan_max_size=0)


class TestSnapshot:
    def test_snapshot_restore_round_trip(self):
        cache = EstimateCache(max_size=8)
        cache.put(("q1",), 10.0)
        cache.put(("q2",), 20.0)
        cache.put_subplan(("s1",), 1.5)
        fresh = EstimateCache(max_size=8)
        counts = fresh.restore(cache.snapshot())
        assert counts == {"entries": 2, "subplans": 1, "dropped": False}
        assert fresh.get(("q1",)) == 10.0
        assert fresh.get_subplan(("s1",)) == 1.5

    def test_restore_into_smaller_cache_keeps_hottest(self):
        cache = EstimateCache(max_size=8)
        for i in range(6):
            cache.put((f"q{i}",), float(i))
        cache.get(("q0",))  # refresh q0 so it becomes most-recent
        small = EstimateCache(max_size=2)
        small.restore(cache.snapshot())
        assert small.get(("q0",)) is not None
        assert small.get(("q5",)) is not None
        assert small.get(("q1",)) is None

    def test_restore_keeps_existing_entries(self):
        cache = EstimateCache(max_size=8)
        cache.put(("mine",), 1.0)
        other = EstimateCache(max_size=8)
        other.put(("theirs",), 2.0)
        cache.restore(other.snapshot())
        assert cache.get(("mine",)) == 1.0
        assert cache.get(("theirs",)) == 2.0

    def test_file_snapshot_fingerprint_guard(self, tmp_path):
        from repro.errors import ArtifactError
        from repro.serve.snapshot import restore_snapshot, save_snapshot

        cache = EstimateCache(max_size=8)
        cache.put(("q",), 42.0)
        path = tmp_path / "cache.snap"
        summary = save_snapshot(cache, path, fingerprint="abc",
                                model_name="m")
        assert summary["entries"] == 1

        target = EstimateCache(max_size=8)
        restored = restore_snapshot(target, path, fingerprint="abc")
        assert restored["entries"] == 1
        assert target.get(("q",)) == 42.0
        with pytest.raises(ArtifactError, match="refusing"):
            restore_snapshot(EstimateCache(), path, fingerprint="other")

    def test_restore_racing_invalidation_is_dropped(self):
        cache = EstimateCache(max_size=8)
        cache.put(("q",), 1.0)
        payload = cache.snapshot()
        target = EstimateCache(max_size=8)
        stamp = target.invalidations
        target.invalidate()  # a model update lands mid-restore
        counts = target.restore(payload, stamp=stamp)
        assert counts["dropped"] and counts["entries"] == 0
        assert target.get(("q",)) is None

    def test_corrupt_snapshot_refused(self, tmp_path):
        from repro.errors import ArtifactError
        from repro.serve.snapshot import read_snapshot

        path = tmp_path / "bad.snap"
        with pytest.raises(ArtifactError, match="no cache snapshot"):
            read_snapshot(path)
        path.write_bytes(b"not a pickle")
        with pytest.raises(ArtifactError, match="corrupt"):
            read_snapshot(path)


class TestShardScopedInvalidation:
    """Per-shard hot-swap eviction: only entries whose recorded
    touched-shards include the republished shard are dropped."""

    def _warmed(self):
        cache = EstimateCache(max_size=8)
        cache.put(("q0",), 1.0, shards=[0])
        cache.put(("q01",), 2.0, shards=[0, 1])
        cache.put(("q2",), 3.0, shards=[2])
        cache.put(("untagged",), 4.0)
        cache.put_subplans({("s0",): 0.5}, shards=[0])
        cache.put_subplan(("s1",), 1.5, shards=[1])
        return cache

    def test_evicts_touching_and_untagged_entries_only(self):
        cache = self._warmed()
        counts = cache.invalidate_shards([1])
        assert counts == {"entries": 2, "subplans": 1,
                          "kept_entries": 2, "kept_subplans": 1}
        assert cache.get(("q0",)) == 1.0
        assert cache.get(("q2",)) == 3.0
        assert cache.get(("q01",)) is None       # touched shard 1
        assert cache.get(("untagged",)) is None  # unknown reads -> stale
        assert cache.get_subplan(("s0",)) == 0.5
        assert cache.get_subplan(("s1",)) is None
        assert cache.stats()["shard_evictions"] == 3

    def test_bumps_the_stamp_so_inflight_puts_drop(self):
        cache = self._warmed()
        stamp = cache.invalidations
        cache.invalidate_shards([2])
        cache.put(("late",), 9.0, stamp=stamp, shards=[0])
        assert cache.get(("late",)) is None
        assert cache.invalidations == stamp + 1

    def test_full_invalidate_still_clears_everything(self):
        cache = self._warmed()
        cache.invalidate()
        assert len(cache) == 0
        assert cache.get_subplan(("s0",)) is None

    def test_snapshot_round_trips_shard_tags(self):
        cache = self._warmed()
        fresh = EstimateCache(max_size=8)
        fresh.restore(cache.snapshot())
        fresh.invalidate_shards([1])
        assert fresh.get(("q0",)) == 1.0
        assert fresh.get(("q01",)) is None

    def test_restore_accepts_pre_tag_snapshots(self):
        fresh = EstimateCache(max_size=8)
        counts = fresh.restore({"entries": [(("old",), 7.0)],
                                "subplans": [(("olds",), 0.25)]})
        assert counts == {"entries": 1, "subplans": 1, "dropped": False}
        assert fresh.get(("old",)) == 7.0
        # legacy rows have no tag, so a shard swap evicts them
        fresh.invalidate_shards([5])
        assert fresh.get(("old",)) is None
