"""Incremental model maintenance (paper Section 4.3 / Table 5).

A FactorJoin model is trained on the "old half" of a STATS-like database
(split on creation dates), the rest is inserted incrementally, and the
updated model is compared against a full retrain.

Run:  python examples/incremental_updates.py
"""

import time

from repro.core.estimator import FactorJoin, FactorJoinConfig
from repro.engine import CardinalityExecutor
from repro.eval.metrics import q_error
from repro.workloads import build_stats_ceb
from repro.workloads.benchmark import split_for_update


def main() -> None:
    bench = build_stats_ceb(scale=0.1, seed=2, n_queries=30, n_templates=15)
    db_full = bench.database
    stale_db, inserts = split_for_update(db_full, fraction=0.5)
    n_inserted = sum(len(rows) for rows in inserts.values())
    print(f"training on {stale_db.total_rows():,} old rows; "
          f"{n_inserted:,} rows arrive later")

    config = FactorJoinConfig(n_bins=16, table_estimator="bayescard")
    model = FactorJoin(config).fit(stale_db)

    start = time.perf_counter()
    for table_name, rows in inserts.items():
        model.update(table_name, rows)
    update_seconds = time.perf_counter() - start

    retrained = FactorJoin(config).fit(db_full)
    print(f"incremental update: {update_seconds * 1e3:.1f} ms "
          f"(vs full retrain {retrained.fit_seconds * 1e3:.1f} ms)")

    executor = CardinalityExecutor(db_full)
    updated_errors, retrained_errors = [], []
    for query in bench.workload:
        true = executor.cardinality(query)
        if true <= 0:
            continue
        updated_errors.append(q_error(model.estimate(query), true))
        retrained_errors.append(q_error(retrained.estimate(query), true))
    updated_errors.sort()
    retrained_errors.sort()
    mid = len(updated_errors) // 2
    print(f"median q-error — updated model: {updated_errors[mid]:.2f}, "
          f"retrained model: {retrained_errors[mid]:.2f}")
    print("(bins stay fixed during updates, so the updated model may be "
          "slightly looser — the paper's Table 5 observation)")


if __name__ == "__main__":
    main()
