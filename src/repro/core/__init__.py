"""FactorJoin core: key groups, binning, bin statistics, bound inference."""

from repro.core.binning import (
    Binning,
    equal_depth_binning,
    equal_width_binning,
    gbsa_binning,
    split_bin_budget,
)
from repro.core.bin_stats import BinStats, KeyStatistics
from repro.core.estimator import FactorJoin, FactorJoinConfig
from repro.core.key_groups import (
    KeyGroup,
    QueryKeyGroups,
    query_key_groups,
    schema_key_groups,
)

__all__ = [
    "Binning",
    "BinStats",
    "equal_depth_binning",
    "equal_width_binning",
    "FactorJoin",
    "FactorJoinConfig",
    "gbsa_binning",
    "KeyGroup",
    "KeyStatistics",
    "query_key_groups",
    "QueryKeyGroups",
    "schema_key_groups",
    "split_bin_budget",
]
