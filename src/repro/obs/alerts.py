"""Declarative alerting over metrics, SLO burn rates, and drift scores.

An :class:`AlertRule` names a *signal* — a string the evaluating host
resolves to a float each tick — and a threshold with a ``for_seconds``
hold, so one bad scrape does not page anyone.  The
:class:`AlertEngine` runs every rule through a
pending → firing → resolved state machine with an injectable clock and
emits transition events to a JSONL exporter (the trace-log rotation
machinery, reused).

Signal specs understood by the serving layer's resolver
(:meth:`repro.serve.service.EstimationService.evaluate_alerts`):

- ``slo_burn:<name>:<window>`` — an SLO's burn rate over a window
  label, e.g. ``slo_burn:availability:5m``;
- ``drift:critical`` / ``drift:drifting`` — how many attribution keys
  the drift report currently scores at (at least) that status;
- ``drift:max_score`` — the worst Page-Hinkley score across every key;
- ``metric:<name>`` — a registered instrument's value summed across
  label sets (histograms contribute their observation count).

The engine itself never interprets specs — it hands each rule's
``signal`` to the resolver callable and compares the float that comes
back (``None`` means "signal unavailable", treated as not breaching),
which keeps the rule grammar open for future hosts.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

#: Default breach-hold before a pending alert starts firing.
DEFAULT_HOLD_SECONDS = 60.0

#: Alert states in escalation order (gauge values 0/1/2).
ALERT_STATES = ("ok", "pending", "firing")

_COMPARATORS = {
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative alert condition.

    ``signal`` is resolved to a float by the evaluating host each tick;
    the rule breaches when ``value <comparison> threshold`` and fires
    once it has breached continuously for ``for_seconds``.
    """

    name: str
    signal: str
    threshold: float
    for_seconds: float = DEFAULT_HOLD_SECONDS
    comparison: str = ">"
    severity: str = "page"
    description: str = ""

    def __post_init__(self):
        if self.comparison not in _COMPARATORS:
            raise ValueError(
                f"unknown comparison {self.comparison!r}; "
                f"expected one of {sorted(_COMPARATORS)}")

    def breached(self, value: float) -> bool:
        """Whether ``value`` violates this rule's condition."""
        return _COMPARATORS[self.comparison](value, self.threshold)

    def describe(self) -> dict:
        """JSON-ready rule definition."""
        return {
            "name": self.name,
            "signal": self.signal,
            "comparison": self.comparison,
            "threshold": self.threshold,
            "for_seconds": self.for_seconds,
            "severity": self.severity,
            "description": self.description,
        }


def default_alert_rules() -> tuple[AlertRule, ...]:
    """The stock rule set: fast-burn alerts for the three serving SLOs
    plus one for any drift key going critical.

    A burn rate of 10 over the 5-minute window spends ~1% of a 30-day
    error budget in half an hour — the classic fast-burn page.
    """
    return (
        AlertRule(
            name="availability-fast-burn",
            signal="slo_burn:availability:5m", threshold=10.0,
            for_seconds=60.0, severity="page",
            description="Availability SLO burning >=10x over 5m."),
        AlertRule(
            name="latency-fast-burn",
            signal="slo_burn:latency:5m", threshold=10.0,
            for_seconds=60.0, severity="page",
            description="Latency SLO burning >=10x over 5m."),
        AlertRule(
            name="qerror-fast-burn",
            signal="slo_burn:qerror:5m", threshold=10.0,
            for_seconds=60.0, severity="ticket",
            description="Accuracy (q-error) SLO burning >=10x over 5m."),
        AlertRule(
            name="drift-critical",
            signal="drift:critical", threshold=0.5,
            for_seconds=60.0, severity="page",
            description="At least one drift attribution key is "
                        "critical (sustained accuracy shift)."),
    )


class _RuleState:
    """Mutable evaluation state for one rule."""

    __slots__ = ("status", "since", "pending_since", "value",
                 "firing_count", "resolved_count")

    def __init__(self, now: float):
        self.status = "ok"
        self.since = now
        self.pending_since: float | None = None
        self.value: float | None = None
        self.firing_count = 0
        self.resolved_count = 0


class AlertEngine:
    """Evaluates :class:`AlertRule` conditions through a
    pending → firing → resolved state machine.

    ``clock`` defaults to ``time.monotonic`` and is injectable;
    ``exporter`` (anything with ``export(dict)``, e.g.
    :class:`~repro.obs.export.JsonlEventExporter`) receives one event
    per firing/resolved transition.  Evaluation is driven by the host —
    the serving layer runs a background ticker — so the engine itself
    owns no threads.
    """

    enabled = True

    def __init__(self, rules=(), clock=None, exporter=None):
        self._clock = clock if clock is not None else time.monotonic
        self.exporter = exporter
        self._lock = threading.Lock()
        self._rules: dict[str, AlertRule] = {}
        self._states: dict[str, _RuleState] = {}
        for rule in rules:
            self.add_rule(rule)

    def now(self) -> float:
        """The engine's clock."""
        return self._clock()

    def add_rule(self, rule: AlertRule) -> None:
        """Register (or replace, by name) one rule."""
        with self._lock:
            fresh = rule.name not in self._rules
            self._rules[rule.name] = rule
            if fresh:
                self._states[rule.name] = _RuleState(self._clock())

    def rules(self) -> tuple[AlertRule, ...]:
        """Every registered rule, in registration order."""
        with self._lock:
            return tuple(self._rules.values())

    def evaluate(self, resolver) -> list[dict]:
        """Run one evaluation tick.

        ``resolver(signal_spec)`` must return the signal's current
        float value, or ``None`` when the signal is unavailable
        (treated as not breaching).  Returns the transition events this
        tick produced (each also handed to the exporter)."""
        events = []
        with self._lock:
            now = self._clock()
            for name, rule in self._rules.items():
                state = self._states[name]
                try:
                    value = resolver(rule.signal)
                except Exception:
                    value = None
                state.value = value
                breached = value is not None and rule.breached(value)
                if breached:
                    if state.pending_since is None:
                        state.pending_since = now
                    held = now - state.pending_since
                    if state.status != "firing" and \
                            held >= rule.for_seconds:
                        state.status = "firing"
                        state.since = now
                        state.firing_count += 1
                        events.append(self._event(rule, state, "firing",
                                                  now))
                    elif state.status == "ok":
                        state.status = "pending"
                        state.since = now
                else:
                    state.pending_since = None
                    if state.status == "firing":
                        state.resolved_count += 1
                        events.append(self._event(rule, state,
                                                  "resolved", now))
                    if state.status != "ok":
                        state.status = "ok"
                        state.since = now
        if self.exporter is not None:
            for event in events:
                try:
                    self.exporter.export(event)
                except Exception:
                    pass
        return events

    def _event(self, rule: AlertRule, state: _RuleState, kind: str,
               now: float) -> dict:
        return {
            "event": kind,
            "rule": rule.name,
            "severity": rule.severity,
            "signal": rule.signal,
            "value": state.value,
            "threshold": rule.threshold,
            "comparison": rule.comparison,
            "at": now,
            "description": rule.description,
        }

    def snapshot(self) -> dict:
        """JSON-ready engine state: every rule with its current status,
        last value, and transition counts (the ``GET /v1/alerts``
        body)."""
        with self._lock:
            now = self._clock()
            alerts = []
            for name, rule in self._rules.items():
                state = self._states[name]
                alerts.append({
                    **rule.describe(),
                    "state": state.status,
                    "since": state.since,
                    "age_seconds": now - state.since,
                    "value": state.value,
                    "firing_count": state.firing_count,
                    "resolved_count": state.resolved_count,
                })
            firing = sum(1 for a in alerts if a["state"] == "firing")
            return {"alerts": alerts, "firing": firing}

    def collect(self) -> list[tuple[str, str, str, list]]:
        """``repro_alert_*`` families for the metrics registry."""
        with self._lock:
            if not self._rules:
                return []
            state_samples, transition_samples = [], []
            for name, rule in self._rules.items():
                state = self._states[name]
                state_samples.append((
                    {"rule": name, "severity": rule.severity},
                    float(ALERT_STATES.index(state.status))))
                for kind, count in (("firing", state.firing_count),
                                    ("resolved", state.resolved_count)):
                    if count:
                        transition_samples.append((
                            {"rule": name, "event": kind}, float(count)))
            families = [(
                "gauge", "repro_alert_state",
                "Alert rule state (0 ok, 1 pending, 2 firing).",
                state_samples)]
            if transition_samples:
                families.append((
                    "counter", "repro_alert_transitions_total",
                    "Alert firing/resolved transitions per rule.",
                    transition_samples))
            return families


class NullAlertEngine:
    """No-op twin of :class:`AlertEngine` (telemetry disabled)."""

    enabled = False
    exporter = None

    def now(self) -> float:
        return 0.0

    def add_rule(self, rule) -> None:
        return None

    def rules(self) -> tuple:
        return ()

    def evaluate(self, resolver) -> list:
        return []

    def snapshot(self) -> dict:
        return {"alerts": [], "firing": 0}

    def collect(self) -> list:
        return []


NULL_ALERTS = NullAlertEngine()
