"""Query representation: predicate AST, Query objects, SQL subset parser."""

from repro.sql.predicates import (
    And,
    Between,
    Comparison,
    In,
    IsNull,
    Like,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.sql.query import ColumnRef, JoinCondition, Query, TableRef
from repro.sql.parser import parse_query

__all__ = [
    "And",
    "Between",
    "ColumnRef",
    "Comparison",
    "In",
    "IsNull",
    "JoinCondition",
    "Like",
    "Not",
    "Or",
    "parse_query",
    "Predicate",
    "Query",
    "TableRef",
    "TruePredicate",
]
