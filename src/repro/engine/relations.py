"""Counted relations: (distinct key tuple, multiplicity) compressed tables.

True join cardinalities are computed over these compressed relations — a
relation stores one row per *distinct combination of join-key variables*
together with how many base rows produce it.  Joins then multiply counts and
early projection keeps intermediate sizes proportional to key-domain sizes,
not to the (possibly 1e10-row) denormalized join.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CountedRelation:
    """``keys`` has shape (n, len(vars)); counts[i] base rows share keys[i]."""

    vars: tuple[int, ...]
    keys: np.ndarray
    counts: np.ndarray

    def __post_init__(self):
        self.keys = np.asarray(self.keys, dtype=np.int64)
        if self.keys.ndim == 1:
            self.keys = self.keys.reshape(-1, max(1, len(self.vars)))
        if len(self.vars) == 0:
            self.keys = self.keys.reshape(len(self.counts), 0)
        self.counts = np.asarray(self.counts, dtype=np.float64)

    @property
    def total(self) -> float:
        """Total multiplicity (the relation's cardinality)."""
        return float(self.counts.sum())

    def __len__(self) -> int:
        return len(self.counts)

    def column(self, var: int) -> np.ndarray:
        return self.keys[:, self.vars.index(var)]

    def project(self, keep_vars: tuple[int, ...]) -> "CountedRelation":
        """Keep only ``keep_vars`` and merge rows that became identical."""
        keep_vars = tuple(sorted(set(keep_vars) & set(self.vars)))
        if keep_vars == self.vars:
            return self
        if not keep_vars:
            return CountedRelation((), np.zeros((1, 0)), [self.counts.sum()])
        cols = [self.vars.index(v) for v in keep_vars]
        sub = self.keys[:, cols]
        return compress(keep_vars, sub, self.counts)


def compress(vars: tuple[int, ...], keys: np.ndarray,
             counts: np.ndarray) -> CountedRelation:
    """Merge duplicate key rows, summing their counts."""
    keys = np.asarray(keys, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.float64)
    if keys.ndim == 1:
        keys = keys.reshape(-1, 1)
    if len(keys) == 0:
        return CountedRelation(vars, keys.reshape(0, len(vars)),
                               np.zeros(0))
    uniq, inverse = np.unique(keys, axis=0, return_inverse=True)
    summed = np.zeros(len(uniq), dtype=np.float64)
    np.add.at(summed, inverse.ravel(), counts)
    return CountedRelation(vars, uniq, summed)


def from_columns(vars: tuple[int, ...], columns: list[np.ndarray],
                 valid: np.ndarray | None = None) -> CountedRelation:
    """Build a compressed relation from raw per-row key columns.

    ``valid`` masks out rows with NULL keys (inner-join semantics).
    """
    if not columns:
        n = 1 if valid is None else int(np.count_nonzero(valid))
        return CountedRelation((), np.zeros((1, 0)), [float(n)])
    stacked = np.stack(columns, axis=1).astype(np.int64, copy=False)
    if valid is not None:
        stacked = stacked[valid]
    counts = np.ones(len(stacked), dtype=np.float64)
    return compress(vars, stacked, counts)


def join(left: CountedRelation, right: CountedRelation,
         keep_vars: tuple[int, ...] | None = None) -> CountedRelation:
    """Natural join on shared variables; optionally project the result.

    Implementation: sort the right side by its shared-variable codes, binary
    search each left row's code to find its matching range, then expand
    ranges (`np.repeat`) and multiply counts.
    """
    shared = tuple(sorted(set(left.vars) & set(right.vars)))
    if not shared:
        return _cross_join(left, right, keep_vars)

    left_codes, right_codes = _shared_codes(left, right, shared)
    order = np.argsort(right_codes, kind="stable")
    sorted_codes = right_codes[order]
    starts = np.searchsorted(sorted_codes, left_codes, side="left")
    ends = np.searchsorted(sorted_codes, left_codes, side="right")
    reps = ends - starts
    left_idx = np.repeat(np.arange(len(left)), reps)
    right_idx = order[_expand_ranges(starts, ends)]

    out_vars = tuple(sorted(set(left.vars) | set(right.vars)))
    cols = []
    for var in out_vars:
        if var in left.vars:
            cols.append(left.keys[left_idx, left.vars.index(var)])
        else:
            cols.append(right.keys[right_idx, right.vars.index(var)])
    keys = (np.stack(cols, axis=1) if cols
            else np.zeros((len(left_idx), 0), dtype=np.int64))
    counts = left.counts[left_idx] * right.counts[right_idx]
    result = compress(out_vars, keys, counts)
    if keep_vars is not None:
        result = result.project(keep_vars)
    return result


def _cross_join(left: CountedRelation, right: CountedRelation,
                keep_vars: tuple[int, ...] | None) -> CountedRelation:
    """Cartesian product (queries with disconnected join graphs)."""
    n_l, n_r = len(left), len(right)
    li = np.repeat(np.arange(n_l), n_r)
    ri = np.tile(np.arange(n_r), n_l)
    out_vars = tuple(sorted(set(left.vars) | set(right.vars)))
    cols = []
    for var in out_vars:
        if var in left.vars:
            cols.append(left.keys[li, left.vars.index(var)])
        else:
            cols.append(right.keys[ri, right.vars.index(var)])
    keys = (np.stack(cols, axis=1) if cols
            else np.zeros((len(li), 0), dtype=np.int64))
    counts = left.counts[li] * right.counts[ri]
    result = compress(out_vars, keys, counts)
    if keep_vars is not None:
        result = result.project(keep_vars)
    return result


def _shared_codes(left: CountedRelation, right: CountedRelation,
                  shared: tuple[int, ...]) -> tuple[np.ndarray, np.ndarray]:
    """Encode both sides' shared-variable tuples into one comparable code space."""
    l_cols = np.stack([left.column(v) for v in shared], axis=1)
    r_cols = np.stack([right.column(v) for v in shared], axis=1)
    both = np.concatenate([l_cols, r_cols], axis=0)
    _, inverse = np.unique(both, axis=0, return_inverse=True)
    inverse = inverse.ravel()
    return inverse[: len(l_cols)], inverse[len(l_cols):]


def _expand_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate [starts[i], ends[i]) ranges into one index array."""
    lengths = ends - starts
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.repeat(np.cumsum(lengths) - lengths, lengths)
    flat = np.arange(total, dtype=np.int64) - offsets
    return np.repeat(starts, lengths) + flat
