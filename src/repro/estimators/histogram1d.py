"""Independence estimator: catalog-style 1-D statistics per column.

This is the single-table model implied by the *attribute independence*
assumption (paper Section 2.2): selectivities of per-column predicates are
multiplied, and the join-key distribution is the unconditional one scaled by
the filter selectivity.  Plugging this into the join-histogram combination
reproduces the classical JoinHist baseline; plugging it into the bound
combination gives the paper's "with Bound" ablation row of Table 8.
"""

from __future__ import annotations

import numpy as np

from repro.core.binning import Binning
from repro.data.schema import TableSchema
from repro.data.table import Table
from repro.errors import NotFittedError
from repro.estimators.base import BaseTableEstimator, register_estimator
from repro.sql.predicates import And, Not, Or, Predicate, TruePredicate
from repro.stats.histograms import ColumnStatistics


@register_estimator
class Histogram1DEstimator(BaseTableEstimator):
    name = "histogram1d"

    def __init__(self, n_hist_bins: int = 100, n_mcv: int = 100):
        self._n_hist_bins = n_hist_bins
        self._n_mcv = n_mcv
        self._columns: dict[str, ColumnStatistics] | None = None

    def fit(self, table: Table, schema: TableSchema,
            key_binnings: dict[str, Binning]) -> "Histogram1DEstimator":
        self._total_rows = len(table)
        self._columns = {
            c.name: ColumnStatistics(table[c.name], self._n_hist_bins,
                                     self._n_mcv)
            for c in schema.columns
        }
        self._binnings = dict(key_binnings)
        self._key_distributions: dict[str, np.ndarray] = {}
        for name, binning in key_binnings.items():
            col = table[name]
            valid = ~col.null_mask
            bins = binning.assign(col.values[valid].astype(np.int64))
            self._key_distributions[name] = np.bincount(
                bins, minlength=binning.n_bins).astype(np.float64)
        return self

    def _require_stats(self) -> dict[str, ColumnStatistics]:
        if self._columns is None:
            raise NotFittedError("Histogram1DEstimator not fitted")
        return self._columns

    def selectivity(self, pred: Predicate) -> float:
        """Filter selectivity under attribute independence."""
        stats = self._require_stats()
        if isinstance(pred, TruePredicate):
            return 1.0
        if isinstance(pred, And):
            out = 1.0
            for child in pred.children:
                out *= self.selectivity(child)
            return out
        if isinstance(pred, Or):
            miss = 1.0
            for child in pred.children:
                miss *= 1.0 - self.selectivity(child)
            return 1.0 - miss
        if isinstance(pred, Not):
            return max(0.0, 1.0 - self.selectivity(pred.child))
        cols = pred.columns()
        if len(cols) != 1:
            return 0.1
        column = next(iter(cols))
        if column not in stats:
            return 0.1
        return stats[column].selectivity(pred)

    def estimate_row_count(self, pred: Predicate) -> float:
        return self.selectivity(pred) * self._total_rows

    def key_distribution(self, column: str, pred: Predicate) -> np.ndarray:
        sel = self.selectivity(pred)
        return self._key_distributions[column] * sel

    def update(self, new_rows: Table) -> None:
        # histograms keep their fit-time shape (a real DBMS would re-ANALYZE);
        # row counts and key distributions are maintained exactly
        self._require_stats()
        self._total_rows += len(new_rows)
        for name, binning in self._binnings.items():
            col = new_rows[name]
            valid = ~col.null_mask
            bins = binning.assign(col.values[valid].astype(np.int64))
            self._key_distributions[name] += np.bincount(
                bins, minlength=binning.n_bins).astype(np.float64)

    def delete(self, deleted_rows: Table) -> None:
        # symmetric to update: row counts and key distributions shrink
        # exactly (floored at zero); per-column histograms keep shape
        self._require_stats()
        self._total_rows = max(0, self._total_rows - len(deleted_rows))
        for name, binning in self._binnings.items():
            col = deleted_rows[name]
            valid = ~col.null_mask
            bins = binning.assign(col.values[valid].astype(np.int64))
            dist = self._key_distributions[name]
            dist -= np.bincount(bins,
                                minlength=binning.n_bins).astype(np.float64)
            np.maximum(dist, 0.0, out=dist)
