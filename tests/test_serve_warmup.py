"""Tests for workload recording, replay warming, and warm invalidation."""

import json

import pytest

from repro.core.estimator import FactorJoin, FactorJoinConfig
from repro.serve import (
    EstimationService,
    WorkloadEntry,
    WorkloadRecorder,
    load_workload,
    warm_service,
)
from repro.sql import parse_query

BIG = ("SELECT COUNT(*) FROM A a, B b, C c "
       "WHERE a.id = b.aid AND b.cid = c.id AND a.x > 1")
SMALL = "SELECT COUNT(*) FROM A q, B r WHERE q.id = r.aid AND q.x > 1"


@pytest.fixture
def fitted(toy_db):
    return FactorJoin(FactorJoinConfig(n_bins=4)).fit(toy_db)


@pytest.fixture
def service(fitted):
    svc = EstimationService(cache_size=64)
    svc.register("default", fitted)
    return svc


class TestWorkloadEntry:
    def test_json_round_trip(self):
        entry = WorkloadEntry(sql=BIG, kind="subplans", model="m",
                              min_tables=2)
        assert WorkloadEntry.from_json(entry.to_json()) == entry

    def test_defaults_omitted_from_json(self):
        line = WorkloadEntry(sql=SMALL).to_json()
        assert "model" not in json.loads(line)
        assert WorkloadEntry.from_json(line) == WorkloadEntry(sql=SMALL)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            WorkloadEntry(sql=SMALL, kind="mystery")

    def test_non_object_line_rejected(self):
        with pytest.raises(ValueError):
            WorkloadEntry.from_json('["not", "an", "object"]')

    def test_field_errors_never_echo_values(self):
        """from_json parses server-local files (POST /warmup {"path"}):
        its error messages must not embed field values."""
        bad_lines = [
            '{"sql": "SELECT COUNT(*) FROM A a", "kind": "secret-v"}',
            '{"sql": "SELECT COUNT(*) FROM A a", "min_tables": "secret-v"}',
            '{"sql": "SELECT COUNT(*) FROM A a", "model": 7}',
        ]
        for line in bad_lines:
            with pytest.raises(ValueError) as info:
                WorkloadEntry.from_json(line)
            assert "secret-v" not in str(info.value), line


class TestRecorder:
    def test_service_records_served_queries(self, service, tmp_path):
        log = tmp_path / "workload.jsonl"
        service.start_recording(log)
        service.estimate(SMALL)
        service.estimate_subplans(BIG, min_tables=2)
        assert service.stop_recording() == 2
        entries = load_workload(log)
        assert entries[0] == WorkloadEntry(
            sql=parse_query(SMALL).to_sql(), kind="estimate")
        assert entries[1].kind == "subplans"
        assert entries[1].min_tables == 2

    def test_record_append_and_close_idempotent(self, tmp_path):
        log = tmp_path / "w.jsonl"
        recorder = WorkloadRecorder(log)
        recorder.record(WorkloadEntry(sql=SMALL))
        recorder.close()
        recorder.record(WorkloadEntry(sql=BIG))   # no-op after close
        recorder.close()
        again = WorkloadRecorder(log)              # append, not truncate
        again.record(WorkloadEntry(sql=BIG))
        again.close()
        assert [e.sql for e in load_workload(log)] == [SMALL, BIG]

    def test_stop_without_start_is_zero(self, service):
        assert service.stop_recording() == 0

    def test_stats_expose_recording(self, service, tmp_path):
        assert service.stats()["recording"] is None
        service.start_recording(tmp_path / "w.jsonl")
        service.estimate(SMALL)
        info = service.stats()["recording"]
        assert info["recorded"] == 1 and info["path"].endswith("w.jsonl")


class TestLoadWorkload:
    def test_plain_sql_lines_with_comments(self, tmp_path):
        path = tmp_path / "w.sql"
        path.write_text(f"# warming set\n\n{SMALL}\n{BIG}\n")
        entries = load_workload(path)
        assert [e.sql for e in entries] == [SMALL, BIG]
        assert all(e.kind == "estimate" for e in entries)

    def test_bad_line_reports_line_number(self, tmp_path):
        path = tmp_path / "w.jsonl"
        path.write_text('{"nosql": true}\n')
        with pytest.raises(ValueError, match="w.jsonl:1"):
            load_workload(path)

    def test_non_sql_content_rejected_without_disclosure(self, tmp_path):
        """Pointing the loader at a non-workload file (POST /warmup takes
        a server-local path) must fail naming only the line NUMBER — an
        error echoing line content would disclose arbitrary files."""
        path = tmp_path / "secrets.txt"
        path.write_text("root:x:0:0:supersecret\n")
        with pytest.raises(ValueError) as info:
            load_workload(path)
        assert "secrets.txt:1" in str(info.value)
        assert "supersecret" not in str(info.value)


class TestWarmService:
    def test_warming_populates_both_levels(self, service):
        summary = warm_service(service, [
            WorkloadEntry(sql=BIG, kind="subplans"),
            WorkloadEntry(sql=SMALL),
        ])
        assert summary["entries"] == 2
        assert summary["warmed_subplan_maps"] == 1
        assert summary["warmed_estimates"] == 1
        assert not summary["errors"]
        assert summary["caches"]["default"]["subplan_size"] >= 6
        # warm traffic is admitted straight from cache
        assert service.estimate(SMALL).cached
        assert service.estimate(BIG).cache_level == "subplan"

    def test_warming_promotes_plain_entries_to_subplans(self, service):
        warm_service(service, [WorkloadEntry(sql=BIG)], subplans=True)
        # the {a,b} sub-plan was warmed even though BIG was recorded as a
        # plain estimate
        assert service.estimate(SMALL).cache_level == "subplan"

    def test_warm_errors_collected_not_raised(self, service):
        summary = warm_service(service, [
            WorkloadEntry(sql="SELECT COUNT(*) FROM Nope n"),
            WorkloadEntry(sql=SMALL),
        ])
        assert summary["warmed_estimates"] == 1
        assert len(summary["errors"]) == 1

    def test_warm_aborts_after_too_many_errors(self, service):
        bad = [WorkloadEntry(sql="SELECT COUNT(*) FROM Nope n")] * 4
        with pytest.raises(ValueError, match="aborted"):
            warm_service(service, bad, max_errors=2)

    def test_single_table_entries_not_promoted(self, service):
        """subplans=True promotes only multi-table estimates; a
        single-table query's sub-plan map is just itself, and the summary
        counters must say what actually ran."""
        summary = warm_service(service, [
            WorkloadEntry(sql="SELECT COUNT(*) FROM A a WHERE a.x > 1"),
            WorkloadEntry(sql=BIG),
        ], subplans=True)
        assert summary["warmed_estimates"] == 1
        assert summary["warmed_subplan_maps"] == 1

    def test_suspension_is_thread_local(self, service, tmp_path):
        """A warmup on one thread must not stop concurrent traffic on
        other threads from being recorded."""
        import threading
        service.start_recording(tmp_path / "w.jsonl")
        recorded_inside = []

        def other_traffic():
            service.estimate(BIG)

        with service.recording_suspended():
            thread = threading.Thread(target=other_traffic)
            thread.start()
            thread.join()
            service.estimate(SMALL)            # this thread: suppressed
            recorded_inside.append(service._recorder.recorded)
        assert recorded_inside == [1]          # only the other thread's
        assert service.stop_recording() == 1

    def test_warming_suspends_recording(self, service, tmp_path):
        """Warming a recording service must not copy the warm workload
        into the new log."""
        log = tmp_path / "w.jsonl"
        service.start_recording(log)
        warm_service(service, [WorkloadEntry(sql=SMALL)])
        service.estimate(BIG)          # real traffic IS recorded
        assert service.stop_recording() == 1
        assert [e.sql for e in load_workload(log)] == [
            parse_query(BIG).to_sql()]


class TestWarmupInvalidation:
    def test_hot_swap_after_warming_never_serves_stale_subplans(
            self, service, toy_db, fitted):
        """The satellite guarantee: warm, then hot-swap — no pre-swap
        sub-plan estimate may survive at either cache level."""
        warm_service(service, [WorkloadEntry(sql=BIG, kind="subplans")])
        stale = service.estimate(SMALL)
        assert stale.cache_level == "subplan"

        refit = FactorJoin(FactorJoinConfig(n_bins=8)).fit(toy_db)
        service.register("default", refit)

        fresh = service.estimate(SMALL)
        assert not fresh.cached and fresh.cache_level is None
        assert fresh.estimate == refit.estimate(parse_query(SMALL))
        assert fresh.estimate != stale.estimate
        stats = service._cache_of("default").stats()
        assert stats["invalidations"] >= 1

    def test_update_after_warming_invalidates_subplan_table(
            self, service, toy_db):
        warm_service(service, [WorkloadEntry(sql=BIG, kind="subplans")])
        before = service.estimate(SMALL)
        assert before.cached
        service.update("B", toy_db.table("B").head(30))
        after = service.estimate(SMALL)
        assert not after.cached and after.cache_level is None
        assert after.estimate > before.estimate

    def test_rewarming_after_swap_serves_new_model_values(
            self, service, toy_db):
        warm_service(service, [WorkloadEntry(sql=BIG, kind="subplans")])
        refit = FactorJoin(FactorJoinConfig(n_bins=8)).fit(toy_db)
        service.register("default", refit)
        warm_service(service, [WorkloadEntry(sql=BIG, kind="subplans")])
        result = service.estimate(SMALL)
        assert result.cache_level == "subplan"
        assert result.estimate == pytest.approx(
            refit.estimate(parse_query(SMALL)), rel=1e-9)


class TestCLIWarm:
    ARGS = ["--scale", "0.02", "--queries", "4", "--max-tables", "3",
            "--seed", "21", "--bins", "4"]
    SQL = ("SELECT COUNT(*) FROM posts p, comments c "
           "WHERE p.id = c.post_id AND p.score > 0")

    def _artifact(self, tmp_path, capsys):
        from repro.cli import main
        artifact = str(tmp_path / "m.fj")
        assert main(["estimate", self.SQL, *self.ARGS,
                     "--save", artifact]) == 0
        capsys.readouterr()
        return artifact

    def test_serve_warm_from_file(self, tmp_path, capsys):
        from repro.cli import build_parser, build_service
        artifact = self._artifact(tmp_path, capsys)
        workload = tmp_path / "warm.jsonl"
        workload.write_text(
            WorkloadEntry(sql=self.SQL, kind="subplans").to_json() + "\n")
        args = build_parser().parse_args(
            ["serve", "--load", f"default={artifact}",
             "--warm", str(workload)])
        service = build_service(args)
        out = capsys.readouterr().out
        assert "warmed 1 workload entries" in out
        assert service.estimate(self.SQL).cached

    def test_serve_record_flag(self, tmp_path, capsys):
        from repro.cli import build_parser, build_service
        artifact = self._artifact(tmp_path, capsys)
        log = tmp_path / "recorded.jsonl"
        args = build_parser().parse_args(
            ["serve", "--load", f"default={artifact}",
             "--record", str(log)])
        service = build_service(args)
        service.estimate(self.SQL)
        assert service.stop_recording() == 1
        assert load_workload(log)[0].sql == parse_query(self.SQL).to_sql()

    def test_serve_no_subplan_reuse_flag(self, tmp_path, capsys):
        from repro.cli import build_parser, build_service
        artifact = self._artifact(tmp_path, capsys)
        args = build_parser().parse_args(
            ["serve", "--load", f"default={artifact}",
             "--no-subplan-reuse"])
        service = build_service(args)
        assert service.subplan_reuse is False
