"""Sampling estimator: uniform row sample scaled up (paper [41]).

Supports *every* predicate class — disjunctions, LIKE, IS NULL — because it
just evaluates the predicate on real sampled rows.  This is the estimator
the paper uses on IMDB-JOB (Section 6.1).
"""

from __future__ import annotations

import numpy as np

from repro.core.binning import Binning
from repro.data.schema import TableSchema
from repro.data.table import Table
from repro.engine.filter import evaluate_predicate
from repro.errors import NotFittedError
from repro.estimators.base import BaseTableEstimator, register_estimator
from repro.sql.predicates import Predicate, TruePredicate
from repro.utils import resolve_rng


@register_estimator
class SamplingEstimator(BaseTableEstimator):
    name = "sampling"

    def __init__(self, sample_rate: float = 0.05,
                 max_sample_rows: int = 50_000, seed: int = 0,
                 prior_strength: float = 2.0):
        self._rate = sample_rate
        self._max_rows = max_sample_rows
        self._rng = resolve_rng(seed)
        self._sample: Table | None = None
        self._total_rows = 0
        self._binnings: dict[str, Binning] = {}
        # Dirichlet prior toward the unconditional bin distribution: a bin
        # the sample happens to miss (e.g. a narrow GBSA bin holding one
        # hot key) keeps a small floor instead of zeroing out the bound.
        self._prior_strength = prior_strength
        self._uncond: dict[str, np.ndarray] = {}

    def fit(self, table: Table, schema: TableSchema,
            key_binnings: dict[str, Binning]) -> "SamplingEstimator":
        self._binnings = dict(key_binnings)
        self._total_rows = len(table)
        for name, binning in key_binnings.items():
            col = table[name]
            bins = binning.assign(col.values[~col.null_mask])
            counts = np.bincount(bins, minlength=binning.n_bins)
            total = max(counts.sum(), 1)
            self._uncond[name] = counts.astype(np.float64) / total
        target = max(1, min(int(round(len(table) * self._rate)),
                            self._max_rows, len(table)))
        if len(table) == 0:
            self._sample = table
        else:
            idx = np.sort(self._rng.choice(len(table), size=target,
                                           replace=False))
            self._sample = table.take(idx)
        return self

    @property
    def _scale(self) -> float:
        if self._sample is None or len(self._sample) == 0:
            return 1.0
        return self._total_rows / len(self._sample)

    def _require_sample(self) -> Table:
        if self._sample is None:
            raise NotFittedError("SamplingEstimator not fitted")
        return self._sample

    def estimate_row_count(self, pred: Predicate) -> float:
        sample = self._require_sample()
        if isinstance(pred, TruePredicate):
            return float(self._total_rows)
        if len(sample) == 0:
            return 0.0
        return float(evaluate_predicate(pred, sample).sum()) * self._scale

    def key_distribution(self, column: str, pred: Predicate) -> np.ndarray:
        sample = self._require_sample()
        binning = self._binnings[column]
        if len(sample) == 0:
            return np.zeros(binning.n_bins)
        mask = evaluate_predicate(pred, sample)
        col = sample[column]
        mask = mask & ~col.null_mask
        bins = binning.assign(col.values[mask])
        counts = np.bincount(bins, minlength=binning.n_bins).astype(float)
        n = counts.sum()
        if n == 0:
            return np.zeros(binning.n_bins)
        prior = self._uncond.get(column)
        strength = self._prior_strength
        if prior is None or strength <= 0:
            return counts * self._scale
        posterior = (counts + strength * prior) / (n + strength)
        return posterior * n * self._scale

    def update(self, new_rows: Table) -> None:
        """Materialize a proportional sample of the inserted rows."""
        sample = self._require_sample()
        self._total_rows += len(new_rows)
        if len(new_rows) == 0:
            return
        target = max(1, int(round(len(new_rows) * self._rate)))
        target = min(target, len(new_rows))
        idx = np.sort(self._rng.choice(len(new_rows), size=target,
                                       replace=False))
        self._sample = sample.concat(new_rows.take(idx))
