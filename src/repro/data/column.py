"""A single numpy-backed column with an explicit null mask.

Join keys use NULL to represent dangling foreign keys (rows that match
nothing), which inner joins must drop — the engine and the statistics layer
both honour the mask.
"""

from __future__ import annotations

import numpy as np

from repro.data.types import DataType, infer_data_type
from repro.errors import DataError


class Column:
    """Immutable-by-convention column: values array + boolean null mask."""

    __slots__ = ("name", "dtype", "values", "null_mask")

    def __init__(self, name: str, values, dtype: DataType | None = None,
                 null_mask=None):
        self.name = name
        self.dtype = dtype if dtype is not None else infer_data_type(values)
        arr = np.asarray(values)
        if self.dtype is DataType.STRING:
            arr = arr.astype(object)
        else:
            try:
                arr = arr.astype(self.dtype.numpy_dtype)
            except (TypeError, ValueError) as exc:
                raise DataError(
                    f"column {name!r}: cannot cast values to {self.dtype}"
                ) from exc
        self.values = arr
        if null_mask is None:
            null_mask = np.zeros(len(arr), dtype=bool)
        else:
            null_mask = np.asarray(null_mask, dtype=bool)
            if null_mask.shape != arr.shape:
                raise DataError(
                    f"column {name!r}: null mask length {null_mask.shape} "
                    f"!= values length {arr.shape}")
        self.null_mask = null_mask

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.dtype.value}, n={len(self)})"

    @property
    def has_nulls(self) -> bool:
        return bool(self.null_mask.any())

    def non_null_values(self) -> np.ndarray:
        """Values with nulls removed (the domain statistics operate on this)."""
        if self.has_nulls:
            return self.values[~self.null_mask]
        return self.values

    def take(self, indices_or_mask) -> "Column":
        """Select rows by integer indices or boolean mask."""
        sel = np.asarray(indices_or_mask)
        return Column(self.name, self.values[sel], self.dtype,
                      self.null_mask[sel])

    def concat(self, other: "Column") -> "Column":
        """Append another column's rows (used by incremental data insertion)."""
        if other.dtype is not self.dtype:
            raise DataError(
                f"cannot concat column {self.name!r}: dtype mismatch "
                f"{self.dtype} vs {other.dtype}")
        return Column(
            self.name,
            np.concatenate([self.values, other.values]),
            self.dtype,
            np.concatenate([self.null_mask, other.null_mask]),
        )

    def distinct_count(self) -> int:
        """Number of distinct non-null values."""
        vals = self.non_null_values()
        if len(vals) == 0:
            return 0
        return int(len(np.unique(vals)))
