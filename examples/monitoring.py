"""Monitoring: metrics scrapes, request traces, and accuracy telemetry.

Walks the ``repro.obs`` layer end to end, in-process:

1. serve a model and generate some traffic (misses, cache hits, and a
   client that reports observed true cardinalities);
2. scrape ``GET /metrics`` and read the Prometheus families — latency
   histograms, cache counters, rolling q-error;
3. fetch one request's full span tree via ``POST /v1/explain?trace=true``
   and print it as an indented timing breakdown;
4. read the slow-query ring (``GET /v1/traces``) and the JSON summaries
   (``GET /v1/stats``);
5. export traces as JSONL — what ``repro serve --trace-log FILE`` writes.

Run:  python examples/monitoring.py
"""

import json
import tempfile
import urllib.request
from pathlib import Path

from repro import FactorJoin, FactorJoinConfig
from repro.obs import JsonlTraceExporter, TraceLog, Tracer
from repro.serve import EstimationService, serve_in_background

from quickstart import build_database

QUERIES = [
    "SELECT COUNT(*) FROM users u, orders o WHERE u.id = o.user_id",
    "SELECT COUNT(*) FROM users u, orders o "
    "WHERE u.id = o.user_id AND u.age < 30",
    "SELECT COUNT(*) FROM users u, orders o "
    "WHERE u.id = o.user_id AND o.amount > 250",
]


def _post(base: str, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def _get(base: str, path: str) -> str:
    with urllib.request.urlopen(base + path) as response:
        return response.read().decode()


def _print_span(span: dict, indent: int = 0) -> None:
    mark = " [remote]" if span.get("remote") else ""
    error = f"  ERROR {span['error']}" if span.get("error") else ""
    print(f"  {'  ' * indent}{span['name']:<{24 - 2 * indent}} "
          f"{span['duration_ms']:8.3f} ms{mark}{error}")
    for child in span["children"]:
        _print_span(child, indent + 1)


def main() -> None:
    db = build_database()
    model = FactorJoin(FactorJoinConfig(n_bins=128,
                                        table_estimator="truescan"))
    model.fit(db)

    # a tracer with a JSONL exporter — the programmatic equivalent of
    # `repro serve --trace-log traces.jsonl --slow-ms 5`
    workdir = Path(tempfile.mkdtemp(prefix="repro-monitoring-"))
    trace_path = workdir / "traces.jsonl"
    exporter = JsonlTraceExporter(str(trace_path))
    service = EstimationService(
        tracer=Tracer(log=TraceLog(slow_threshold_ms=5.0),
                      exporter=exporter))
    service.register("orders", model)
    server, _ = serve_in_background(service, port=0)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"

    # -- 1. traffic: misses, cache hits, and accuracy feedback ---------------
    for sql in QUERIES:
        _post(base, "/estimate", {"sql": sql})
    for sql in QUERIES:
        _post(base, "/estimate", {"sql": sql})  # query-level cache hits
    # a client that later learned the real cardinalities reports them
    # back; the service records rolling q-error histograms per model
    for sql in QUERIES:
        feedback = service.record_truth(sql, model="orders")
        print(f"q-error {feedback.q_error:6.2f}  "
              f"(est {feedback.estimate:10,.0f}, "
              f"true {feedback.true_cardinality:10,.0f})  {sql[:60]}")

    # -- 2. the Prometheus scrape --------------------------------------------
    scrape = _get(base, "/metrics")
    print("\nGET /metrics (excerpt):")
    for line in scrape.splitlines():
        if line.startswith(("repro_request_seconds_count",
                            "repro_cache_hits_total",
                            "repro_qerror_count")):
            print(f"  {line}")

    # -- 3. one request's span tree (a fresh query, so the tree shows the
    # cache miss and the model inference stage) ------------------------------
    fresh = ("SELECT COUNT(*) FROM users u, orders o "
             "WHERE u.id = o.user_id AND u.age >= 60 AND o.amount <= 50")
    body = _post(base, "/v1/explain?trace=true", {"sql": fresh})
    trace = body["trace"]
    print(f"\nPOST /v1/explain?trace=true -> trace {trace['trace_id']} "
          f"({trace['span_count']} spans, {trace['duration_ms']:.3f} ms):")
    _print_span(trace["root"])

    # -- 4. rings and summaries ----------------------------------------------
    stats = json.loads(_get(base, "/v1/stats"))
    latency = stats["metrics"]["repro_request_seconds"]["summary"]
    print(f"\nGET /v1/stats -> {latency['count']:.0f} requests, "
          f"p50 {latency['p50'] * 1e3:.3f} ms, "
          f"p99 {latency['p99'] * 1e3:.3f} ms; "
          f"traces: {stats['traces']}")
    slow = json.loads(_get(base, "/v1/traces?slow=true"))
    print(f"GET /v1/traces?slow=true -> {slow['slow']} requests over "
          f"{service.tracer.log.slow_threshold_ms:.0f} ms")

    # -- 5. the JSONL export --------------------------------------------------
    server.shutdown()
    server.server_close()
    exporter.close()
    lines = trace_path.read_text().splitlines()
    roots = [json.loads(line)["name"] for line in lines]
    print(f"\n{trace_path}: {len(lines)} exported traces "
          f"({', '.join(sorted(set(roots)))})")


if __name__ == "__main__":
    main()
