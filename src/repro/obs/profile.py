"""A dependency-free wall-clock sampling profiler.

:func:`profile_here` spawns a daemon sampler thread that snapshots
every live thread's stack via ``sys._current_frames()`` at a fixed rate
while the caller blocks, then aggregates identical stacks into counts.
Sampling is wall-clock (a thread blocked on a lock or a socket is
counted where it blocks), which is the view that matters for serving
latency; overhead is one frame walk per thread per tick, nothing on
the code being profiled.

The report exports `collapsed stack`_ text — one ``frame;frame;frame
count`` line per distinct stack, root first — the interchange format
flamegraph tooling consumes directly.  It is exposed three ways:
``GET /v1/profile`` on the serving API, ``repro profile`` on the
command line, and a ``Profile`` RPC so a remote shard worker can be
profiled through the same pane of glass.

.. _collapsed stack:
   https://github.com/brendangregg/FlameGraph#2-fold-stacks
"""

from __future__ import annotations

import os
import sys
import threading
import time

#: Hard cap on one profiling run (seconds) — ``/v1/profile`` is a
#: synchronous endpoint and RPC handlers hold a worker's request loop.
MAX_SECONDS = 30.0

#: Sampling-rate clamp (samples per second).
MIN_HZ, MAX_HZ = 1.0, 999.0


def _frame_label(frame) -> str:
    """``file.py:function`` — line numbers are deliberately dropped so
    samples taken at different lines of one function aggregate."""
    code = frame.f_code
    return f"{os.path.basename(code.co_filename)}:{code.co_name}"


def _stack_of(frame) -> tuple[str, ...]:
    frames: list[str] = []
    while frame is not None:
        frames.append(_frame_label(frame))
        frame = frame.f_back
    frames.reverse()
    return tuple(frames)


class ProfileReport:
    """Aggregated samples from one profiling run."""

    __slots__ = ("seconds", "hz", "samples", "stacks")

    def __init__(self, seconds: float, hz: float, samples: int,
                 stacks: dict[tuple[str, ...], int]):
        #: Requested duration (seconds, post-clamp).
        self.seconds = seconds
        #: Requested sampling rate (post-clamp).
        self.hz = hz
        #: Sampling ticks actually taken.
        self.samples = samples
        #: ``stack tuple (root first) -> sample count``.
        self.stacks = stacks

    def collapsed(self) -> str:
        """Collapsed-stack text: ``frame;frame;frame count`` lines,
        heaviest stacks first — pipe into ``flamegraph.pl`` as-is."""
        lines = [";".join(stack) + f" {count}"
                 for stack, count in sorted(
                     self.stacks.items(),
                     key=lambda item: (-item[1], item[0]))]
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON-ready summary (the ``GET /v1/profile`` body)."""
        return {
            "seconds": self.seconds,
            "hz": self.hz,
            "samples": self.samples,
            "distinct_stacks": len(self.stacks),
            "collapsed": self.collapsed(),
        }


def clamp_request(seconds: float, hz: float) -> tuple[float, float]:
    """Clamp a profiling request to safe bounds (duration capped at
    :data:`MAX_SECONDS`, rate within [:data:`MIN_HZ`, :data:`MAX_HZ`])."""
    seconds = min(max(float(seconds), 0.01), MAX_SECONDS)
    hz = min(max(float(hz), MIN_HZ), MAX_HZ)
    return seconds, hz


def profile_here(seconds: float = 1.0, hz: float = 99.0) -> ProfileReport:
    """Sample every thread in this process for ``seconds`` at ``hz``.

    The caller blocks for the duration; a daemon thread does the
    sampling and excludes itself, so the calling thread's stack (e.g. a
    worker's request loop inside the ``Profile`` handler) is included
    in the report.  Stacks are rooted at the owning thread's name.
    """
    seconds, hz = clamp_request(seconds, hz)
    interval = 1.0 / hz
    deadline = time.monotonic() + seconds
    stacks: dict[tuple[str, ...], int] = {}
    ticks = 0

    def _sample_loop():
        nonlocal ticks
        me = threading.get_ident()
        while time.monotonic() < deadline:
            names = {thread.ident: thread.name
                     for thread in threading.enumerate()}
            for ident, frame in sys._current_frames().items():
                if ident == me:
                    continue
                root = names.get(ident, f"thread-{ident}")
                stack = (root,) + _stack_of(frame)
                stacks[stack] = stacks.get(stack, 0) + 1
            ticks += 1
            time.sleep(interval)

    sampler = threading.Thread(target=_sample_loop,
                               name="repro-profile-sampler", daemon=True)
    sampler.start()
    sampler.join(timeout=seconds + 5.0)
    return ProfileReport(seconds=seconds, hz=hz, samples=ticks,
                         stacks=stacks)
