"""Service-level objectives and multi-window burn-rate tracking.

Raw counters say what happened; an SLO says whether it is *fine*.  Each
declared objective (availability, latency-under-threshold, q-error —
the accuracy signal ``/v1/feedback`` already reports — and plan quality,
the P-error signal plan-cost feedback reports) classifies every
event as good or bad, and the tracker keeps those outcomes in coarse
time buckets so it can answer, per rolling window, the standard
alerting question: at the current error rate, how fast is the error
budget burning?

``burn_rate = error_rate / (1 - objective)`` — 1.0 means the budget is
being consumed exactly as fast as the objective allows; the
conventional multi-window page fires when both a short and a long
window burn hot (short catches the spike, long confirms it is not a
blip).  The tracker exports ``repro_slo_burn_rate{slo=,window=}``
gauges through the registry's collector hook and a JSON view for
``GET /v1/slo``, which is the signal ROADMAP open item 4's adaptive
refresh is meant to consume.

The clock is injectable so tests drive windows deterministically.
Recording is two dict updates under one lock — cheap enough for the
per-request hot path; :data:`NULL_SLO` is the no-op twin used when
telemetry is disabled wholesale.
"""

from __future__ import annotations

import math
import threading
import time

#: Default rolling windows: label → width in seconds.
DEFAULT_WINDOWS = (("5m", 300.0), ("1h", 3600.0), ("6h", 21600.0))

#: The default plan-quality objective the serving layer declares: at
#: least this fraction of plan-cost feedback samples must land within
#: :data:`PLAN_QUALITY_THRESHOLD` of the truecard-oracle plan.  A
#: P-error of 2.0 means the chosen plan costs twice the best plan under
#: true cardinalities — the conventional "noticeably worse" line.
PLAN_QUALITY_OBJECTIVE = 0.9
PLAN_QUALITY_THRESHOLD = 2.0

#: Outcome-bucket width (seconds); window edges are quantized to this.
BUCKET_SECONDS = 10.0


class SLO:
    """One declared objective: a target good-fraction plus an optional
    numeric threshold separating good from bad observations."""

    __slots__ = ("name", "objective", "threshold", "description")

    def __init__(self, name: str, objective: float,
                 threshold: float | None = None, description: str = ""):
        if not 0.0 < objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {objective!r}")
        self.name = name
        self.objective = float(objective)
        self.threshold = None if threshold is None else float(threshold)
        self.description = description

    def to_json(self) -> dict:
        return {"name": self.name, "objective": self.objective,
                "threshold": self.threshold,
                "description": self.description}


class _SloState:
    __slots__ = ("slo", "buckets", "good_total", "bad_total")

    def __init__(self, slo: SLO):
        self.slo = slo
        self.buckets: dict[int, list[int]] = {}  # bucket -> [good, bad]
        self.good_total = 0
        self.bad_total = 0


class SloTracker:
    """Declared objectives plus rolling good/bad outcome buckets.

    ``clock`` defaults to ``time.monotonic`` and is injectable; all
    window math quantizes to :data:`BUCKET_SECONDS`-wide buckets, which
    bounds memory at (longest window / bucket width) entries per SLO.
    """

    enabled = True

    def __init__(self, windows=DEFAULT_WINDOWS,
                 bucket_seconds: float = BUCKET_SECONDS, clock=None):
        self.windows = tuple(windows)
        self._bucket_seconds = float(bucket_seconds)
        self._horizon_buckets = int(
            max(width for _label, width in self.windows)
            / self._bucket_seconds) + 1
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._states: dict[str, _SloState] = {}

    def declare(self, name: str, objective: float,
                threshold: float | None = None,
                description: str = "") -> SLO:
        """Register (or return the existing) objective ``name``."""
        with self._lock:
            state = self._states.get(name)
            if state is None:
                state = _SloState(SLO(name, objective, threshold,
                                      description))
                self._states[name] = state
            return state.slo

    def _record_locked(self, state: _SloState, good: bool,
                       n: int = 1) -> None:
        bucket = int(self._clock() / self._bucket_seconds)
        cell = state.buckets.get(bucket)
        if cell is None:
            cell = state.buckets[bucket] = [0, 0]
            self._prune(state, bucket)
        if good:
            cell[0] += n
            state.good_total += n
        else:
            cell[1] += n
            state.bad_total += n

    def record(self, name: str, good: bool, n: int = 1) -> None:
        """Record ``n`` good or bad events against objective ``name``
        (which must have been declared — typos should fail loudly)."""
        with self._lock:
            self._record_locked(self._states[name], good, n)

    def record_value(self, name: str, value: float) -> bool:
        """Record an observation against ``name``'s threshold (good iff
        ``value <= threshold``); returns the verdict.  One lock
        acquisition — this sits on the per-request hot path."""
        with self._lock:
            state = self._states[name]
            threshold = state.slo.threshold
            good = threshold is None or value <= threshold
            self._record_locked(state, good)
        return good

    def _prune(self, state: _SloState, now_bucket: int) -> None:
        floor = now_bucket - self._horizon_buckets
        if len(state.buckets) > self._horizon_buckets:
            for bucket in [b for b in state.buckets if b < floor]:
                del state.buckets[bucket]

    def window_counts(self, name: str, window_seconds: float
                      ) -> tuple[int, int]:
        """``(good, bad)`` totals over the trailing window."""
        with self._lock:
            state = self._states[name]
            now_bucket = int(self._clock() / self._bucket_seconds)
            floor = now_bucket - int(window_seconds
                                     / self._bucket_seconds)
            good = bad = 0
            for bucket, (g, b) in state.buckets.items():
                if floor < bucket <= now_bucket:
                    good += g
                    bad += b
        return good, bad

    def burn_rate(self, name: str, window_seconds: float) -> float:
        """Error-budget burn over the trailing window: the window's
        error rate divided by the budget ``1 - objective``.  0.0 with
        no traffic (no evidence is not an outage)."""
        good, bad = self.window_counts(name, window_seconds)
        total = good + bad
        if not total:
            return 0.0
        with self._lock:
            budget = 1.0 - self._states[name].slo.objective
        error_rate = bad / total
        if budget <= 0.0:
            return math.inf if bad else 0.0
        return error_rate / budget

    def snapshot(self) -> dict:
        """The ``GET /v1/slo`` body: every objective with lifetime
        totals and per-window error/burn rates."""
        with self._lock:
            names = sorted(self._states)
        slos = []
        for name in names:
            with self._lock:
                state = self._states[name]
                entry = state.slo.to_json()
                entry["good_total"] = state.good_total
                entry["bad_total"] = state.bad_total
            windows = {}
            for label, width in self.windows:
                good, bad = self.window_counts(name, width)
                total = good + bad
                windows[label] = {
                    "good": good,
                    "bad": bad,
                    "error_rate": (bad / total) if total else 0.0,
                    "burn_rate": self.burn_rate(name, width),
                }
            entry["windows"] = windows
            slos.append(entry)
        return {"slos": slos}

    def collect(self) -> list[tuple[str, str, str, list]]:
        """Collector hook for the metrics registry: objectives, lifetime
        outcome counters, and per-window burn-rate gauges."""
        with self._lock:
            names = sorted(self._states)
        objective_samples: list = []
        event_samples: list = []
        burn_samples: list = []
        for name in names:
            with self._lock:
                state = self._states[name]
                objective = state.slo.objective
                good_total = state.good_total
                bad_total = state.bad_total
            objective_samples.append(({"slo": name}, objective))
            event_samples.append(
                ({"slo": name, "outcome": "good"}, float(good_total)))
            event_samples.append(
                ({"slo": name, "outcome": "bad"}, float(bad_total)))
            for label, width in self.windows:
                burn_samples.append(
                    ({"slo": name, "window": label},
                     self.burn_rate(name, width)))
        if not names:
            return []
        return [
            ("gauge", "repro_slo_objective",
             "Declared objective (target good fraction) per SLO",
             objective_samples),
            ("counter", "repro_slo_events_total",
             "Lifetime good/bad outcome counts per SLO",
             event_samples),
            ("gauge", "repro_slo_burn_rate",
             "Error-budget burn rate per SLO and rolling window "
             "(1.0 = burning exactly at budget)",
             burn_samples),
        ]


class NullSloTracker:
    """No-op twin of :class:`SloTracker` (telemetry disabled)."""

    enabled = False
    windows = ()

    def declare(self, name, objective, threshold=None,
                description="") -> None:
        return None

    def record(self, name, good, n=1) -> None:
        return None

    def record_value(self, name, value) -> bool:
        return True

    def window_counts(self, name, window_seconds) -> tuple[int, int]:
        return 0, 0

    def burn_rate(self, name, window_seconds) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {"slos": []}

    def collect(self) -> list:
        return []


NULL_SLO = NullSloTracker()
