"""``repro.api`` — the single public estimation API.

One protocol (:class:`CardinalityModel` with explicit
:class:`Capabilities`), one prepared-query session interface
(:class:`EstimationSession`, opened via ``model.open_session(query)``),
one set of typed request/response objects with a machine-readable error
taxonomy, and one canonical query-coercion helper.  Every estimator
family — :class:`~repro.core.estimator.FactorJoin`,
:class:`~repro.shard.ensemble.ShardedFactorJoin`, and all
:mod:`repro.baselines` — implements the protocol; the registry, the
:class:`~repro.serve.service.EstimationService`, the versioned ``/v1``
HTTP routes, and the CLI all program against it.

This is the contract later work (multi-process workers, per-shard
hot-swap, remote fit) builds on; the pre-protocol entry points remain as
thin deprecation shims (see the migration table in ``docs/API.md``).
"""

from repro.api.coerce import coerce_query
from repro.api.explain import (
    build_explain_trace,
    with_cache_level,
    with_trace_id,
)
from repro.api.messages import (
    API_VERSION,
    ERROR_TAXONOMY,
    EstimateRequest,
    EstimateResponse,
    ExplainTrace,
    FeedbackRequest,
    FeedbackResponse,
    SubplanRequest,
    SubplanResponse,
    UpdateRequest,
    UpdateResponse,
    error_code,
    error_payload,
    http_status_of,
    p_error,
    q_error,
    render_subplan_keys,
)
from repro.api.protocol import (
    PREDICATE_CLASSES,
    UPDATE_GRANULARITIES,
    Capabilities,
    CardinalityModel,
    EstimationSession,
    GenericEstimationSession,
    NativeSubplanSession,
    check_operation,
)
from repro.api.registry import (
    build_model,
    model_families,
    register_model_family,
)
from repro.api.session import FactorJoinSession, ProgressiveProbeSession

__all__ = [
    "API_VERSION",
    "build_explain_trace",
    "build_model",
    "Capabilities",
    "CardinalityModel",
    "check_operation",
    "coerce_query",
    "ERROR_TAXONOMY",
    "error_code",
    "error_payload",
    "EstimateRequest",
    "EstimateResponse",
    "EstimationSession",
    "ExplainTrace",
    "FactorJoinSession",
    "FeedbackRequest",
    "FeedbackResponse",
    "GenericEstimationSession",
    "http_status_of",
    "model_families",
    "NativeSubplanSession",
    "p_error",
    "PREDICATE_CLASSES",
    "ProgressiveProbeSession",
    "q_error",
    "register_model_family",
    "render_subplan_keys",
    "SubplanRequest",
    "SubplanResponse",
    "UPDATE_GRANULARITIES",
    "UpdateRequest",
    "UpdateResponse",
    "with_cache_level",
    "with_trace_id",
]
