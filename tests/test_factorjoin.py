"""Integration tests for the FactorJoin estimator itself.

Key properties checked against the exact executor on small databases:

- two-table bound validity: with the TrueScan estimator (exact single-table
  statistics) the estimate never under-estimates a two-table join;
- multi-join behaviour: estimates stay finite, positive, and within a
  reasonable factor of the truth; most sub-plans are over-estimated
  (the paper reports >90%);
- progressive == independent sub-plan estimation;
- incremental updates converge to the retrained statistics;
- configuration knobs (k, binning strategy, estimator choice) behave as the
  ablation sections describe.
"""

import numpy as np
import pytest

from repro import FactorJoin, FactorJoinConfig
from repro.engine import CardinalityExecutor
from repro.errors import NotFittedError
from repro.sql import parse_query
from tests.conftest import build_toy_db

TWO_TABLE_QUERIES = [
    "SELECT COUNT(*) FROM A a, B b WHERE a.id = b.aid",
    "SELECT COUNT(*) FROM A a, B b WHERE a.id = b.aid AND a.x > 1",
    "SELECT COUNT(*) FROM A a, B b WHERE a.id = b.aid AND a.x > 1 "
    "AND b.y <= 2",
    "SELECT COUNT(*) FROM B b, C c WHERE b.cid = c.id AND c.z = 1",
]

CHAIN_QUERIES = [
    "SELECT COUNT(*) FROM A a, B b, C c WHERE a.id = b.aid "
    "AND b.cid = c.id",
    "SELECT COUNT(*) FROM A a, B b, C c WHERE a.id = b.aid "
    "AND b.cid = c.id AND a.x > 0 AND c.z < 2",
]


def fit_truescan(db, n_bins=20, **kwargs):
    cfg = FactorJoinConfig(n_bins=n_bins, table_estimator="truescan",
                           **kwargs)
    return FactorJoin(cfg).fit(db)


class TestBoundValidity:
    @pytest.mark.parametrize("sql", TWO_TABLE_QUERIES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_two_table_truescan_never_underestimates(self, sql, seed):
        db = build_toy_db(seed=seed)
        model = fit_truescan(db)
        truth = CardinalityExecutor(db).cardinality(parse_query(sql))
        est = model.estimate(parse_query(sql))
        assert est + 1e-6 >= truth

    @pytest.mark.parametrize("sql", TWO_TABLE_QUERIES)
    def test_exact_with_one_bin_per_value(self, sql):
        # enough bins that every domain value gets its own bin: the bound
        # must reduce to the exact cardinality (Section 4.2's extreme case)
        db = build_toy_db(seed=3, n_a=30, n_b=60, n_c=20)
        model = fit_truescan(db, n_bins=10_000)
        truth = CardinalityExecutor(db).cardinality(parse_query(sql))
        est = model.estimate(parse_query(sql))
        assert est == pytest.approx(truth, rel=1e-6)

    @pytest.mark.parametrize("sql", CHAIN_QUERIES)
    def test_chain_estimates_reasonable(self, sql):
        db = build_toy_db(seed=4)
        model = fit_truescan(db, n_bins=30)
        truth = CardinalityExecutor(db).cardinality(parse_query(sql))
        est = model.estimate(parse_query(sql))
        assert est > 0
        if truth > 0:
            assert est / truth < 1e4  # sane bound, not garbage

    def test_most_subplans_overestimated(self):
        db = build_toy_db(seed=5, n_a=80, n_b=200, n_c=50)
        model = fit_truescan(db, n_bins=40)
        q = parse_query(CHAIN_QUERIES[1])
        ests = model.estimate_subplans(q, min_tables=2)
        truths = CardinalityExecutor(db).subplan_cardinalities(q,
                                                               min_tables=2)
        over = sum(ests[s] + 1e-6 >= truths[s] for s in truths
                   if truths[s] > 0)
        positive = sum(1 for s in truths if truths[s] > 0)
        assert over >= 0.9 * positive

    def test_k1_single_bin_still_works(self):
        db = build_toy_db(seed=6)
        model = fit_truescan(db, n_bins=1)
        q = parse_query(TWO_TABLE_QUERIES[0])
        truth = CardinalityExecutor(db).cardinality(q)
        est = model.estimate(q)
        assert est + 1e-6 >= truth  # single-bin bound is valid, just loose


class TestBoundTightness:
    def test_more_bins_tighter_bound(self):
        db = build_toy_db(seed=7, n_a=100, n_b=400, n_c=50)
        q = parse_query(TWO_TABLE_QUERIES[0])
        truth = CardinalityExecutor(db).cardinality(q)
        errors = []
        for k in (1, 8, 64):
            model = fit_truescan(db, n_bins=k)
            errors.append(model.estimate(q) / truth)
        assert errors[0] >= errors[1] >= errors[2] >= 1 - 1e-9

    def test_gbsa_no_looser_than_equal_width(self):
        db = build_toy_db(seed=8, n_a=150, n_b=600, n_c=40)
        q = parse_query(TWO_TABLE_QUERIES[0])
        truth = CardinalityExecutor(db).cardinality(q)
        rel = {}
        for strategy in ("gbsa", "equal_width"):
            model = fit_truescan(db, n_bins=12, binning=strategy)
            rel[strategy] = model.estimate(q) / truth
        assert rel["gbsa"] <= rel["equal_width"] * 1.05


class TestSubplanEstimation:
    def test_progressive_covers_all_connected_subsets(self):
        db = build_toy_db(seed=9)
        model = fit_truescan(db)
        q = parse_query(CHAIN_QUERIES[0])
        ests = model.estimate_subplans(q, min_tables=1)
        assert len(ests) == len(q.connected_subsets(2)) + 3

    def test_progressive_matches_independent(self):
        """Bit-identical, not approximately: the progressive path mirrors
        the greedy fold order exactly (the contract the serving layer's
        cross-request sub-plan reuse relies on)."""
        db = build_toy_db(seed=10)
        model = fit_truescan(db, n_bins=16)
        q = parse_query(CHAIN_QUERIES[1])
        prog = model.estimate_subplans(q, progressive=True)
        indep = model.estimate_subplans(q, progressive=False)
        assert prog == indep

    def test_full_query_estimate_consistent_with_subplans(self):
        db = build_toy_db(seed=11)
        model = fit_truescan(db, n_bins=16)
        q = parse_query(CHAIN_QUERIES[0])
        full = model.estimate(q)
        subs = model.estimate_subplans(q)
        assert subs[frozenset(q.aliases)] == full

    def test_every_subplan_entry_equals_plain_estimate(self):
        """Each sub-plan map entry is exactly what ``estimate`` returns
        for the induced sub-query — so a cached sub-plan entry can answer
        a plain estimate without changing the number."""
        db = build_toy_db(seed=12)
        model = fit_truescan(db, n_bins=16)
        q = parse_query(CHAIN_QUERIES[1])
        subs = model.estimate_subplans(q, min_tables=1)
        for subset, value in subs.items():
            assert value == model.estimate(q.subquery(set(subset))), subset

    def test_subplan_fingerprints_align_with_map(self):
        db = build_toy_db(seed=12)
        model = fit_truescan(db, n_bins=16)
        q = parse_query(CHAIN_QUERIES[1])
        fingerprints = model.subplan_fingerprints(q, min_tables=1)
        assert set(fingerprints) == set(
            model.estimate_subplans(q, min_tables=1))
        # stable and alias-invariant: each key matches the induced
        # sub-query's own canonical key
        for subset, key in fingerprints.items():
            assert key == q.subquery(set(subset)).subplan_key()


class TestEstimatorChoices:
    @pytest.mark.parametrize("estimator", ["truescan", "sampling",
                                           "bayescard", "histogram1d"])
    def test_all_estimators_run(self, estimator):
        db = build_toy_db(seed=12)
        cfg = FactorJoinConfig(n_bins=10, table_estimator=estimator,
                               sample_rate=0.5)
        model = FactorJoin(cfg).fit(db)
        q = parse_query(TWO_TABLE_QUERIES[1])
        est = model.estimate(q)
        assert np.isfinite(est) and est >= 0

    def test_bayescard_close_to_truescan_on_filters(self):
        db = build_toy_db(seed=13, n_a=200, n_b=800, n_c=60)
        q = parse_query(
            "SELECT COUNT(*) FROM A a, B b WHERE a.id = b.aid AND a.x = 2")
        bc = FactorJoin(FactorJoinConfig(
            n_bins=16, table_estimator="bayescard")).fit(db)
        ts = FactorJoin(FactorJoinConfig(
            n_bins=16, table_estimator="truescan")).fit(db)
        est_bc, est_ts = bc.estimate(q), ts.estimate(q)
        q_error = max(est_bc, est_ts) / max(1e-9, min(est_bc, est_ts))
        assert q_error < 3.0

    def test_uniform_mode_is_joinhist_semantics(self):
        db = build_toy_db(seed=14)
        q = parse_query(TWO_TABLE_QUERIES[0])
        bound = fit_truescan(db, n_bins=8).estimate(q)
        uniform = fit_truescan(db, n_bins=8, bound_mode="uniform").estimate(q)
        truth = CardinalityExecutor(db).cardinality(q)
        # the expected-value estimate is below the bound, and for the
        # unfiltered join both should be in the truth's ballpark
        assert uniform <= bound + 1e-6
        assert uniform > 0.01 * truth


class TestWorkloadBudget:
    def test_workload_shifts_bins_to_frequent_group(self):
        db = build_toy_db(seed=15)
        workload = [parse_query(TWO_TABLE_QUERIES[0])] * 10  # only A.id group
        cfg = FactorJoinConfig(n_bins=10, table_estimator="truescan",
                               workload=workload, total_bin_budget=40)
        model = FactorJoin(cfg).fit(db)
        sizes = {name: model.binning_for_group(name).n_bins
                 for name in model.group_names()}
        # group containing A.id must get (almost) the whole budget
        a_group = [n for n in sizes
                   if any(m == ("A", "id")
                          for m in _group_members(model, n))][0]
        other = [n for n in sizes if n != a_group][0]
        assert sizes[a_group] > sizes[other]


def _group_members(model, name):
    for g in model._groups:
        if g.name == name:
            return g.members
    return ()


class TestUpdates:
    def test_update_tracks_inserted_rows(self):
        db_full = build_toy_db(seed=16, n_b=400)
        table_b = db_full.table("B")
        half = len(table_b) // 2
        first = table_b.take(np.arange(half))
        rest = table_b.take(np.arange(half, len(table_b)))
        db_half = db_full.replace_table(first)

        model = fit_truescan(db_half, n_bins=16)
        q = parse_query(TWO_TABLE_QUERIES[0])
        before = model.estimate(q)
        model.update("B", rest)
        after = model.estimate(q)
        truth = CardinalityExecutor(db_full).cardinality(q)
        assert after > before
        assert after + 1e-6 >= truth  # bound still valid after update
        assert model.last_update_seconds >= 0

    def test_update_estimates_match_retrain_with_same_bins(self):
        # with truescan + fixed bins, update must land exactly on the
        # statistics a retrain over the merged data would produce
        db_full = build_toy_db(seed=17, n_b=300)
        table_b = db_full.table("B")
        first = table_b.take(np.arange(150))
        rest = table_b.take(np.arange(150, 300))
        db_half = db_full.replace_table(first)

        updated = fit_truescan(db_half, n_bins=4, binning="equal_width")
        updated.update("B", rest)
        retrained = fit_truescan(db_full, n_bins=4, binning="equal_width")
        q = parse_query(TWO_TABLE_QUERIES[0])
        assert updated.estimate(q) == pytest.approx(retrained.estimate(q),
                                                    rel=1e-6)


class TestAPI:
    def test_not_fitted_raises(self):
        with pytest.raises(NotFittedError):
            FactorJoin().estimate(parse_query(TWO_TABLE_QUERIES[0]))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FactorJoinConfig(binning="nope")
        with pytest.raises(ValueError):
            FactorJoinConfig(bound_mode="nope")

    def test_config_or_kwargs_not_both(self):
        with pytest.raises(ValueError):
            FactorJoin(FactorJoinConfig(), n_bins=5)

    def test_model_size_and_training_time_reported(self):
        db = build_toy_db(seed=18)
        model = fit_truescan(db)
        assert model.model_size_bytes() > 0
        assert model.fit_seconds > 0

    def test_single_table_query(self):
        db = build_toy_db(seed=19)
        model = fit_truescan(db)
        q = parse_query("SELECT COUNT(*) FROM A a WHERE a.x > 2")
        truth = CardinalityExecutor(db).cardinality(q)
        assert model.estimate(q) == pytest.approx(truth)


class TestDeletes:
    """Section 4.3 symmetric maintenance: the deleted_rows update path."""

    def test_insert_then_delete_restores_estimates(self):
        db = build_toy_db(seed=21, n_b=200)
        model = fit_truescan(db, n_bins=8)
        q = parse_query(TWO_TABLE_QUERIES[0])
        before = model.estimate(q)
        batch = db.table("B").take(np.arange(40))
        model.update("B", batch)
        assert model.estimate(q) != before
        model.update("B", deleted_rows=batch)
        assert model.estimate(q) == pytest.approx(before, rel=1e-9)
        assert len(model.database.table("B")) == 200

    def test_delete_matches_retrain_on_remaining(self):
        db = build_toy_db(seed=22, n_b=300)
        table_b = db.table("B")
        keep, drop = table_b.take(np.arange(200)), table_b.take(
            np.arange(200, 300))
        model = fit_truescan(db, n_bins=4, binning="equal_width")
        model.update("B", deleted_rows=drop)
        retrained = fit_truescan(db.replace_table(keep), n_bins=4,
                                 binning="equal_width")
        q = parse_query(TWO_TABLE_QUERIES[0])
        assert model.estimate(q) == pytest.approx(retrained.estimate(q),
                                                  rel=1e-6)

    def test_mixed_insert_and_delete_batch(self):
        db = build_toy_db(seed=23, n_b=120)
        model = fit_truescan(db, n_bins=8)
        q = parse_query(TWO_TABLE_QUERIES[0])
        batch = db.table("B").take(np.arange(30))
        model.update("B", new_rows=batch, deleted_rows=batch)
        assert model.estimate(q) == pytest.approx(
            fit_truescan(db, n_bins=8).estimate(q), rel=1e-9)

    def test_unsupported_estimator_rejected_before_mutation(self):
        db = build_toy_db(seed=24)
        model = FactorJoin(FactorJoinConfig(
            n_bins=4, table_estimator="bayescard")).fit(db)
        assert model.supports_update("B")
        assert not model.supports_delete("B")
        q = parse_query(TWO_TABLE_QUERIES[0])
        before = model.estimate(q)
        with pytest.raises(NotImplementedError, match="deletion"):
            model.update("B", deleted_rows=db.table("B").head(5))
        assert model.estimate(q) == before

    def test_histogram1d_supports_delete(self):
        db = build_toy_db(seed=25)
        model = FactorJoin(FactorJoinConfig(
            n_bins=4, table_estimator="histogram1d")).fit(db)
        assert model.supports_delete("B")
        q = parse_query(TWO_TABLE_QUERIES[0])
        before = model.estimate(q)
        model.update("B", deleted_rows=db.table("B").head(30))
        assert model.estimate(q) < before

    def test_delete_after_reload_is_non_strict(self, tmp_path):
        # after an artifact reload the database view is an empty shell;
        # deletes must still apply to the statistics
        db = build_toy_db(seed=26, n_b=150)
        fit_truescan(db, n_bins=8).save(tmp_path / "m")
        model = FactorJoin.load(tmp_path / "m")
        q = parse_query(TWO_TABLE_QUERIES[0])
        before = model.estimate(q)
        model.update("B", deleted_rows=db.table("B").head(50))
        assert model.estimate(q) < before
