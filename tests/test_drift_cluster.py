"""Drift federation across the cluster stack: shard-scope attribution
routed to TCP workers, bit-identical federated snapshots vs in-process
monitoring, and the end-to-end acceptance path — a seeded STATS
workload with an injected shift drives the DriftReport, the
drift-critical alert, and the flight recorder identically through a
2-worker TCP cluster's ``GET /v1/drift``."""

import json
import urllib.request

import pytest

from repro.api import FeedbackRequest
from repro.core.estimator import FactorJoinConfig
from repro.obs import (
    AlertEngine,
    DriftMonitor,
    FlightRecorder,
    default_alert_rules,
)
from repro.obs.federate import snapshot_registry
from repro.serve import EstimationService, serve_in_background
from repro.shard import ShardedFactorJoin
from tests.test_cluster_model import QUERIES, _fit_sharded
from tests.test_cluster_tcp import tcp_cluster

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnraisableExceptionWarning")


class FakeClock:
    def __init__(self, at=0.0):
        self.at = at

    def __call__(self):
        return self.at

    def advance(self, seconds):
        self.at += seconds


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    from tests.conftest import build_toy_db

    db = build_toy_db(seed=3)
    path = tmp_path_factory.mktemp("drift-cluster") / "ensemble"
    _fit_sharded(db).save(path)
    return str(path), db


def _service(model, clock, rules=()):
    service = EstimationService(
        drift=DriftMonitor(clock=clock),
        alerts=AlertEngine(rules=rules, clock=clock),
        flight=FlightRecorder())
    service.register("m", model)
    return service


def _truth_of(db, query):
    from repro.engine.executor import CardinalityExecutor
    from repro.sql import parse_query

    return float(CardinalityExecutor(db).cardinality(parse_query(query)))


class TestShardQerrorFederation:
    def test_tcp_feedback_lands_the_in_process_shard_labels(
            self, artifact, tmp_path):
        """Satellite gate: ground-truth feedback against a TCP-backed
        cluster records the same ``repro_shard_qerror`` label sets —
        same shards, bit-identical quantized count maps — as the same
        feedback against the in-process ensemble, and the drift
        monitors (worker-held shard keys federated back vs all-local)
        report identically."""
        path, db = artifact
        clock = FakeClock()
        with tcp_cluster(path, tmp_path / "store") as (cluster, _, _):
            local = _service(_fit_sharded(db), clock)
            remote = _service(cluster, clock)
            for sql in QUERIES:
                truth = _truth_of(db, sql)
                clock.advance(1.0)
                mine = local.record_feedback(FeedbackRequest(
                    query=sql, true_cardinality=truth))
                theirs = remote.record_feedback(FeedbackRequest(
                    query=sql, true_cardinality=truth))
                assert theirs.estimate == mine.estimate
                assert theirs.shards == mine.shards
                assert theirs.q_error == mine.q_error

            mine, theirs = (
                snapshot_registry(service.metrics)["histograms"][
                    "repro_shard_qerror"]["children"]
                for service in (local, remote))
            assert theirs.keys() == mine.keys()
            assert {("shard", s) for s in range(3)} <= \
                {pair for key in mine for pair in key}
            for key, child in mine.items():
                assert theirs[key][4] == child[4]  # quantized counts
                assert theirs[key][0] == child[0]

            assert remote.drift_v1() == local.drift_v1()
            # the shard keys really live on the workers, not the driver
            driver_scopes = {key[0] for key
                             in remote.drift.snapshot()["keys"]}
            assert "shard" not in driver_scopes
            federated_scopes = {key[0] for key
                                in cluster.collect_drift()["keys"]}
            assert federated_scopes == {"shard"}


class TestDriftAcceptance:
    def test_injected_shift_reports_identically_through_tcp(
            self, tmp_path):
        """The acceptance gate: a seeded STATS workload with an
        injected update-driven shift on one query's tables produces a
        DriftReport attributing drift to the touched shards and tables,
        fires the drift-critical alert after its hold window, captures
        the offending queries in the flight recorder — and reports
        identically through a 2-worker TCP cluster's federated
        ``GET /v1/drift``, fake clock throughout."""
        from repro.eval.harness import make_context

        ctx = make_context("stats", scale=0.1, seed=0, max_tables=4)
        sharded = ShardedFactorJoin(
            FactorJoinConfig(n_bins=8, table_estimator="truescan",
                             seed=0),
            n_shards=4, parallel="serial").fit(ctx.database)
        path = tmp_path / "stats-ensemble"
        sharded.save(path)
        clock = FakeClock()
        with tcp_cluster(str(path), tmp_path / "store",
                         n_servers=2) as (cluster, _, _):
            local = _service(sharded, clock,
                             rules=default_alert_rules())
            remote = _service(cluster, clock,
                              rules=default_alert_rules())
            services = (local, remote)
            queries = ctx.workload[:10]
            drifted = queries[0]
            drifted_tables = sorted(
                {drifted.table_of(a) for a in drifted.aliases})

            def feed(query, inflate=1.0):
                clock.advance(1.0)
                est = local.estimate(query, model="m").estimate
                truth = max(est, 1.0) * inflate
                responses = [
                    service.record_feedback(FeedbackRequest(
                        query=query, true_cardinality=truth,
                        estimate=est, model="m"))
                    for service in services]
                assert responses[1].shards == responses[0].shards
                return responses[0]

            # stable prefix: every query at q-error ~1, the soon-to-
            # drift query often enough to establish its baseline
            for _ in range(16):
                feed(drifted)
            for query in queries[1:]:
                for _ in range(2):
                    feed(query)
            for service in services:
                report = service.drift_report()
                assert report.counts["drifting"] == 0
                assert report.counts["critical"] == 0
                assert service.evaluate_alerts() == []

            # the injected shift: updates landed on the drifted query's
            # tables, so its truth now dwarfs the stale estimates; the
            # clock jump pushes the stable prefix out of the "recent"
            # window so the report's magnitude isolates the shift
            clock.advance(400.0)
            drift_shards = set()
            for _ in range(12):
                drift_shards.update(feed(drifted, inflate=60.0).shards)

            report = local.drift_report()
            critical = {(e["scope"], e["key"]) for e in report.entries
                        if e["status"] == "critical"}
            assert ("model", "") in critical
            for table in drifted_tables:
                assert ("table", table) in critical
            assert drift_shards
            for shard in drift_shards:
                assert ("shard", str(shard)) in critical
            # untouched attribution keys stay stable
            for entry in report.entries:
                if entry["scope"] == "shard" and \
                        int(entry["key"]) not in drift_shards:
                    assert entry["status"] == "stable"
                if entry["scope"] == "table" and \
                        entry["key"] not in drifted_tables:
                    assert entry["status"] == "stable"
            worst = report.top(1)[0]
            assert worst["onset"] is not None
            assert worst["magnitude"] > 5.0

            # the drift-critical alert: pending on first sight of the
            # critical key, firing once the hold window has passed
            for service in services:
                assert service.evaluate_alerts() == []
                snap = service.alerts_v1()
                state = {a["name"]: a["state"] for a in snap["alerts"]}
                assert state["drift-critical"] == "pending"
            clock.advance(61.0)
            for service in services:
                events = service.evaluate_alerts()
                assert [e["event"] for e in events] == ["firing"]
                assert events[0]["rule"] == "drift-critical"
                assert service.alerts_v1()["firing"] == 1

            # the flight recorder holds the offending query, worst first
            for service in services:
                bundles = service.flight.bundles("qerror")
                assert bundles
                assert bundles[0]["score"] == pytest.approx(60.0)
                assert bundles[0]["bundle"]["sql"] == drifted.to_sql()
                assert bundles[0]["bundle"]["shards"] == \
                    sorted(drift_shards)

            # federated /v1/drift over HTTP == the in-process report
            want = json.loads(json.dumps(local.drift_v1(top=5)))
            httpd, _ = serve_in_background(remote, port=0)
            try:
                host, port = httpd.server_address[:2]
                with urllib.request.urlopen(
                        f"http://{host}:{port}/v1/drift?top=5",
                        timeout=30) as resp:
                    got = json.loads(resp.read())
            finally:
                httpd.shutdown()
                httpd.server_close()
            assert got == want
