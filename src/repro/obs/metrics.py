"""The metrics registry: counters, gauges, histograms, collectors.

One :class:`MetricsRegistry` per service holds every instrument the
stack updates on the hot path.  Three design constraints shape it:

- **always-on and cheap** — an update is one dict operation under a
  per-metric lock (no allocation after the first observation of a label
  set), so instrumenting a microsecond cache hit does not move it;
- **exact streaming percentiles** — histograms quantize each observed
  value to three significant figures and count occurrences per
  quantized value.  Percentiles computed from those counts are exact
  over the *entire* stream (to the 0.1% quantization), not approximate
  over a recent window, and memory stays bounded: realistic latency or
  q-error ranges span a few thousand distinct quantized values at most;
- **snapshot consistency** — readers (``GET /metrics``, ``/v1/stats``)
  take each metric's lock once and copy, so a scrape never observes a
  half-applied update (e.g. cache hits incremented but lookups not).

Metrics that belong to another component's locked state (the estimate
cache's counters, the worker pool's liveness) are *collected* rather
than duplicated: :meth:`MetricsRegistry.register_collector` callbacks
run at scrape time and read one consistent snapshot from the owning
object.  :data:`NULL_METRICS` is the no-op twin used to measure (and
disable) instrumentation overhead.
"""

from __future__ import annotations

import bisect
import math
import threading

#: Default ``le`` bucket bounds for latency-style histograms (seconds).
LATENCY_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
                   0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Default ``le`` bucket bounds for q-error histograms (ratio >= 1).
QERROR_BUCKETS = (1.0, 1.2, 1.5, 2.0, 3.0, 5.0, 10.0, 30.0, 100.0,
                  1000.0, 1e6)

_SIG_FIGS = 3

#: Distinct label sets an instrument tracks before further new label
#: sets collapse into the :data:`OVERFLOW_LABEL_KEY` child.  High-
#: cardinality sources (per-template drift labels, adversarial label
#: values) can therefore never grow the registry without bound.
DEFAULT_MAX_LABEL_SETS = 512

#: The label set absorbing past-cap arrivals.
OVERFLOW_LABEL_KEY = (("label_overflow", "true"),)


def quantize(value: float) -> float:
    """Quantize ``value`` to :data:`_SIG_FIGS` significant figures.

    The histogram's unit of exactness: two observations that quantize
    alike are indistinguishable (<=0.1% relative error), so per-value
    counts stay bounded while percentiles stay exact over the stream.
    Non-positive and non-finite values map to themselves (they get
    their own counter keys and sort correctly).
    """
    if value <= 0.0 or not math.isfinite(value):
        return float(value)
    exponent = math.floor(math.log10(value))
    scale = 10.0 ** (exponent - (_SIG_FIGS - 1))
    return round(value / scale) * scale


def percentile_from_counts(counts: dict[float, int], q: float) -> float:
    """The ``q``-quantile of a quantized value→count map (0 when empty).

    Walks values in sorted order accumulating counts — exact for the
    recorded stream, matching the nearest-rank definition the old
    windowed ``LatencyStats`` used.
    """
    total = sum(counts.values())
    if not total:
        return 0.0
    rank = min(total - 1, int(q * total))
    seen = 0
    for value in sorted(counts):
        seen += counts[value]
        if seen > rank:
            return value
    return max(counts)  # pragma: no cover - unreachable (seen == total)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _bucket_bound(buckets: tuple, value: float) -> float:
    """The Prometheus ``le`` bound ``value`` falls under (``inf`` past
    the last finite bucket) — the key exemplars are stored by."""
    index = bisect.bisect_left(buckets, value)
    return buckets[index] if index < len(buckets) else math.inf


class _Metric:
    """Shared shape of every instrument: name, help text, label sets.

    Distinct label sets per instrument are capped at
    ``max_label_sets``; once full, updates for *new* label sets land on
    the single ``label_overflow="true"`` child and
    ``dropped_label_sets`` counts how many were collapsed (exported as
    ``repro_metric_dropped_label_sets_total``)."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "",
                 max_label_sets: int = DEFAULT_MAX_LABEL_SETS):
        self.name = name
        self.help = help_text
        self.max_label_sets = int(max_label_sets)
        self.dropped_label_sets = 0
        self._lock = threading.Lock()
        self._values: dict[tuple, object] = {}

    def _admit(self, key: tuple) -> tuple:
        """The label key an update should land on (callers hold the
        metric lock): ``key`` itself while known or under the cap, the
        overflow child once the cap is hit."""
        if key in self._values or len(self._values) < self.max_label_sets:
            return key
        self.dropped_label_sets += 1
        return OVERFLOW_LABEL_KEY

    def samples(self) -> list[tuple[dict, object]]:
        """Consistent ``(labels, value)`` snapshot (one lock hold)."""
        with self._lock:
            items = list(self._values.items())
        return [(dict(key), value) for key, value in items]


class Counter(_Metric):
    """A monotone counter, one value per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            key = self._admit(key)
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._values.get(_label_key(labels), 0.0))

    def to_json(self) -> dict:
        return {_render_label_suffix(labels) or "": value
                for labels, value in self.samples()}


class Gauge(_Metric):
    """A settable value, one per label set."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            key = self._admit(key)
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            key = self._admit(key)
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._values.get(_label_key(labels), 0.0))

    def to_json(self) -> dict:
        return {_render_label_suffix(labels) or "": value
                for labels, value in self.samples()}


class _HistogramChild:
    """One label set's histogram state: count/sum/min/max plus the
    quantized value→count map percentiles are computed from, and the
    latest exemplar per ``le`` bucket (observation value + trace id)."""

    __slots__ = ("count", "total", "min", "max", "counts", "exemplars")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.counts: dict[float, int] = {}
        self.exemplars: dict[float, tuple[float, str]] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        key = quantize(value)
        self.counts[key] = self.counts.get(key, 0) + 1


class Histogram(_Metric):
    """Streaming histogram with exact (to quantization) percentiles.

    ``buckets`` are the cumulative ``le`` bounds of the Prometheus
    rendering only; percentiles never pass through them — they come
    from the quantized per-value counts, so a misjudged bucket layout
    cannot blur a dashboard's p99.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 buckets: tuple = LATENCY_BUCKETS,
                 max_label_sets: int = DEFAULT_MAX_LABEL_SETS):
        super().__init__(name, help_text, max_label_sets=max_label_sets)
        self.buckets = tuple(sorted(buckets))

    def observe(self, value: float, trace_id: str | None = None,
                **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            key = self._admit(key)
            child = self._values.get(key)
            if child is None:
                child = self._values[key] = _HistogramChild()
            child.observe(value)
            if trace_id is not None:
                bound = _bucket_bound(self.buckets, value)
                child.exemplars[bound] = (value, trace_id)

    def snapshot(self, match: dict | None = None
                 ) -> tuple[int, float, float, float, dict]:
        """``(count, total, min, max, counts)`` merged over the label
        sets matching ``match`` (all of them when None).

        ``match`` values may be single values or tuples of admissible
        values — ``{"endpoint": ("estimate", "subplans")}`` merges two
        endpoints into one view.
        """
        count, total = 0, 0.0
        low, high = math.inf, -math.inf
        counts: dict[float, int] = {}
        with self._lock:
            items = [(dict(key), child) for key, child
                     in self._values.items()]
            for labels, child in items:
                if not _matches(labels, match):
                    continue
                count += child.count
                total += child.total
                low = min(low, child.min)
                high = max(high, child.max)
                for value, n in child.counts.items():
                    counts[value] = counts.get(value, 0) + n
        return count, total, (low if count else 0.0), (
            high if count else 0.0), counts

    def summary(self, match: dict | None = None) -> dict:
        """JSON-ready count / mean / percentiles over matching labels."""
        count, total, low, high, counts = self.snapshot(match)
        return {
            "count": count,
            "total": total,
            "mean": (total / count) if count else 0.0,
            "min": low,
            "max": high,
            "p50": percentile_from_counts(counts, 0.50),
            "p95": percentile_from_counts(counts, 0.95),
            "p99": percentile_from_counts(counts, 0.99),
        }

    def bound(self, **labels) -> "BoundHistogram":
        """A handle pre-resolved to one label set's child.

        ``observe`` through the handle skips the per-call label sort and
        child lookup — the per-request fast path the service uses for
        its latency observations (labels are known per endpoint/model
        and never change).
        """
        key = _label_key(labels)
        with self._lock:
            key = self._admit(key)
            child = self._values.get(key)
            if child is None:
                child = self._values[key] = _HistogramChild()
        return BoundHistogram(self._lock, child, self.buckets)

    def children_snapshot(self) -> list[tuple[dict, int, float, dict]]:
        """Copied ``(labels, count, total, counts)`` per label set, read
        under the metric lock — renderers must never iterate a counts
        dict a concurrent ``observe`` could be growing."""
        with self._lock:
            return [(dict(key), child.count, child.total,
                     dict(child.counts))
                    for key, child in self._values.items()]

    def full_children_snapshot(
            self) -> list[tuple[dict, int, float, float, float, dict]]:
        """Copied ``(labels, count, total, min, max, counts)`` per label
        set — the complete per-child state the federation layer ships
        across processes (see :mod:`repro.obs.federate`).  Summing two
        such snapshots loses nothing: counts add, min/max fold."""
        with self._lock:
            return [(dict(key), child.count, child.total, child.min,
                     child.max, dict(child.counts))
                    for key, child in self._values.items()]

    def exemplars(self) -> list[dict]:
        """JSON-ready exemplars: per label set, the latest
        ``(value, trace_id)`` pair recorded in each ``le`` bucket, so a
        slow p99 bucket links straight to a trace."""
        with self._lock:
            items = [(dict(key), dict(child.exemplars))
                     for key, child in self._values.items()]
        out: list[dict] = []
        for labels, exemplars in items:
            for bound, (value, trace_id) in sorted(exemplars.items()):
                out.append({
                    "labels": labels,
                    "le": "+Inf" if bound == math.inf else bound,
                    "value": value,
                    "trace_id": trace_id,
                })
        return out

    def to_json(self) -> dict:
        return {_render_label_suffix(labels) or "": {
                    "count": count, "sum": total}
                for labels, count, total, _ in self.children_snapshot()}


class BoundHistogram:
    """One label set's pre-resolved observe handle (see
    :meth:`Histogram.bound`); shares the parent histogram's lock, so
    bound and labeled observes interleave safely."""

    __slots__ = ("_lock", "_child", "_buckets")

    def __init__(self, lock, child: _HistogramChild, buckets: tuple = ()):
        self._lock = lock
        self._child = child
        self._buckets = buckets

    def observe(self, value: float, trace_id: str | None = None) -> None:
        with self._lock:
            self._child.observe(value)
            if trace_id is not None:
                bound = _bucket_bound(self._buckets, value)
                self._child.exemplars[bound] = (value, trace_id)


def _matches(labels: dict, match: dict | None) -> bool:
    if not match:
        return True
    for key, want in match.items():
        have = labels.get(key)
        if isinstance(want, (tuple, list, set, frozenset)):
            if have not in want:
                return False
        elif have != want:
            return False
    return True


def _render_label_suffix(labels: dict) -> str:
    """Stable ``k=v,k2=v2`` key for JSON views of labeled samples."""
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


class MetricsRegistry:
    """Named instruments plus scrape-time collectors.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create by name (the
    service and the cluster layer can share one registry without
    coordinating creation order); ``register_collector`` adds a callback
    run at scrape time for metrics whose source of truth lives behind
    another component's lock (cache counters, worker pool health) —
    each callback returns fully-formed sample families, read in one
    consistent snapshot from the owning object.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list = []

    #: Whether updates against this registry do real work (the null
    #: twin reports False; benches and tests branch on it).
    enabled = True

    def counter(self, name: str, help_text: str = "",
                max_label_sets: int = DEFAULT_MAX_LABEL_SETS) -> Counter:
        return self._get_or_create(Counter, name, help_text,
                                   max_label_sets)

    def gauge(self, name: str, help_text: str = "",
              max_label_sets: int = DEFAULT_MAX_LABEL_SETS) -> Gauge:
        return self._get_or_create(Gauge, name, help_text,
                                   max_label_sets)

    def histogram(self, name: str, help_text: str = "",
                  buckets: tuple = LATENCY_BUCKETS,
                  max_label_sets: int = DEFAULT_MAX_LABEL_SETS
                  ) -> Histogram:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Histogram(name, help_text, buckets=buckets,
                                   max_label_sets=max_label_sets)
                self._metrics[name] = metric
        if not isinstance(metric, Histogram):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def _get_or_create(self, cls, name: str, help_text: str,
                       max_label_sets: int = DEFAULT_MAX_LABEL_SETS):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text,
                             max_label_sets=max_label_sets)
                self._metrics[name] = metric
        if type(metric) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def register_collector(self, collector) -> None:
        """Register ``collector() -> iterable of (kind, name, help,
        [(labels_dict, value)])`` families, evaluated at scrape time."""
        with self._lock:
            self._collectors.append(collector)

    def metrics(self) -> list[_Metric]:
        with self._lock:
            return list(self._metrics.values())

    def collect(self) -> list[tuple[str, str, str, list]]:
        """Every sample family: registered instruments first, then the
        collector callbacks (failures skip the collector, never the
        scrape)."""
        families: list[tuple[str, str, str, list]] = []
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                families.append(("histogram", metric.name, metric.help,
                                 [(labels, (count, total, counts),
                                   metric.buckets)
                                  for labels, count, total, counts
                                  in metric.children_snapshot()]))
            else:
                families.append((metric.kind, metric.name, metric.help,
                                 metric.samples()))
        dropped = [({"metric": metric.name},
                    float(metric.dropped_label_sets))
                   for metric in self.metrics()
                   if metric.dropped_label_sets]
        if dropped:
            families.append((
                "counter", "repro_metric_dropped_label_sets_total",
                "Label sets collapsed into the label_overflow child "
                "past an instrument's cardinality cap.", dropped))
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            try:
                families.extend(collector())
            except Exception:  # a broken collector must not kill /metrics
                continue
        return families

    def render_prometheus(self) -> str:
        """The ``GET /metrics`` body (text exposition format)."""
        from repro.obs.export import render_prometheus

        return render_prometheus(self.collect())

    def to_json(self) -> dict:
        """The ``GET /v1/stats`` ``"metrics"`` section: every registered
        instrument (histograms as merged summaries) plus collector
        families."""
        out: dict[str, dict] = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                entry = {"kind": metric.kind,
                         "summary": metric.summary()}
                exemplars = metric.exemplars()
                if exemplars:
                    entry["exemplars"] = exemplars
                out[metric.name] = entry
            else:
                out[metric.name] = {"kind": metric.kind,
                                    "values": metric.to_json()}
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            try:
                for kind, name, _, samples in collector():
                    out[name] = {"kind": kind, "values": {
                        _render_label_suffix(labels) or "": value
                        for labels, value in samples}}
            except Exception:
                continue
        return out


class _NullInstrument:
    """Absorbs every instrument method as a no-op."""

    def inc(self, *args, **kwargs) -> None:
        return None

    def set(self, *args, **kwargs) -> None:
        return None

    def observe(self, *args, **kwargs) -> None:
        return None

    def value(self, **labels) -> float:
        return 0.0

    def samples(self) -> list:
        return []

    def bound(self, **labels) -> "_NullInstrument":
        return self

    def snapshot(self, match=None):
        return 0, 0.0, 0.0, 0.0, {}

    def children_snapshot(self) -> list:
        return []

    def full_children_snapshot(self) -> list:
        return []

    def exemplars(self) -> list:
        return []

    def summary(self, match=None) -> dict:
        return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0,
                "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def to_json(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The registry's no-op twin: same surface, no work, nothing stored.

    Exists so the overhead bench can compare instrumented serving
    against a genuinely uninstrumented build of the *same* code path,
    and so operators can switch telemetry off wholesale.
    """

    enabled = False

    def counter(self, name: str, help_text: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help_text: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help_text: str = "",
                  buckets: tuple = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def register_collector(self, collector) -> None:
        return None

    def metrics(self) -> list:
        return []

    def collect(self) -> list:
        return []

    def render_prometheus(self) -> str:
        from repro.obs.export import render_prometheus

        return render_prometheus([])

    def to_json(self) -> dict:
        return {}


NULL_METRICS = NullMetrics()
