"""In-process TCP fault injection for the cluster transport tests.

:class:`FaultProxy` sits between a driver's
:class:`~repro.cluster.net.TcpTransport` and a
:class:`~repro.cluster.net.WorkerServer`, forwarding framed RPC traffic
while injecting scripted faults — dropped, delayed, duplicated, or
truncated frames, hard disconnects, and byte-at-a-time slowloris
delivery.  It is frame-aware (it reassembles each direction's stream
with the real :class:`~repro.cluster.net.FrameDecoder`), so a fault
always lands on a whole RPC message, which is what makes the tests
deterministic: "drop the next request" means exactly one request.

The proxy keeps accepting connections, so a driver whose pool declared
the worker dead reconnects *through the same faults* — the reconnect +
ledger-reseed path is exercised end to end.

:class:`SlowBeat` is a test-only RPC message whose handler sleeps before
answering; registering it here (at import time, into the shared
``ShardWorker`` handler table) makes it visible to in-process TCP
servers and — under the ``fork`` start method — to pipe worker
processes, which is how the pool's slow-vs-dead grace window is
exercised without monkeypatching time.
"""

from __future__ import annotations

import collections
import socket
import threading
import time
from dataclasses import dataclass

from repro.cluster.messages import Ping
from repro.cluster.net import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    FrameError,
    encode_frame,
    parse_address,
)
from repro.cluster.worker import ShardWorker

_RECV = 1 << 16


@dataclass(frozen=True)
class Fault:
    """One scripted fault, consumed by the next frame in its direction.

    kinds: ``drop`` (never forwarded), ``delay`` (forwarded after
    ``seconds``), ``dup`` (forwarded twice), ``truncate`` (only the
    first ``keep`` bytes of the wire frame are sent, then the connection
    is hard-closed), ``disconnect`` (nothing sent, connection
    hard-closed), ``slowloris`` (forwarded in ``chunk``-byte pieces with
    ``pause`` seconds between them).
    """

    kind: str
    seconds: float = 0.0
    keep: int = 0
    chunk: int = 1
    pause: float = 0.0


class _Link:
    """One client connection and its upstream twin."""

    def __init__(self, client: socket.socket, upstream: socket.socket):
        self.client = client
        self.upstream = upstream
        self.lock = threading.Lock()
        self.dead = False

    def close(self) -> None:
        with self.lock:
            if self.dead:
                return
            self.dead = True
        for sock in (self.client, self.upstream):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class FaultProxy:
    """A frame-aware TCP proxy with scripted fault injection.

    Directions: ``"c2s"`` is driver-to-worker (requests), ``"s2c"`` is
    worker-to-driver (replies).  Faults queue per direction and each is
    consumed by exactly one frame, in order; frames with no queued fault
    forward untouched.  ``stats`` counts forwarded frames and applied
    faults per direction.
    """

    def __init__(self, upstream, max_frame: int = DEFAULT_MAX_FRAME):
        self.upstream = parse_address(upstream)
        self.max_frame = int(max_frame)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self.address = self._listener.getsockname()[:2]
        self._faults = {"c2s": collections.deque(),
                        "s2c": collections.deque()}
        self._lock = threading.Lock()
        self.stats = collections.Counter()
        self._stopped = threading.Event()
        self._links: list[_Link] = []
        self._threads: list[threading.Thread] = []
        self._accepter = threading.Thread(target=self._accept_loop,
                                          daemon=True,
                                          name="fakenet-accept")
        self._accepter.start()

    # -- scripting -------------------------------------------------------------

    def inject(self, direction: str, kind: str, **kw) -> None:
        """Queue one fault for the next frame in ``direction``."""
        assert direction in ("c2s", "s2c")
        with self._lock:
            self._faults[direction].append(Fault(kind, **kw))

    def clear(self) -> None:
        """Drop every queued fault (frames forward untouched again)."""
        with self._lock:
            for queue in self._faults.values():
                queue.clear()

    def _next_fault(self, direction: str) -> Fault | None:
        with self._lock:
            queue = self._faults[direction]
            return queue.popleft() if queue else None

    # -- plumbing --------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            try:
                upstream = socket.create_connection(self.upstream,
                                                    timeout=5.0)
            except OSError:
                client.close()
                continue
            for sock in (client, upstream):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            link = _Link(client, upstream)
            self._links.append(link)
            for direction, src, dst in (("c2s", client, upstream),
                                        ("s2c", upstream, client)):
                thread = threading.Thread(
                    target=self._pump, args=(link, direction, src, dst),
                    daemon=True, name=f"fakenet-{direction}")
                thread.start()
                self._threads.append(thread)

    def _pump(self, link: _Link, direction: str, src: socket.socket,
              dst: socket.socket) -> None:
        decoder = FrameDecoder(self.max_frame)
        while not self._stopped.is_set() and not link.dead:
            try:
                data = src.recv(_RECV)
            except OSError:
                break
            if not data:
                break
            try:
                payloads = decoder.feed(data)
            except FrameError:
                break
            for payload in payloads:
                if not self._forward(link, direction, dst, payload):
                    return
        link.close()

    def _forward(self, link: _Link, direction: str, dst: socket.socket,
                 payload: bytes) -> bool:
        fault = self._next_fault(direction)
        frame = encode_frame(payload, self.max_frame)
        try:
            if fault is None:
                dst.sendall(frame)
                self.stats[f"forwarded_{direction}"] += 1
                return True
            self.stats[f"fault_{fault.kind}_{direction}"] += 1
            if fault.kind == "drop":
                return True
            if fault.kind == "delay":
                time.sleep(fault.seconds)
                dst.sendall(frame)
                return True
            if fault.kind == "dup":
                dst.sendall(frame)
                dst.sendall(frame)
                return True
            if fault.kind == "truncate":
                dst.sendall(frame[:max(0, int(fault.keep))])
                link.close()
                return False
            if fault.kind == "disconnect":
                link.close()
                return False
            if fault.kind == "slowloris":
                step = max(1, int(fault.chunk))
                for start in range(0, len(frame), step):
                    dst.sendall(frame[start:start + step])
                    if fault.pause:
                        time.sleep(fault.pause)
                return True
            raise AssertionError(f"unknown fault kind {fault.kind!r}")
        except OSError:
            link.close()
            return False

    def drop_connections(self) -> None:
        """Hard-close every live link (both ends), keep listening."""
        for link in list(self._links):
            link.close()

    def close(self) -> None:
        """Stop the proxy: close the listener and every link."""
        self._stopped.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self.drop_connections()

    def __enter__(self) -> "FaultProxy":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- slow-but-alive worker behavior -------------------------------------------


@dataclass(frozen=True)
class SlowBeat:
    """Test-only RPC: sleep ``seconds`` in the worker, then answer like
    a Ping.  Distinguishes slow-but-alive from dead in grace tests."""

    seconds: float


def _slow_beat(worker: ShardWorker, message: SlowBeat):
    time.sleep(message.seconds)
    return worker._ping(Ping())


# registered into the class-level handler table so in-process servers
# and fork-started pipe workers both answer it
ShardWorker._HANDLERS[SlowBeat] = _slow_beat
