"""Tests for per-bin key statistics and their incremental maintenance."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bin_stats import BinStats, KeyStatistics
from repro.core.binning import Binning, gbsa_binning


def make_binning(domain_size=20, n_bins=4):
    domain = np.arange(domain_size)
    return Binning(domain, domain % n_bins, n_bins)


class TestBinStats:
    def test_totals_sum_to_rows(self):
        binning = make_binning()
        values = np.array([0, 0, 1, 5, 5, 5, 19])
        stats = BinStats(binning, values)
        assert stats.total_rows == len(values)

    def test_mfv_is_max_count_per_bin(self):
        binning = Binning(np.array([0, 1, 2, 3]), np.array([0, 0, 1, 1]), 2)
        values = np.array([0, 0, 0, 1, 2, 3, 3])
        stats = BinStats(binning, values)
        assert stats.mfv[0] == 3  # value 0 appears 3x
        assert stats.mfv[1] == 2  # value 3 appears 2x

    def test_ndv_per_bin(self):
        binning = Binning(np.array([0, 1, 2, 3]), np.array([0, 0, 1, 1]), 2)
        stats = BinStats(binning, np.array([0, 1, 1, 2]))
        assert stats.ndv[0] == 2
        assert stats.ndv[1] == 1

    def test_empty_bin_zeroes(self):
        binning = make_binning(n_bins=4)
        stats = BinStats(binning, np.array([0, 4, 8]))  # all map to bin 0
        assert stats.totals[1] == 0
        assert stats.mfv[1] == 0
        assert stats.ndv[1] == 0

    def test_insert_matches_rebuild(self):
        binning = make_binning()
        initial = np.array([0, 1, 2, 3, 4])
        extra = np.array([0, 0, 19, 7])
        incremental = BinStats(binning, initial)
        incremental.insert(extra)
        rebuilt = BinStats(binning, np.concatenate([initial, extra]))
        assert np.allclose(incremental.totals, rebuilt.totals)
        assert np.allclose(incremental.mfv, rebuilt.mfv)
        assert np.allclose(incremental.ndv, rebuilt.ndv)

    def test_delete_matches_rebuild(self):
        binning = make_binning()
        initial = np.array([0, 0, 1, 2, 3, 4, 4, 4])
        removed = np.array([0, 4])
        incremental = BinStats(binning, initial)
        incremental.delete(removed)
        rebuilt = BinStats(binning, np.array([0, 1, 2, 3, 4, 4]))
        assert np.allclose(incremental.totals, rebuilt.totals)
        assert np.allclose(incremental.mfv, rebuilt.mfv)

    def test_insert_unseen_value_stays_in_range(self):
        binning = make_binning(domain_size=10, n_bins=3)
        stats = BinStats(binning, np.array([1, 2]))
        stats.insert(np.array([500, 501]))  # outside trained domain
        assert stats.total_rows == 4
        assert (stats.totals >= 0).all()

    @given(st.lists(st.integers(0, 30), min_size=0, max_size=200),
           st.lists(st.integers(0, 30), min_size=0, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_property_insert_equals_rebuild(self, initial, extra):
        initial = np.array(initial, dtype=np.int64)
        extra = np.array(extra, dtype=np.int64)
        base = initial if len(initial) else np.array([0])
        binning = gbsa_binning([base], 5)
        incremental = BinStats(binning, initial)
        incremental.insert(extra)
        rebuilt = BinStats(binning, np.concatenate([initial, extra]))
        assert np.allclose(incremental.totals, rebuilt.totals)
        assert np.allclose(incremental.mfv, rebuilt.mfv)
        assert np.allclose(incremental.ndv, rebuilt.ndv)


class TestKeyStatistics:
    def test_per_key_lookup(self):
        binning = make_binning()
        ks = KeyStatistics("users.id", binning)
        ks.add_key("users", "id", np.arange(10))
        ks.add_key("posts", "owner_id", np.array([1, 1, 2]))
        assert ks.stats_of("users", "id").total_rows == 10
        assert ks.stats_of("posts", "owner_id").total_rows == 3
        assert ks.has_key("users", "id")
        assert not ks.has_key("users", "nope")

    def test_missing_key_raises(self):
        ks = KeyStatistics("g", make_binning())
        import pytest

        from repro.errors import ReproError
        with pytest.raises(ReproError):
            ks.stats_of("t", "c")

    def test_insert_routes_to_key(self):
        ks = KeyStatistics("g", make_binning())
        ks.add_key("t", "c", np.array([1]))
        ks.insert("t", "c", np.array([2, 3]))
        assert ks.stats_of("t", "c").total_rows == 3


class TestMerging:
    """Exact per-partition merging (the sharded ensemble's foundation)."""

    def test_merged_equals_full_fit(self):
        binning = make_binning()
        full = np.array([0, 0, 1, 5, 5, 5, 7, 12, 19, 19])
        parts = [full[full % 3 == s] for s in range(3)]
        merged = BinStats.merged([BinStats(binning, p) for p in parts])
        reference = BinStats(binning, full)
        assert np.array_equal(merged.totals, reference.totals)
        assert np.array_equal(merged.mfv, reference.mfv)
        assert np.array_equal(merged.ndv, reference.ndv)

    def test_merged_requires_matching_binning(self):
        import pytest

        from repro.errors import ReproError

        a = BinStats(make_binning(n_bins=4), np.array([1, 2]))
        b = BinStats(make_binning(n_bins=5), np.array([1, 2]))
        with pytest.raises(ReproError, match="share one binning"):
            BinStats.merged([a, b])
        with pytest.raises(ReproError, match="zero"):
            BinStats.merged([])

    def test_from_value_counts_round_trip(self):
        binning = make_binning()
        values = np.array([2, 7, 7, 7, 11])
        reference = BinStats(binning, values)
        rebuilt = BinStats.from_value_counts(
            binning, np.array([2, 7, 11]), np.array([1.0, 3.0, 1.0]))
        assert np.array_equal(rebuilt.totals, reference.totals)
        assert np.array_equal(rebuilt.mfv, reference.mfv)

    def test_copy_is_independent(self):
        binning = make_binning()
        original = BinStats(binning, np.array([1, 1, 2]))
        clone = original.copy()
        clone.insert(np.array([1, 1, 1]))
        assert original.total_rows == 3
        assert clone.total_rows == 6

    def test_delete_inverts_insert(self):
        binning = make_binning()
        stats = BinStats(binning, np.array([0, 1, 1, 5]))
        reference = BinStats(binning, np.array([0, 1, 1, 5]))
        batch = np.array([1, 5, 5, 9])
        stats.insert(batch)
        stats.delete(batch)
        assert np.array_equal(stats.totals, reference.totals)
        assert np.array_equal(stats.mfv, reference.mfv)
        assert np.array_equal(stats.ndv, reference.ndv)

    def test_key_statistics_merged_and_shallow_copy(self):
        binning = make_binning()
        parts = []
        for values in ([0, 1, 2], [3, 4], [5, 5, 5]):
            ks = KeyStatistics("g", binning)
            ks.add_key("t", "c", np.array(values))
            parts.append(ks)
        merged = KeyStatistics.merged(parts)
        assert merged.stats_of("t", "c").total_rows == 8

        clone = merged.shallow_copy()
        replacement = clone.stats_of("t", "c").copy()
        replacement.insert(np.array([7]))
        clone._per_key[("t", "c")] = replacement
        assert merged.stats_of("t", "c").total_rows == 8
        assert clone.stats_of("t", "c").total_rows == 9

    def test_key_statistics_delete_routes(self):
        binning = make_binning()
        ks = KeyStatistics("g", binning)
        ks.add_key("t", "c", np.array([1, 2, 3]))
        ks.delete("t", "c", np.array([2]))
        assert ks.stats_of("t", "c").total_rows == 2
