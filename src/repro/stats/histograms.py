"""Per-column summary statistics in the style of DBMS catalogs.

:class:`EquiDepthHistogram` + :class:`MostCommonValues` power the Selinger /
Postgres-style baseline: selectivity of a predicate from single-column
statistics, independence across columns.
"""

from __future__ import annotations

import numpy as np

from repro.data.column import Column
from repro.data.table import Table
from repro.data.types import DataType
from repro.engine.filter import evaluate_predicate
from repro.sql.predicates import (
    And,
    Between,
    Comparison,
    In,
    IsNull,
    Like,
    Not,
    Or,
    Predicate,
    TruePredicate,
)

DEFAULT_LIKE_SELECTIVITY = 0.05
DEFAULT_EQ_SELECTIVITY = 0.005


class MostCommonValues:
    """Top-``n`` most common values with their frequencies."""

    def __init__(self, column: Column, n: int = 100):
        values = column.non_null_values()
        self.total = len(values)
        if self.total == 0:
            self.values = np.zeros(0)
            self.fractions = np.zeros(0)
            self.ndv = 0
            return
        distinct, counts = np.unique(values, return_counts=True)
        self.ndv = len(distinct)
        order = np.argsort(counts)[::-1][:n]
        self.values = distinct[order]
        self.fractions = counts[order] / self.total
        self.covered_fraction = float(self.fractions.sum())

    def eq_selectivity(self, value) -> float | None:
        """Selectivity of ``col = value`` if the value is an MCV, else None."""
        hits = np.nonzero(self.values == value)[0]
        if len(hits):
            return float(self.fractions[hits[0]])
        return None

    def residual_eq_selectivity(self) -> float:
        """Selectivity for a non-MCV equality: uniform over the residual."""
        residual_ndv = max(1, self.ndv - len(self.values))
        residual_frac = max(0.0, 1.0 - float(self.fractions.sum()))
        return residual_frac / residual_ndv


class EquiDepthHistogram:
    """Equal-depth numeric histogram with range-selectivity estimation."""

    def __init__(self, column: Column, n_bins: int = 100):
        values = np.sort(column.non_null_values().astype(np.float64))
        self.total = len(values)
        if self.total == 0:
            self.edges = np.zeros(0)
            return
        qs = np.linspace(0, 1, min(n_bins, self.total) + 1)
        self.edges = np.quantile(values, qs)

    def le_fraction(self, x: float) -> float:
        """Estimated fraction of rows with value <= x (linear within bins)."""
        if self.total == 0 or len(self.edges) == 0:
            return 0.0
        edges = self.edges
        if x < edges[0]:
            return 0.0
        if x >= edges[-1]:
            return 1.0
        n_bins = len(edges) - 1
        idx = int(np.searchsorted(edges, x, side="right")) - 1
        idx = min(max(idx, 0), n_bins - 1)
        lo, hi = edges[idx], edges[idx + 1]
        within = 0.5 if hi == lo else (x - lo) / (hi - lo)
        return (idx + within) / n_bins

    def range_selectivity(self, low: float | None, high: float | None,
                          low_inclusive: bool = True,
                          high_inclusive: bool = True) -> float:
        lo_frac = 0.0 if low is None else self.le_fraction(low)
        hi_frac = 1.0 if high is None else self.le_fraction(high)
        return max(0.0, hi_frac - lo_frac)


class ColumnStatistics:
    """Catalog-style stats of one column: histogram + MCVs + null fraction."""

    def __init__(self, column: Column, n_bins: int = 100, n_mcv: int = 100):
        self.name = column.name
        self.dtype = column.dtype
        self.n_rows = len(column)
        self.null_fraction = (float(column.null_mask.mean())
                              if self.n_rows else 0.0)
        self.mcv = MostCommonValues(column, n_mcv)
        self.histogram = (EquiDepthHistogram(column, n_bins)
                          if column.dtype.is_numeric else None)

    def selectivity(self, pred: Predicate) -> float:
        """Selectivity of a single-column predicate, Selinger style."""
        not_null = 1.0 - self.null_fraction
        if isinstance(pred, TruePredicate):
            return 1.0
        if isinstance(pred, IsNull):
            return not_null if pred.negated else self.null_fraction
        if isinstance(pred, Comparison):
            if pred.op == "=":
                sel = self.mcv.eq_selectivity(pred.value)
                if sel is None:
                    sel = self.mcv.residual_eq_selectivity()
                return sel * not_null
            if pred.op == "!=":
                return max(0.0, 1.0 - self.selectivity(
                    Comparison(pred.column, "=", pred.value))) * not_null
            if self.histogram is not None:
                value = float(pred.value)
                le = self.histogram.le_fraction(value)
                eq = self.mcv.eq_selectivity(pred.value)
                if eq is None:
                    eq = self.mcv.residual_eq_selectivity()
                if pred.op == "<=":
                    sel = le
                elif pred.op == "<":
                    sel = max(0.0, le - eq)
                elif pred.op == ">":
                    sel = max(0.0, 1.0 - le)
                else:  # >=
                    sel = min(1.0, 1.0 - le + eq)
                return sel * not_null
            return 1.0 / 3.0 * not_null
        if isinstance(pred, Between):
            if self.histogram is not None:
                return self.histogram.range_selectivity(
                    float(pred.low), float(pred.high)) * not_null
            return 0.1 * not_null
        if isinstance(pred, In):
            sel = sum(self.selectivity(Comparison(pred.column, "=", v))
                      for v in pred.values)
            return min(1.0, sel)
        if isinstance(pred, Like):
            # evaluate against the MCV list; fall back to the magic constant
            sel = DEFAULT_LIKE_SELECTIVITY
            if len(self.mcv.values) and self.dtype is DataType.STRING:
                tiny = Table("_m", [Column(self.name, self.mcv.values,
                                           self.dtype)])
                matched = evaluate_predicate(pred, tiny)
                covered = float(self.mcv.fractions[matched].sum())
                residual = max(0.0, 1.0 - self.mcv.covered_fraction)
                sel = covered + residual * DEFAULT_LIKE_SELECTIVITY
            return min(1.0, sel) * not_null
        if isinstance(pred, Not):
            return max(0.0, 1.0 - self.selectivity(pred.child))
        if isinstance(pred, And):
            out = 1.0
            for child in pred.children:
                out *= self.selectivity(child)
            return out
        if isinstance(pred, Or):
            miss = 1.0
            for child in pred.children:
                miss *= 1.0 - self.selectivity(child)
            return 1.0 - miss
        return DEFAULT_EQ_SELECTIVITY
