"""Figure 9: ablation on the number of bins k (STATS-CEB).

Paper, for k in {1, 10, 50, 100, 200}: (A) end-to-end time falls from
7.4h (24% improvement) to 5.3h (46%) and saturates around k=100;
(B) bounds tighten with k; (C) latency grows ~linearly with k;
(D/E) training time and model size grow (size ~quadratically).

Shape checks: k=1 already beats Postgres; tightness and end-to-end improve
monotonically-ish with k and saturate; latency/size grow with k.
"""

from repro.baselines import FactorJoinMethod
from repro.core.estimator import FactorJoinConfig
from repro.errors import UnsupportedQueryError
from repro.eval.metrics import relative_error_percentiles
from repro.utils import format_table

K_VALUES = (1, 4, 8, 32, 100)


def subplan_tightness(ctx, method, max_queries=40):
    est, tru = [], []
    for query in ctx.workload[:max_queries]:
        if query.num_tables() < 2:
            continue
        try:
            ests = method.estimate_subplans(query, min_tables=2)
        except UnsupportedQueryError:
            continue
        truth = ctx.runner.true_subplan_cards(query)
        for subset, e in ests.items():
            t = truth.get(subset, 0.0)
            if t > 0:
                est.append(e)
                tru.append(t)
    return relative_error_percentiles(est, tru, (50, 95, 99))


def test_figure9_number_of_bins(benchmark, stats_ctx, stats_results):
    base = stats_results["Postgres"]
    rows = []
    series = {}
    for k in K_VALUES:
        method = FactorJoinMethod(FactorJoinConfig(
            n_bins=k, table_estimator="bayescard", seed=0))
        method.fit(stats_ctx.database)
        result = stats_ctx.runner.run(method, stats_ctx.workload)
        pct = subplan_tightness(stats_ctx, method)
        latency = result.total_planning / max(len(result.per_query), 1)
        series[k] = {
            "e2e": result.total_end_to_end,
            "improvement": result.improvement_over(base),
            "p50": pct[50], "p95": pct[95], "p99": pct[99],
            "latency": latency,
            "train": method.fit_seconds,
            "size": method.model_size_bytes(),
        }
        rows.append([
            k, f"{result.total_end_to_end:.3f}s",
            f"{result.improvement_over(base) * 100:+.1f}%",
            f"{pct[50]:.2f} / {pct[95]:.3g} / {pct[99]:.3g}",
            f"{latency * 1e3:.2f}ms",
            f"{method.fit_seconds:.3f}s",
            f"{method.model_size_bytes() / 1e6:.3f}MB",
        ])
    print()
    print(format_table(
        ["k", "End-to-end", "Improv.", "est/true p50/p95/p99",
         "Latency/query", "Training", "Model size"],
        rows, title="Figure 9: effect of the number of bins (STATS-CEB)"))

    k_min, k_mid, k_max = K_VALUES[0], K_VALUES[2], K_VALUES[-1]
    # (paper bullet 1) even k=1 outperforms Postgres thanks to the bound
    assert series[k_min]["improvement"] > 0
    # (paper bullet 2) more bins tighten the bound ...
    assert series[k_max]["p95"] <= series[k_min]["p95"]
    assert series[k_max]["p50"] <= series[k_min]["p50"] + 1e-9
    # ... and saturate: the largest k is not much better end-to-end than
    # the regime-equivalent default
    assert series[k_max]["e2e"] >= series[k_mid]["e2e"] * 0.7
    # (paper bullet 3) model size grows with k
    assert series[k_max]["size"] > series[K_VALUES[1]]["size"]

    k100 = FactorJoinMethod(FactorJoinConfig(n_bins=8, seed=0))
    k100.fit(stats_ctx.database)
    query = max(stats_ctx.workload, key=lambda q: q.num_tables())
    benchmark(lambda: k100.estimate(query))
