"""A table: an ordered set of equal-length columns."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.data.column import Column
from repro.errors import DataError, SchemaError


class Table:
    """In-memory table. Columns are accessed by name via ``table[name]``."""

    def __init__(self, name: str, columns: Iterable[Column]):
        self.name = name
        self._columns: dict[str, Column] = {}
        n = None
        for col in columns:
            if col.name in self._columns:
                raise SchemaError(f"table {name!r}: duplicate column {col.name!r}")
            if n is None:
                n = len(col)
            elif len(col) != n:
                raise DataError(
                    f"table {name!r}: column {col.name!r} has {len(col)} rows, "
                    f"expected {n}")
            self._columns[col.name] = col
        self._nrows = n or 0
        # lazy value->row-index multimap for content-based row matching;
        # built once per (immutable) table, see row_locations()
        self._row_locations: dict[tuple, list] | None = None

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_dict(cls, name: str, data: dict[str, object],
                  null_masks: dict[str, object] | None = None) -> "Table":
        """Build a table from ``{column_name: values}``."""
        null_masks = null_masks or {}
        cols = [Column(cname, values, null_mask=null_masks.get(cname))
                for cname, values in data.items()]
        return cls(name, cols)

    # -- basic protocol --------------------------------------------------------

    def __len__(self) -> int:
        return self._nrows

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns

    def __getitem__(self, column_name: str) -> Column:
        try:
            return self._columns[column_name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {column_name!r}; "
                f"columns: {sorted(self._columns)}") from None

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={self._nrows}, cols={list(self._columns)})"

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    @property
    def columns(self) -> list[Column]:
        return list(self._columns.values())

    # -- row operations --------------------------------------------------------

    def take(self, indices_or_mask) -> "Table":
        """Row subset as a new table."""
        return Table(self.name, [c.take(indices_or_mask) for c in self.columns])

    def head(self, n: int) -> "Table":
        return self.take(np.arange(min(n, self._nrows)))

    def concat(self, other: "Table") -> "Table":
        """Append ``other``'s rows (schema must match exactly)."""
        if other.column_names != self.column_names:
            raise SchemaError(
                f"cannot concat into table {self.name!r}: column mismatch "
                f"{self.column_names} vs {other.column_names}")
        return Table(self.name, [self[c].concat(other[c])
                                 for c in self.column_names])

    def sample(self, n: int, rng: np.random.Generator) -> "Table":
        """Uniform random sample of ``n`` rows without replacement."""
        n = min(n, self._nrows)
        idx = rng.choice(self._nrows, size=n, replace=False)
        return self.take(np.sort(idx))

    def row_tuples(self) -> "list[tuple]":
        """Rows as hashable tuples (NULLs become None) — multiset identity
        for incremental deletion.  ``tolist()`` converts each column in C
        rather than per-element numpy indexing; both sides of a deletion
        match go through this, so the tuples compare consistently."""
        parts = []
        for col in self.columns:
            values = col.values.tolist()
            if col.has_nulls:
                values = [None if null else value for null, value
                          in zip(col.null_mask.tolist(), values)]
            parts.append(values)
        return list(zip(*parts)) if parts else []

    def row_locations(self) -> dict[tuple, list]:
        """Value → row-index multimap for content-based row matching.

        Built lazily, exactly once per table *instance* (tables are
        immutable, so the map never goes stale), and shared by every
        consumer of the matching pass against that instance:
        ``remove_rows`` on the database view and TrueScan's ``delete``
        hold the *same* table object right after fit, so the second
        matching pass reuses the first's map instead of re-scanning the
        table.  Derived tables (the results of ``concat`` /
        ``remove_rows``) start cold and rebuild on their first match —
        the amortization is per instance, so matching is O(batch) after
        one O(table) build per table version, not per pass.  Indices
        per row tuple are ascending, matching the historical
        first-occurrence-wins deletion order.  The map is not pickled
        (see ``__getstate__``) — it is a cache, not state.
        """
        if self._row_locations is None:
            locations: dict[tuple, list] = {}
            for i, row in enumerate(self.row_tuples()):
                locations.setdefault(row, []).append(i)
            self._row_locations = locations
        return self._row_locations

    def deletion_mask(self, rows: "Table",
                      strict: bool = True) -> np.ndarray:
        """Boolean keep-mask removing one occurrence per row of ``rows``.

        Matching is O(batch) dictionary lookups against
        :meth:`row_locations` (amortized: the map is built once per
        table, not once per batch) instead of the previous full-row
        multiset scan of the whole table per batch.  With ``strict``, a
        row that is not present raises :class:`~repro.errors.DataError`
        *before* anything is removed; without it, absent rows are
        ignored (the post-reload shell case — see
        ``FactorJoin.__getstate__``).
        """
        if rows.column_names != self.column_names:
            raise SchemaError(
                f"cannot delete from table {self.name!r}: column mismatch "
                f"{self.column_names} vs {rows.column_names}")
        pending: dict[tuple, int] = {}
        for row in rows.row_tuples():
            pending[row] = pending.get(row, 0) + 1
        locations = self.row_locations()
        drop: list[int] = []
        missing = 0
        first_missing = None
        for row, count in pending.items():
            available = locations.get(row, ())
            matched = min(count, len(available))
            # first `matched` occurrences, never mutating the shared map
            drop.extend(available[:matched])
            if matched < count:
                missing += count - matched
                if first_missing is None:
                    first_missing = row
        if missing and strict:
            raise DataError(
                f"cannot delete from table {self.name!r}: {missing} "
                f"row(s) not present (first: {first_missing!r})")
        keep = np.ones(self._nrows, dtype=bool)
        if drop:
            keep[np.asarray(drop, dtype=np.intp)] = False
        return keep

    def remove_rows(self, rows: "Table", strict: bool = True) -> "Table":
        """New table with one occurrence of each row of ``rows`` removed
        (see :meth:`deletion_mask` for matching semantics and cost)."""
        return self.take(self.deletion_mask(rows, strict=strict))

    # -- persistence ------------------------------------------------------------

    def __getstate__(self):
        """Pickle without the row-locations cache: it is derived data,
        and artifacts must stay model-sized, not index-sized."""
        state = dict(self.__dict__)
        state["_row_locations"] = None
        return state

    def __setstate__(self, state):
        """Restore, tolerating pickles written before the cache existed."""
        self.__dict__.update(state)
        self.__dict__.setdefault("_row_locations", None)
