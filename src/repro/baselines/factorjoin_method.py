"""Adapter exposing :class:`repro.core.FactorJoin` as a CardEstMethod."""

from __future__ import annotations

from repro.baselines.base import CardEstMethod, MethodCharacteristics
from repro.core.estimator import FactorJoin, FactorJoinConfig
from repro.data.database import Database
from repro.sql.query import Query


class FactorJoinMethod(CardEstMethod):
    name = "FactorJoin"
    characteristics = MethodCharacteristics(
        uses_sampling=True, uses_machine_learning=True,
        uses_query_information=True, uses_binning=True, uses_bound=True,
        effective=True, efficient=True, small_model_size=True,
        fast_training=True, scalable_with_joins=True,
        generalizes_to_new_queries=True, supports_cyclic_join=True)

    def __init__(self, config: FactorJoinConfig | None = None, **kwargs):
        super().__init__()
        self._config = config if config is not None else FactorJoinConfig(
            **kwargs)
        self.model: FactorJoin | None = None

    def _fit(self, database: Database, workload=None) -> None:
        if workload and self._config.workload is None:
            # optional workload-aware bin budgets (Section 4.2)
            self._config.workload = workload
        self.model = FactorJoin(self._config).fit(database)

    def estimate(self, query: Query) -> float:
        return self.model.estimate(query)

    def estimate_subplans(self, query: Query,
                          min_tables: int = 1) -> dict[frozenset, float]:
        return self.model.estimate_subplans(query, min_tables=min_tables)

    def open_session(self, query: Query):
        """The wrapped model's prepared session (progressive sub-plan
        probing) rather than the generic memoized one."""
        return self.model.open_session(query)

    def capabilities(self):
        """The fitted model's capabilities under this method's name."""
        from dataclasses import replace

        return replace(self.model.capabilities(), name=self.name)

    def _supports_delete(self) -> bool:
        return (self.model is not None
                and self.model.capabilities().supports_delete)

    def model_size_bytes(self) -> int:
        return self.model.model_size_bytes()

    def update(self, table_name: str, new_rows=None,
               deleted_rows=None) -> None:
        self.model.update(table_name, new_rows, deleted_rows=deleted_rows)
