"""Synthetic IMDB-like database (paper Section 6.1, Table 2 right column).

Shape matches the real IMDB snapshot JOB runs on: 21 tables whose 36 join
keys form 11 equivalent key groups (movie, person, company, keyword, kind,
info-type, company-type, role, character, link-type, comp-cast-type),
string columns for LIKE predicates, and the ``movie_link`` table enabling
self joins of ``title`` and cyclic alias graphs.
"""

from __future__ import annotations

import numpy as np

from repro.data import (
    Column,
    ColumnSchema,
    Database,
    DatabaseSchema,
    DataType,
    JoinRelation,
    Table,
    TableSchema,
)
from repro.utils import resolve_rng
from repro.workloads import generators as gen

INT, STR = DataType.INT, DataType.STRING


def _t(name: str, keys: list[str],
       attrs: list[tuple[str, DataType]]) -> TableSchema:
    cols = [ColumnSchema(k, INT, is_key=True) for k in keys]
    cols += [ColumnSchema(a, dt) for a, dt in attrs]
    return TableSchema(name, cols)


def imdb_schema() -> DatabaseSchema:
    tables = [
        _t("title", ["id", "kind_id"],
           [("title", STR), ("production_year", INT), ("season_nr", INT)]),
        _t("name", ["id"],
           [("name", STR), ("gender", INT), ("name_pcode", INT)]),
        _t("char_name", ["id"], [("name", STR)]),
        _t("company_name", ["id"],
           [("name", STR), ("country_code", INT)]),
        _t("company_type", ["id"], [("kind", INT)]),
        _t("kind_type", ["id"], [("kind", INT)]),
        _t("info_type", ["id"], [("info", INT)]),
        _t("role_type", ["id"], [("role", INT)]),
        _t("link_type", ["id"], [("link", INT)]),
        _t("comp_cast_type", ["id"], [("kind", INT)]),
        _t("keyword", ["id"], [("keyword", STR)]),
        _t("cast_info", ["movie_id", "person_id", "person_role_id",
                         "role_id"],
           [("nr_order", INT)]),
        _t("movie_companies", ["movie_id", "company_id", "company_type_id"],
           [("note", STR)]),
        _t("movie_info", ["movie_id", "info_type_id"],
           [("info", STR)]),
        _t("movie_info_idx", ["movie_id", "info_type_id"],
           [("info", INT)]),
        _t("movie_keyword", ["movie_id", "keyword_id"], []),
        _t("movie_link", ["movie_id", "linked_movie_id", "link_type_id"],
           []),
        _t("complete_cast", ["movie_id", "subject_id", "status_id"], []),
        _t("aka_title", ["movie_id", "kind_id"],
           [("title", STR), ("production_year", INT)]),
        _t("aka_name", ["person_id"], [("name", STR)]),
        _t("person_info", ["person_id", "info_type_id"],
           [("info", STR)]),
    ]
    joins = [
        # movie group
        JoinRelation("title", "id", "cast_info", "movie_id"),
        JoinRelation("title", "id", "movie_companies", "movie_id"),
        JoinRelation("title", "id", "movie_info", "movie_id"),
        JoinRelation("title", "id", "movie_info_idx", "movie_id"),
        JoinRelation("title", "id", "movie_keyword", "movie_id"),
        JoinRelation("title", "id", "movie_link", "movie_id"),
        JoinRelation("title", "id", "movie_link", "linked_movie_id"),
        JoinRelation("title", "id", "complete_cast", "movie_id"),
        JoinRelation("title", "id", "aka_title", "movie_id"),
        # person group
        JoinRelation("name", "id", "cast_info", "person_id"),
        JoinRelation("name", "id", "aka_name", "person_id"),
        JoinRelation("name", "id", "person_info", "person_id"),
        # dimension groups
        JoinRelation("company_name", "id", "movie_companies", "company_id"),
        JoinRelation("company_type", "id", "movie_companies",
                     "company_type_id"),
        JoinRelation("keyword", "id", "movie_keyword", "keyword_id"),
        JoinRelation("kind_type", "id", "title", "kind_id"),
        JoinRelation("kind_type", "id", "aka_title", "kind_id"),
        JoinRelation("info_type", "id", "movie_info", "info_type_id"),
        JoinRelation("info_type", "id", "movie_info_idx", "info_type_id"),
        JoinRelation("info_type", "id", "person_info", "info_type_id"),
        JoinRelation("role_type", "id", "cast_info", "role_id"),
        JoinRelation("char_name", "id", "cast_info", "person_role_id"),
        JoinRelation("link_type", "id", "movie_link", "link_type_id"),
        JoinRelation("comp_cast_type", "id", "complete_cast", "subject_id"),
        JoinRelation("comp_cast_type", "id", "complete_cast", "status_id"),
    ]
    return DatabaseSchema(tables, joins)


def build_imdb_database(scale: float = 1.0, seed: int = 0) -> Database:
    rng = resolve_rng(seed)
    n_title = max(60, int(5000 * scale))
    n_name = max(80, int(7000 * scale))
    n_char = max(50, int(4000 * scale))
    n_company = max(30, int(2000 * scale))
    n_keyword = max(30, int(1500 * scale))
    n_cast = max(150, int(22000 * scale))
    n_mc = max(80, int(8000 * scale))
    n_mi = max(100, int(14000 * scale))
    n_mi_idx = max(60, int(7000 * scale))
    n_mk = max(80, int(9000 * scale))
    n_ml = max(30, int(1200 * scale))
    n_cc = max(30, int(2000 * scale))
    n_aka_t = max(30, int(1500 * scale))
    n_aka_n = max(40, int(2500 * scale))
    n_pi = max(80, int(8000 * scale))

    def dim(name: str, n: int, attr: str) -> Table:
        return Table(name, [Column("id", np.arange(n)),
                            Column(attr, np.arange(n) % max(2, n // 2))])

    kind_type = dim("kind_type", 7, "kind")
    info_type = dim("info_type", 40, "info")
    company_type = dim("company_type", 4, "kind")
    role_type = dim("role_type", 12, "role")
    link_type = dim("link_type", 18, "link")
    comp_cast_type = dim("comp_cast_type", 4, "kind")

    title_perm = rng.permutation(n_title)
    name_perm = rng.permutation(n_name)
    title_hot = np.empty(n_title, dtype=np.int64)
    title_hot[title_perm] = np.arange(n_title, 0, -1)

    # heavily-referenced titles skew recent: production-year filters
    # correlate with join-key degree (the paper's attribute correlation)
    year = gen.correlated_int(rng, title_hot, 0.6, 1920, 2023)
    year_null = rng.random(n_title) < 0.05
    title = Table("title", [
        Column("id", np.arange(n_title)),
        Column("kind_id", gen.categorical(rng, n_title, 7)),
        Column("title", gen.titles(rng, n_title)),
        Column("production_year", year, null_mask=year_null),
        Column("season_nr", gen.correlated_int(rng, title_hot, 0.4,
                                               0, 30)),
    ])

    name = Table("name", [
        Column("id", np.arange(n_name)),
        Column("name", gen.titles(rng, n_name)),
        Column("gender", gen.categorical(rng, n_name, 3)),
        Column("name_pcode", gen.categorical(rng, n_name, 26)),
    ])

    char_name = Table("char_name", [
        Column("id", np.arange(n_char)),
        Column("name", gen.titles(rng, n_char)),
    ])
    company_name = Table("company_name", [
        Column("id", np.arange(n_company)),
        Column("name", gen.titles(rng, n_company)),
        Column("country_code", gen.categorical(rng, n_company, 60)),
    ])
    keyword = Table("keyword", [
        Column("id", np.arange(n_keyword)),
        Column("keyword", gen.words(rng, n_keyword, 2, 4)),
    ])

    ci_movie, _ = gen.zipf_fk(rng, n_cast, n_title, a=1.2, perm=title_perm)
    ci_person, _ = gen.zipf_fk(rng, n_cast, n_name, a=1.25, perm=name_perm)
    ci_role_null = rng.random(n_cast) < 0.35
    ci_char, _ = gen.zipf_fk(rng, n_cast, n_char, a=1.3)
    cast_info = Table("cast_info", [
        Column("movie_id", ci_movie),
        Column("person_id", ci_person),
        Column("person_role_id", ci_char, null_mask=ci_role_null),
        Column("role_id", gen.categorical(rng, n_cast, 12)),
        Column("nr_order", gen.skewed_int(rng, n_cast, 1, 100, a=1.6)),
    ])

    mc_movie, _ = gen.zipf_fk(rng, n_mc, n_title, a=1.25, perm=title_perm)
    mc_company, _ = gen.zipf_fk(rng, n_mc, n_company, a=1.15)
    movie_companies = Table("movie_companies", [
        Column("movie_id", mc_movie),
        Column("company_id", mc_company),
        Column("company_type_id", gen.categorical(rng, n_mc, 4)),
        Column("note", gen.titles(rng, n_mc)),
    ])

    mi_movie, _ = gen.zipf_fk(rng, n_mi, n_title, a=1.2, perm=title_perm)
    movie_info = Table("movie_info", [
        Column("movie_id", mi_movie),
        Column("info_type_id", gen.categorical(rng, n_mi, 40)),
        Column("info", gen.words(rng, n_mi, 2, 5)),
    ])

    mix_movie, _ = gen.zipf_fk(rng, n_mi_idx, n_title, a=1.2, perm=title_perm)
    movie_info_idx = Table("movie_info_idx", [
        Column("movie_id", mix_movie),
        Column("info_type_id", gen.categorical(rng, n_mi_idx, 40)),
        Column("info", gen.skewed_int(rng, n_mi_idx, 1, 10, a=1.3)),
    ])

    mk_movie, _ = gen.zipf_fk(rng, n_mk, n_title, a=1.2, perm=title_perm)
    mk_keyword, _ = gen.zipf_fk(rng, n_mk, n_keyword, a=1.2)
    movie_keyword = Table("movie_keyword", [
        Column("movie_id", mk_movie),
        Column("keyword_id", mk_keyword),
    ])

    ml_movie, _ = gen.zipf_fk(rng, n_ml, n_title, a=1.15, perm=title_perm)
    ml_linked, _ = gen.zipf_fk(rng, n_ml, n_title, a=1.15, perm=title_perm)
    movie_link = Table("movie_link", [
        Column("movie_id", ml_movie),
        Column("linked_movie_id", ml_linked),
        Column("link_type_id", gen.categorical(rng, n_ml, 18)),
    ])

    cc_movie, _ = gen.zipf_fk(rng, n_cc, n_title, a=1.2, perm=title_perm)
    complete_cast = Table("complete_cast", [
        Column("movie_id", cc_movie),
        Column("subject_id", gen.categorical(rng, n_cc, 4)),
        Column("status_id", gen.categorical(rng, n_cc, 4)),
    ])

    at_movie, _ = gen.zipf_fk(rng, n_aka_t, n_title, a=1.2, perm=title_perm)
    at_year = gen.date_column(rng, n_aka_t, start=1920, end=2023)
    aka_title = Table("aka_title", [
        Column("movie_id", at_movie),
        Column("kind_id", gen.categorical(rng, n_aka_t, 7)),
        Column("title", gen.titles(rng, n_aka_t)),
        Column("production_year", at_year),
    ])

    an_person, _ = gen.zipf_fk(rng, n_aka_n, n_name, a=1.2, perm=name_perm)
    aka_name = Table("aka_name", [
        Column("person_id", an_person),
        Column("name", gen.titles(rng, n_aka_n)),
    ])

    pi_person, _ = gen.zipf_fk(rng, n_pi, n_name, a=1.2, perm=name_perm)
    person_info = Table("person_info", [
        Column("person_id", pi_person),
        Column("info_type_id", gen.categorical(rng, n_pi, 40)),
        Column("info", gen.words(rng, n_pi, 2, 5)),
    ])

    return Database(imdb_schema(), [
        title, name, char_name, company_name, company_type, kind_type,
        info_type, role_type, link_type, comp_cast_type, keyword, cast_info,
        movie_companies, movie_info, movie_info_idx, movie_keyword,
        movie_link, complete_cast, aka_title, aka_name, person_info,
    ])


def build_imdb_job(scale: float = 1.0, seed: int = 0,
                   n_queries: int = 113, n_templates: int = 33,
                   max_tables: int = 6):
    """Database + a JOB-style workload (113 queries / 33 templates,
    including cyclic templates, self joins of ``title``, and LIKE filters)."""
    from repro.workloads.benchmark import Benchmark
    from repro.workloads.querygen import QueryGenerator

    database = build_imdb_database(scale=scale, seed=seed)
    qgen = QueryGenerator(database, seed=seed + 1, like_fraction=0.35)
    templates = qgen.sample_templates(
        n_templates, max_tables=max_tables, cyclic_fraction=0.2,
        self_join_fraction=0.1)
    workload = qgen.generate_workload(templates, n_queries,
                                      max_predicates=13)
    return Benchmark("IMDB-JOB", database, workload)
