"""Versioned on-disk persistence of fitted estimators.

FactorJoin's split between an expensive offline phase and a sub-millisecond
online phase (paper Sections 3.3 and 4) only pays off if the offline result
is durable: fit once, serve forever.  An *artifact* is a directory holding

- ``model.pkl`` — the pickled fitted estimator (``FactorJoin`` or any
  :class:`~repro.baselines.base.CardEstMethod`), and
- ``manifest.json`` — human-readable metadata: format version, model kind,
  a schema fingerprint, the fit configuration, fit time, model size, and a
  SHA-256 checksum of the pickle.

``load_model`` verifies the checksum and format version before unpickling,
and optionally the schema fingerprint against the database the caller
intends to serve, so a stale artifact fails loudly instead of silently
producing estimates for the wrong schema.
"""

from __future__ import annotations

import dataclasses
import datetime
import gzip
import hashlib
import json
import pickle
from pathlib import Path

from repro.data.schema import DatabaseSchema
from repro.errors import ArtifactError

#: Written by this build.  Version 2 adds the optional ``encoding`` field
#: (``"gzip"``): the pickle bytes on disk are gzip-compressed and
#: decompressed transparently on load.  Version-1 artifacts (no
#: ``encoding``) are still read.
FORMAT_VERSION = 2
SUPPORTED_FORMAT_VERSIONS = (1, 2)

MANIFEST_NAME = "manifest.json"
MODEL_NAME = "model.pkl"

#: Gzip level for ``save_model(..., compress=True)``: 6 is the zlib
#: default — pickled numpy statistics compress well above it only
#: marginally, and load-time decompression stays cheap.
GZIP_LEVEL = 6


def schema_fingerprint(schema: DatabaseSchema) -> str:
    """Stable hash of a database schema (tables, columns, keys, joins).

    Only declarations enter the hash — not data — so incremental inserts
    (Section 4.3) keep the fingerprint stable while a schema change breaks
    it, which is exactly when a persisted model must not be reused.
    """
    desc = {
        "tables": [
            {
                "name": name,
                "columns": [
                    {"name": c.name, "dtype": c.dtype.name, "is_key": c.is_key}
                    for c in schema.table(name).columns
                ],
            }
            for name in sorted(schema.table_names)
        ],
        "joins": sorted(
            [rel.left_table, rel.left_column, rel.right_table,
             rel.right_column]
            for rel in schema.join_relations
        ),
    }
    blob = json.dumps(desc, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def _json_safe(value):
    """Best-effort conversion of config values to JSON (repr as fallback)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _json_safe(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def _model_schema(model) -> DatabaseSchema | None:
    """The schema a fitted model was trained against, if discoverable."""
    try:
        db = getattr(model, "database", None) or getattr(model, "_db", None)
    except Exception:
        db = None
    if db is None:
        inner = getattr(model, "model", None)  # CardEstMethod wrappers
        if inner is not None and inner is not model:
            return _model_schema(inner)
        return None
    return getattr(db, "schema", None)


def save_model(model, path: str | Path, name: str | None = None,
               extra_metadata: dict | None = None,
               compress: bool = False) -> Path:
    """Persist a fitted model to the directory ``path`` and return it.

    The directory is created if needed; an existing artifact there is
    overwritten atomically enough for single-writer use (pickle first,
    manifest last, so a partially written artifact never verifies).
    With ``compress``, the pickle is gzip-compressed on disk and the
    manifest records ``"encoding": "gzip"`` — :func:`load_model`
    decompresses transparently.  The SHA-256 and ``model_bytes`` always
    describe the bytes actually on disk, so integrity checks never need
    to decompress.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    blob = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
    if compress:
        # mtime=0 keeps equal pickles compressing to equal bytes, so the
        # recorded sha256 is reproducible across saves
        blob = gzip.compress(blob, compresslevel=GZIP_LEVEL, mtime=0)
    (path / MODEL_NAME).write_bytes(blob)

    schema = _model_schema(model)
    config = getattr(model, "config", None)
    manifest = {
        "format_version": FORMAT_VERSION,
        "kind": f"{type(model).__module__}.{type(model).__qualname__}",
        "name": name or getattr(model, "name", type(model).__name__),
        "created_at": datetime.datetime.now(
            datetime.timezone.utc).isoformat(),
        "model_bytes": len(blob),
        "sha256": hashlib.sha256(blob).hexdigest(),
        "schema_hash": schema_fingerprint(schema) if schema else None,
        "fit_seconds": float(getattr(model, "fit_seconds", 0.0)),
        "config": _json_safe(config) if config is not None else None,
    }
    if compress:
        manifest["encoding"] = "gzip"
    if extra_metadata:
        manifest["extra"] = _json_safe(extra_metadata)
    (path / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
    return path


def read_manifest(path: str | Path) -> dict:
    """Parse and sanity-check an artifact's manifest."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ArtifactError(f"no artifact at {path}: missing {MANIFEST_NAME}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"corrupt manifest at {manifest_path}: {exc}")
    version = manifest.get("format_version")
    if version not in SUPPORTED_FORMAT_VERSIONS:
        raise ArtifactError(
            f"artifact {path} has format version {version!r}; "
            f"this build reads versions {SUPPORTED_FORMAT_VERSIONS}")
    encoding = manifest.get("encoding")
    if encoding not in (None, "gzip"):
        raise ArtifactError(
            f"artifact {path} uses unknown encoding {encoding!r}; "
            f"this build reads plain and gzip artifacts")
    return manifest


def load_model(path: str | Path,
               expected_schema: DatabaseSchema | None = None):
    """Load a model artifact, verifying integrity before unpickling.

    Raises :class:`~repro.errors.ArtifactError` when the artifact is
    missing, its checksum does not match, or (with ``expected_schema``)
    it was fitted against a different schema.
    """
    path = Path(path)
    manifest = read_manifest(path)
    if manifest.get("ensemble_version") is not None:
        # ensemble artifacts (one sub-artifact per shard, lazily loaded)
        # live in the sharding layer; registries and `repro serve --load`
        # reach them through this dispatch unchanged
        from repro.shard.artifact import load_ensemble

        return load_ensemble(path, expected_schema=expected_schema)
    model_path = path / MODEL_NAME
    if not model_path.is_file():
        raise ArtifactError(f"artifact {path} is missing {MODEL_NAME}")
    blob = model_path.read_bytes()
    digest = hashlib.sha256(blob).hexdigest()
    if digest != manifest.get("sha256"):
        raise ArtifactError(
            f"artifact {path} failed its integrity check: {MODEL_NAME} "
            f"hashes to {digest[:12]}… but the manifest records "
            f"{str(manifest.get('sha256'))[:12]}…")
    if expected_schema is not None and manifest.get("schema_hash"):
        expected = schema_fingerprint(expected_schema)
        if expected != manifest["schema_hash"]:
            raise ArtifactError(
                f"artifact {path} was fitted against a different schema "
                f"(fingerprint {manifest['schema_hash'][:12]}… vs expected "
                f"{expected[:12]}…); refit instead of loading")
    if manifest.get("encoding") == "gzip":
        try:
            blob = gzip.decompress(blob)
        except Exception as exc:
            raise ArtifactError(
                f"artifact {path} failed to decompress: {exc}")
    try:
        return pickle.loads(blob)
    except Exception as exc:
        raise ArtifactError(f"artifact {path} failed to unpickle: {exc}")
