"""Drift detection unit mechanics: query templating, Page-Hinkley
scoring and attribution, key caps, lossless snapshot merging, the
worker federator's restart/unreachable semantics, and report/metric
family shapes."""

import math

import pytest

from repro.obs.drift import (
    MIN_SAMPLES,
    OVERFLOW_KEY,
    DriftFederator,
    DriftMonitor,
    DriftReport,
    NullDriftMonitor,
    build_report,
    empty_drift_snapshot,
    merge_drift_snapshot,
    template_of,
)
from repro.sql import parse_query


class FakeClock:
    def __init__(self, at=0.0):
        self.at = at

    def __call__(self):
        return self.at

    def advance(self, seconds):
        self.at += seconds


def monitor(clock=None, **kw):
    return DriftMonitor(clock=clock or FakeClock(), **kw)


def feed(mon, n, value, model="m", step=1.0, **sample_kw):
    """Absorb ``n`` samples at ``value``, advancing the fake clock."""
    for _ in range(n):
        mon._clock.advance(step)
        mon.absorb(mon.sample_of(model, "qerror", value, **sample_kw))


class TestTemplateOf:
    def test_alias_spelling_does_not_change_the_fingerprint(self):
        a = parse_query("SELECT COUNT(*) FROM A a, B b "
                        "WHERE a.id = b.aid AND a.x > 1")
        b = parse_query("SELECT COUNT(*) FROM A lhs, B rhs "
                        "WHERE lhs.id = rhs.aid AND lhs.x > 5")
        assert template_of(a) == template_of(b)
        assert template_of(a) == "A,B|A.id=B.aid"

    def test_filters_excluded_but_join_shape_included(self):
        two = parse_query("SELECT COUNT(*) FROM A a, B b "
                          "WHERE a.id = b.aid")
        three = parse_query("SELECT COUNT(*) FROM A a, B b, C c "
                            "WHERE a.id = b.aid AND b.cid = c.id")
        assert template_of(two) != template_of(three)

    def test_single_table_template_is_just_the_table(self):
        q = parse_query("SELECT COUNT(*) FROM A a WHERE a.x > 1")
        assert template_of(q) == "A"


class TestDetection:
    def test_stable_stream_stays_stable(self):
        mon = monitor()
        feed(mon, 200, 1.2)
        report = mon.report()
        assert report.counts == {"stable": 1, "drifting": 0,
                                 "critical": 0}
        assert report.max_score() < mon.threshold

    def test_shift_is_flagged_and_attributed(self):
        mon = monitor()
        feed(mon, 100, 1.2, shards=(0,), tables=("A",), template="A")
        feed(mon, 100, 1.2, shards=(1,), tables=("B",), template="B")
        stable = mon.report()
        assert stable.counts["drifting"] == stable.counts["critical"] == 0
        onset_at = mon.now()
        feed(mon, 40, 10.0, shards=(0,), tables=("A",), template="A")
        report = mon.report()
        flagged = {(e["scope"], e["key"]) for e in report.entries
                   if e["status"] == "critical"}
        assert ("shard", "0") in flagged
        assert ("table", "A") in flagged
        assert ("shard", "1") not in flagged
        assert ("table", "B") not in flagged
        worst = report.top(1)[0]
        assert worst["status"] == "critical"
        assert worst["onset"] is not None
        assert worst["onset"] > onset_at
        assert worst["onset_age_seconds"] >= 0.0

    def test_min_samples_gates_a_lone_offender(self):
        mon = monitor()
        feed(mon, MIN_SAMPLES - 1, 1e6)
        assert all(e["status"] == "stable"
                   for e in mon.report().entries)

    def test_onset_resets_when_score_recovers(self):
        mon = monitor()
        feed(mon, 50, 1.2)
        feed(mon, 40, 10.0)
        key = ("model", "m", "", "qerror")
        assert mon._keys[key].onset is not None
        # a long calm stretch pulls mhat back toward mmin
        feed(mon, 2000, 1.2)
        assert mon._keys[key].onset is None

    def test_magnitude_compares_recent_window_to_stream(self):
        # windows are (label, seconds); keep "recent" at 60s so the
        # 1s-per-sample feed leaves the stable prefix outside it
        mon = monitor(windows=(("1m", 60.0), ("1h", 3600.0)))
        feed(mon, 300, 1.0)
        feed(mon, 59, 8.0)
        entry = mon.report().entries[0]
        # the recent window is bucket-quantized, so one stable sample
        # may ride along at the boundary
        assert 7.0 < entry["recent"] <= 8.0
        assert entry["magnitude"] > 2.0


class TestKeyCap:
    def test_past_cap_templates_collapse_into_overflow(self):
        mon = monitor(max_keys=4)
        for i in range(10):
            mon.absorb(mon.sample_of("m", "qerror", 2.0,
                                     template=f"T{i}"),
                       scopes=("template",))
        snapshot = mon.snapshot()
        names = {key[2] for key in snapshot["keys"]}
        assert OVERFLOW_KEY in names
        assert snapshot["dropped_keys"] == 6
        report = mon.report()
        assert report.dropped_keys == 6
        assert sum(e["samples"] for e in report.entries) == 10

    def test_cap_is_per_scope(self):
        mon = monitor(max_keys=2)
        sample = mon.sample_of("m", "qerror", 2.0, shards=(0, 1),
                               tables=("A", "B"), template="t")
        mon.absorb(sample)
        assert mon.snapshot()["dropped_keys"] == 0


class TestMergeProperties:
    def test_disjoint_split_merges_bit_identically(self):
        """The cluster invariant: shard keys absorbed on per-shard
        monitors plus a driver monitor holding the other scopes merge
        into exactly the single-monitor snapshot."""
        clock = FakeClock()
        full = DriftMonitor(clock=clock)
        driver = DriftMonitor(clock=clock)
        workers = {0: DriftMonitor(clock=clock),
                   1: DriftMonitor(clock=clock)}
        for i in range(60):
            clock.advance(1.0)
            shard = i % 2
            value = 1.2 if i < 40 else 9.0
            sample = full.sample_of("m", "qerror", value,
                                    shards=(shard,), tables=("A",),
                                    template="A")
            full.absorb(sample)
            driver.absorb(sample, scopes=("model", "table", "template"))
            workers[shard].absorb(sample, scopes=("shard",))
        merged = merge_drift_snapshot(empty_drift_snapshot(),
                                      driver.snapshot())
        for worker in workers.values():
            merge_drift_snapshot(merged, worker.snapshot())
        assert merged == full.snapshot()

    def test_merge_is_order_independent_and_sums_colliding_keys(self):
        clock = FakeClock()
        a, b = DriftMonitor(clock=clock), DriftMonitor(clock=clock)
        feed(a, 20, 2.0)
        feed(b, 30, 4.0)
        ab = merge_drift_snapshot(
            merge_drift_snapshot(empty_drift_snapshot(), a.snapshot()),
            b.snapshot())
        ba = merge_drift_snapshot(
            merge_drift_snapshot(empty_drift_snapshot(), b.snapshot()),
            a.snapshot())
        assert ab == ba
        state = ab["keys"][("model", "m", "", "qerror")]
        assert state[1] == 50
        want_mean = (20 * math.log(2.0) + 30 * math.log(4.0)) / 50
        assert state[2] == pytest.approx(want_mean)

    def test_merge_never_mutates_the_source_snapshot(self):
        mon = monitor()
        feed(mon, 10, 2.0)
        snapshot = mon.snapshot()
        before = {key: state for key, state in snapshot["keys"].items()}
        acc = merge_drift_snapshot(empty_drift_snapshot(), snapshot)
        merge_drift_snapshot(acc, snapshot)
        assert snapshot["keys"] == before


class TestFederator:
    def _snapshot(self, n=10, value=2.0):
        mon = monitor()
        feed(mon, n, value)
        return mon.snapshot()

    def test_restart_folds_previous_incarnation_into_baseline(self):
        fed = DriftFederator()
        fed.absorb(0, 1, self._snapshot(n=10))
        fed.absorb(0, 1, self._snapshot(n=15))  # rescrape, same gen
        key = ("model", "m", "", "qerror")
        assert fed.merged()["keys"][key][1] == 15
        fed.absorb(0, 2, self._snapshot(n=5))  # worker restarted
        assert fed.merged()["keys"][key][1] == 20

    def test_unreachable_keeps_last_known_and_forget_drops(self):
        fed = DriftFederator()
        fed.absorb(3, 1, self._snapshot(n=7))
        fed.mark_unreachable(3)
        key = ("model", "m", "", "qerror")
        assert fed.merged()["keys"][key][1] == 7
        fed.forget(3)
        assert fed.merged() == empty_drift_snapshot()


class TestReportShapes:
    def test_to_json_and_families(self):
        mon = monitor()
        feed(mon, 50, 1.2, shards=(0,))
        feed(mon, 40, 10.0, shards=(0,))
        report = mon.report(top=3)
        body = report.to_json()
        assert set(body) == {"counts", "samples", "dropped_keys", "top",
                             "keys"}
        assert body["samples"] == 180  # 90 model-scope + 90 shard-scope
        assert len(body["top"]) <= 3
        families = dict((name, (kind, samples)) for kind, name, _h,
                        samples in report.families())
        assert set(families) == {"repro_drift_score", "repro_drift_state",
                                 "repro_drift_samples_total"}
        kind, samples = families["repro_drift_state"]
        assert kind == "gauge"
        for labels, value in samples:
            assert set(labels) == {"model", "scope", "key", "metric"}
            assert value in (0.0, 1.0, 2.0)

    def test_empty_report_is_quiet(self):
        report = DriftReport([])
        assert report.max_score() == 0.0
        assert report.families() == []
        assert report.to_json()["counts"]["critical"] == 0

    def test_build_report_statuses_follow_thresholds(self):
        snapshot = empty_drift_snapshot()
        snapshot["keys"] = {
            ("model", "m", "", "qerror"): ({0: (20, 0.0)}, 20, 0.0,
                                           9.0, 0.0, None),
            ("model", "m2", "", "qerror"): ({0: (20, 0.0)}, 20, 0.0,
                                            17.0, 0.0, None),
        }
        report = build_report(snapshot, now=10.0)
        by_model = {e["model"]: e["status"] for e in report.entries}
        assert by_model == {"m": "drifting", "m2": "critical"}

    def test_null_monitor_is_inert(self):
        null = NullDriftMonitor()
        null.absorb(null.sample_of("m", "qerror", 100.0))
        assert null.snapshot() == empty_drift_snapshot()
        assert null.report().entries == []
        assert null.collect() == []
