"""Command-line interface: ``python -m repro <command>``.

Commands
--------
summary    print the Table 2-style statistics of a synthetic benchmark
compare    fit a method line-up and print the end-to-end comparison table
fit        fit FactorJoin — or, with ``--shards N``, a sharded ensemble
           fitted in parallel — and persist the artifact with ``--save``;
           ``--distributed`` fits shards in worker processes that save
           their own sub-artifacts (the driver only merges statistics),
           ``--compress`` gzips the pickles on disk
estimate   fit (or ``--load``) FactorJoin and estimate one SQL query;
           ``--save`` persists the fitted model so the fit cost is paid once
serve      publish fitted models (single or ensemble artifacts) behind the
           JSON HTTP estimation service; ``--workers N`` serves ensembles
           through shard worker processes (repro.cluster), ``--swap-dir``
           enables the per-shard hot-swap endpoint, ``--warm`` replays a
           recorded workload into the caches before traffic is admitted,
           ``--record`` logs served queries for the next warm start,
           ``--snapshot`` persists/restores the cache beside the artifact
worker     run one shard worker as a TCP server (``--listen HOST:PORT``);
           a driver started with worker addresses serves its ensemble
           through these instead of spawning local processes —
           ``--store DIR`` attaches the content-addressed artifact store
           the driver publishes shard sub-artifacts into
plan       choose a join order for one SQL query and print it as plan
           hints (pg_hint_plan or JSON dialect); estimates come from a
           locally fitted/loaded model, or — with ``--url`` — from a
           running ``repro serve`` instance over ``POST /v1/subplans``
e2e        end-to-end plan quality over the benchmark workload: plans
           chosen under the estimator vs. the truecard oracle, both
           costed under true cardinalities; prints P-error summary,
           plan agreement rate, and the worst-regressing queries
alerts     print the alert rules of a running ``repro serve`` instance
           with their current ok/pending/firing state (GET /v1/alerts)
debug-bundle  dump the flight recorder's worst-offender debug bundles
           from a running instance (GET /v1/debug/bundles)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.api import build_explain_trace, coerce_query
from repro.core.estimator import FactorJoin, FactorJoinConfig
from repro.engine import CardinalityExecutor
from repro.eval.harness import (
    default_methods,
    end_to_end_table,
    make_context,
    run_end_to_end,
)
from repro.utils import format_table


def _add_benchmark_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--benchmark", choices=("stats", "imdb"),
                        default="stats")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="data size multiplier (default 0.1)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--queries", type=int, default=None,
                        help="number of workload queries")
    parser.add_argument("--max-tables", type=int, default=None,
                        help="largest join template size")


def _add_shard_args(parser: argparse.ArgumentParser) -> None:
    from repro.shard import POLICY_REGISTRY
    from repro.shard.ensemble import PARALLEL_MODES

    parser.add_argument("--shards", type=int, default=0, metavar="N",
                        help="fit a sharded ensemble of N partitions "
                             "(0 = a single unsharded model)")
    parser.add_argument("--policy", default="hash",
                        choices=sorted(POLICY_REGISTRY),
                        help="sharding policy (with --shards)")
    parser.add_argument("--parallel", default="process",
                        choices=PARALLEL_MODES,
                        help="shard fit executor (with --shards)")


def _make_model(args):
    """A FactorJoin or ShardedFactorJoin per the parsed arguments."""
    from repro.shard import ShardedFactorJoin

    config = FactorJoinConfig(n_bins=args.bins,
                              table_estimator=args.estimator,
                              seed=args.seed)
    shards = getattr(args, "shards", 0)
    if shards:
        return ShardedFactorJoin(config, n_shards=shards,
                                 policy=args.policy,
                                 parallel=args.parallel)
    return FactorJoin(config)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FactorJoin reproduction: benchmarks and estimation")
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser("summary", help="benchmark statistics")
    _add_benchmark_args(p_summary)
    p_summary.add_argument("--cardinalities", action="store_true",
                           help="also compute the true cardinality range")

    p_compare = sub.add_parser("compare", help="end-to-end comparison")
    _add_benchmark_args(p_compare)
    p_compare.add_argument("--bins", type=int, default=8)

    p_fit = sub.add_parser(
        "fit", help="fit a model (or sharded ensemble) and save it")
    _add_benchmark_args(p_fit)
    p_fit.add_argument("--bins", type=int, default=8)
    p_fit.add_argument("--estimator", default="bayescard",
                       choices=("bayescard", "sampling", "truescan",
                                "histogram1d"))
    _add_shard_args(p_fit)
    p_fit.add_argument("--save", metavar="DIR", required=True,
                       help="artifact directory to write")
    p_fit.add_argument("--name", default=None,
                       help="artifact name recorded in the manifest")
    p_fit.add_argument("--distributed", action="store_true",
                       help="fit shards in worker processes (with "
                            "--shards): each worker saves its own "
                            "sub-artifact and ships statistics back, so "
                            "the driver never materializes shard models")
    p_fit.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker process count for --distributed "
                            "(default: one per shard)")
    p_fit.add_argument("--compress", action="store_true",
                       help="gzip-compress the saved pickle(s); loads "
                            "decompress transparently")

    p_estimate = sub.add_parser("estimate", help="estimate one query")
    _add_benchmark_args(p_estimate)
    p_estimate.add_argument("sql", help="SELECT COUNT(*) query text")
    p_estimate.add_argument("--bins", type=int, default=8)
    p_estimate.add_argument("--estimator", default="bayescard",
                            choices=("bayescard", "sampling", "truescan",
                                     "histogram1d"))
    p_estimate.add_argument("--true", action="store_true",
                            help="also compute the exact cardinality")
    p_estimate.add_argument("--explain", action="store_true",
                            help="print the explain trace (bound mode, "
                                 "key groups and bins touched, shard "
                                 "pruning)")
    p_estimate.add_argument("--save", metavar="DIR", default=None,
                            help="persist the fitted model artifact here")
    p_estimate.add_argument("--load", metavar="DIR", default=None,
                            help="load a saved model artifact instead of "
                                 "fitting (skips the offline phase)")

    p_serve = sub.add_parser(
        "serve", help="run the JSON HTTP estimation service")
    _add_benchmark_args(p_serve)
    p_serve.add_argument("--bins", type=int, default=8)
    p_serve.add_argument("--estimator", default="bayescard",
                         choices=("bayescard", "sampling", "truescan",
                                  "histogram1d"))
    p_serve.add_argument("--load", metavar="[NAME=]DIR", action="append",
                         default=None,
                         help="publish a saved artifact (repeatable); "
                              "without it, fit on the benchmark and "
                              "publish as 'default'")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8765)
    p_serve.add_argument("--cache-size", type=int, default=1024,
                         help="LRU estimate cache entries per model")
    p_serve.add_argument("--warm", metavar="WORKLOAD", default=None,
                         help="pre-populate both cache levels before "
                              "admitting traffic: a recorded JSONL / "
                              "SQL-per-line workload file, or the literal "
                              "'benchmark' to warm from the generated "
                              "benchmark workload")
    p_serve.add_argument("--record", metavar="PATH", default=None,
                         help="log every served query to this JSONL "
                              "workload file (replay later via --warm)")
    p_serve.add_argument("--no-subplan-reuse", action="store_true",
                         help="disable the cross-request sub-plan table "
                              "(whole-query caching only)")
    p_serve.add_argument("--snapshot", metavar="PATH", default=None,
                         help="cache snapshot file: restored at startup "
                              "when present (fingerprint-checked, no "
                              "workload replay) and written back on "
                              "shutdown")
    p_serve.add_argument("--snapshot-dir", metavar="DIR", default=None,
                         help="enable POST /snapshot, confined to this "
                              "directory (defaults to --snapshot's "
                              "directory when that flag is given; "
                              "otherwise the endpoint stays disabled)")
    _add_shard_args(p_serve)
    p_serve.add_argument("--workers", type=int, default=None, metavar="N",
                         help="serve ensembles through N shard worker "
                              "processes (repro.cluster): probes fan out "
                              "across workers, crashes restart and retry "
                              "transparently; in-process serving without "
                              "this flag")
    p_serve.add_argument("--swap-dir", metavar="DIR", default=None,
                         help="enable POST /v1/swap (per-shard hot-swap), "
                              "confined to refreshed shard artifacts "
                              "inside this directory; disabled otherwise")
    p_serve.add_argument("--trace-log", metavar="FILE", default=None,
                         help="export every finished request trace as "
                              "one JSON line to this file (span tree "
                              "with driver and worker-side spans)")
    p_serve.add_argument("--trace-log-max-bytes", type=int, default=None,
                         metavar="N",
                         help="roll the trace log over before it "
                              "exceeds N bytes, keeping one predecessor "
                              "file (FILE.1); unbounded without it")
    p_serve.add_argument("--slow-ms", type=float, default=100.0,
                         metavar="MS",
                         help="requests at or above this duration also "
                              "land in the GET /v1/traces slow-query "
                              "ring (default 100)")
    p_serve.add_argument("--alert-log", metavar="FILE", default=None,
                         help="export every alert firing/resolved "
                              "transition as one JSON line to this file")
    p_serve.add_argument("--alert-log-max-bytes", type=int, default=None,
                         metavar="N",
                         help="roll the alert log over before it "
                              "exceeds N bytes, keeping one predecessor "
                              "file (FILE.1); unbounded without it")
    p_serve.add_argument("--alert-interval", type=float, default=5.0,
                         metavar="SECONDS",
                         help="background alert-evaluation period "
                              "(default 5)")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log one line per HTTP request")

    p_profile = sub.add_parser(
        "profile", help="capture a stack profile from a running "
                        "'repro serve' instance (GET /v1/profile)")
    p_profile.add_argument("--url", default="http://127.0.0.1:8765",
                           help="base URL of the serving instance "
                                "(default matches 'repro serve')")
    p_profile.add_argument("--seconds", type=float, default=1.0,
                           help="sampling duration (server clamps to 30)")
    p_profile.add_argument("--hz", type=float, default=99.0,
                           help="samples per second (server clamps to "
                                "1..999)")
    p_profile.add_argument("--worker", type=int, default=None,
                           help="profile this shard worker of a "
                                "cluster-backed model instead of the "
                                "serving process")
    p_profile.add_argument("--model", default=None,
                           help="model whose worker pool --worker "
                                "refers to (needed only when several "
                                "models are served)")
    p_profile.add_argument("--json", action="store_true",
                           help="print the full JSON body instead of "
                                "bare collapsed-stack text")

    p_alerts = sub.add_parser(
        "alerts", help="show alert rules and states of a running "
                       "'repro serve' instance (GET /v1/alerts)")
    p_alerts.add_argument("--url", default="http://127.0.0.1:8765",
                          help="base URL of the serving instance "
                               "(default matches 'repro serve')")
    p_alerts.add_argument("--json", action="store_true",
                          help="print the full JSON body instead of the "
                               "rule table")

    p_debug = sub.add_parser(
        "debug-bundle", help="dump worst-offender debug bundles from a "
                             "running 'repro serve' instance "
                             "(GET /v1/debug/bundles)")
    p_debug.add_argument("--url", default="http://127.0.0.1:8765",
                         help="base URL of the serving instance "
                              "(default matches 'repro serve')")
    p_debug.add_argument("--kind", choices=("qerror", "latency"),
                         default=None,
                         help="only this offense kind (both by default)")
    p_debug.add_argument("--limit", type=int, default=None, metavar="N",
                         help="at most N bundles (all kept by default)")
    p_debug.add_argument("--output", "-o", metavar="FILE", default=None,
                         help="write the JSON body to FILE instead of "
                              "stdout")

    p_plan = sub.add_parser(
        "plan", help="choose a join order for one query and print the "
                     "plan hints")
    _add_benchmark_args(p_plan)
    p_plan.add_argument("sql", help="SELECT COUNT(*) query text")
    p_plan.add_argument("--bins", type=int, default=8)
    p_plan.add_argument("--estimator", default="bayescard",
                        choices=("bayescard", "sampling", "truescan",
                                 "histogram1d"))
    p_plan.add_argument("--load", metavar="DIR", default=None,
                        help="load a saved model artifact instead of "
                             "fitting on the benchmark")
    p_plan.add_argument("--url", metavar="URL", default=None,
                        help="plan against a running 'repro serve' "
                             "instance (POST /v1/subplans) instead of a "
                             "local model")
    p_plan.add_argument("--model", default=None,
                        help="served model name (with --url)")
    p_plan.add_argument("--dialect", default="pg_hint_plan",
                        choices=("pg_hint_plan", "json"),
                        help="hint text dialect (default pg_hint_plan)")
    p_plan.add_argument("--cost-model", default="c_out",
                        choices=("c_out", "c_mm"),
                        help="plan cost model (default c_out)")

    p_e2e = sub.add_parser(
        "e2e", help="end-to-end plan quality vs the truecard oracle")
    _add_benchmark_args(p_e2e)
    p_e2e.add_argument("--bins", type=int, default=8)
    p_e2e.add_argument("--estimator", default="bayescard",
                       choices=("bayescard", "sampling", "truescan",
                                "histogram1d"))
    p_e2e.add_argument("--cost-model", default="c_out",
                       choices=("c_out", "c_mm"),
                       help="plan cost model (default c_out)")
    p_e2e.add_argument("--worst", type=int, default=5, metavar="N",
                       help="how many worst-P-error queries to list")
    p_e2e.add_argument("--json", action="store_true",
                       help="print the full machine-readable report "
                            "(the BENCH_plan.json shape)")

    p_worker = sub.add_parser(
        "worker", help="run one shard worker as a TCP server")
    p_worker.add_argument("--listen", metavar="HOST:PORT",
                          default="127.0.0.1:0",
                          help="bind address (port 0 picks a free port; "
                               "the bound address is printed on startup)")
    p_worker.add_argument("--store", metavar="DIR", default=None,
                          help="attach the content-addressed artifact "
                               "store at DIR (a path shared with the "
                               "driver); without it the worker can only "
                               "load shard paths visible on its own "
                               "filesystem")
    p_worker.add_argument("--max-frame", type=int, default=None,
                          metavar="BYTES",
                          help="largest accepted RPC frame (default 1 GiB)")
    return parser


def cmd_fit(args) -> int:
    context = make_context(args.benchmark, scale=args.scale, seed=args.seed,
                           n_queries=args.queries,
                           max_tables=args.max_tables)
    if args.distributed:
        from repro.cluster import fit_distributed

        if not args.shards:
            raise SystemExit("repro fit: --distributed needs --shards N")
        config = FactorJoinConfig(n_bins=args.bins,
                                  table_estimator=args.estimator,
                                  seed=args.seed)
        summary = fit_distributed(
            config, context.database, args.save, n_shards=args.shards,
            policy=args.policy, workers=args.workers, name=args.name,
            compress=args.compress)
        per_shard = ", ".join(f"{s:.2f}s"
                              for s in summary["shard_fit_seconds"])
        print(f"fitted {summary['n_shards']}-shard {summary['policy']} "
              f"ensemble across {summary['workers']} worker processes in "
              f"{summary['fit_seconds']:.2f}s (per-shard fits: "
              f"{per_shard})")
        if summary["fallback"]:
            print(f"note: worker processes unavailable, fitted inline "
                  f"({summary['fallback']})")
        if summary["local_refits"]:
            print(f"note: {summary['local_refits']} shard(s) refitted in "
                  f"the driver after worker crashes")
        print(f"saved artifact to {summary['path']}")
        return 0
    model = _make_model(args)
    model.fit(context.database)
    model.save(args.save, name=args.name, compress=args.compress)
    if args.shards:
        per_shard = ", ".join(f"{s:.2f}s" for s in model.shard_fit_seconds)
        print(f"fitted {args.shards}-shard {args.policy} ensemble in "
              f"{model.fit_seconds:.2f}s (per-shard fits: {per_shard}; "
              f"executor: {args.parallel})")
        if model.parallel_fallback:
            print(f"note: parallel fit fell back to serial "
                  f"({model.parallel_fallback})")
    else:
        print(f"fitted model in {model.fit_seconds:.2f}s")
    print(f"saved artifact to {args.save}")
    return 0


def cmd_summary(args) -> int:
    context = make_context(args.benchmark, scale=args.scale, seed=args.seed,
                           n_queries=args.queries,
                           max_tables=args.max_tables)
    summary = context.benchmark.summary(with_cardinalities=args.cardinalities)
    rows = [[key, str(value)] for key, value in summary.items()]
    print(format_table(["statistic", "value"], rows,
                       title=f"{context.benchmark.name} summary"))
    return 0


def cmd_compare(args) -> int:
    context = make_context(args.benchmark, scale=args.scale, seed=args.seed,
                           n_queries=args.queries,
                           max_tables=args.max_tables)
    methods = default_methods(args.benchmark, seed=args.seed,
                              n_bins=args.bins)
    results = run_end_to_end(context, methods)
    print(end_to_end_table(
        results, title=f"End-to-end comparison on {context.benchmark.name}"))
    return 0


def cmd_estimate(args) -> int:
    query = coerce_query(args.sql)

    # the benchmark context (synthetic data + workload) is only built when
    # something needs it — a pure --load run must cost artifact-load time,
    # not data-generation time
    context = None

    def ctx():
        nonlocal context
        if context is None:
            context = make_context(args.benchmark, scale=args.scale,
                                   seed=args.seed, n_queries=args.queries,
                                   max_tables=args.max_tables)
        return context

    if args.load:
        from repro.serve import load_model

        expected = ctx().database.schema if args.true else None
        # load_model handles single-model and ensemble artifacts alike
        model = load_model(args.load, expected_schema=expected)
        print(f"loaded model from {args.load} (fit skipped)")
    else:
        model = FactorJoin(FactorJoinConfig(
            n_bins=args.bins, table_estimator=args.estimator,
            seed=args.seed))
        model.fit(ctx().database)
    if args.save:
        model.save(args.save)
        print(f"saved model to {args.save}")
    estimate = model.estimate(query)
    print(f"estimate: {estimate:,.1f}")
    if args.true:
        true = CardinalityExecutor(ctx().database).cardinality(query)
        ratio = estimate / max(true, 1.0)
        print(f"true:     {true:,.1f}   (est/true {ratio:.3f})")
    if getattr(args, "explain", False):
        import json

        trace = build_explain_trace(model, query)
        print(json.dumps(trace.to_json(), indent=2, sort_keys=True))
    return 0


def build_service(args):
    """Assemble (and optionally warm) the EstimationService a ``serve``
    invocation will run.

    Split from :func:`cmd_serve` so tests can exercise model loading,
    warming, and recording without binding a socket.
    """
    from repro.obs import (
        AlertEngine,
        JsonlEventExporter,
        JsonlTraceExporter,
        TraceLog,
        Tracer,
        default_alert_rules,
    )
    from repro.serve import (
        DEFAULT_MODEL,
        EstimationService,
        load_model,
        read_manifest,
    )

    exporter = None
    if getattr(args, "trace_log", None):
        exporter = JsonlTraceExporter(
            args.trace_log,
            max_bytes=getattr(args, "trace_log_max_bytes", None))
        print(f"exporting request traces to {args.trace_log}")
    tracer = Tracer(
        log=TraceLog(slow_threshold_ms=getattr(args, "slow_ms", 100.0)),
        exporter=exporter)
    alerts = None
    if getattr(args, "alert_log", None):
        alert_exporter = JsonlEventExporter(
            args.alert_log,
            max_bytes=getattr(args, "alert_log_max_bytes", None))
        alerts = AlertEngine(rules=default_alert_rules(),
                             exporter=alert_exporter)
        print(f"exporting alert events to {args.alert_log}")
    service = EstimationService(
        cache_size=args.cache_size,
        subplan_reuse=not getattr(args, "no_subplan_reuse", False),
        tracer=tracer, alerts=alerts)
    workers = getattr(args, "workers", None)

    def publish(name: str, path: str, metadata: dict) -> None:
        manifest = read_manifest(path)
        if workers and manifest.get("ensemble_version") is not None:
            from repro.cluster import ClusterModel

            model = ClusterModel.from_artifact(path, workers=workers)
            cluster = model.pool.describe()
            note = (f" (inline fallback: {model.pool.fallback})"
                    if model.pool.fallback else "")
            print(f"serving {name!r} through "
                  f"{cluster['n_workers']} shard worker processes{note}")
        else:
            if workers:
                print(f"note: {path!r} is a single-model artifact; "
                      f"--workers applies to ensembles, serving "
                      f"in-process")
            model = load_model(path)
        service.register(name, model, metadata=metadata)

    if args.load:
        seen: dict[str, str] = {}
        for spec in args.load:
            name, sep, path = spec.partition("=")
            if not sep:
                name, path = Path(spec).stem or DEFAULT_MODEL, spec
            if name in seen:
                raise SystemExit(
                    f"repro serve: --load name {name!r} used by both "
                    f"{seen[name]!r} and {path!r}; disambiguate with "
                    f"NAME=DIR")
            seen[name] = path
            manifest = read_manifest(path)
            # the artifact checksum doubles as the cache-snapshot
            # fingerprint (see EstimationService.save_snapshot)
            fingerprint = (manifest.get("sha256")
                           or manifest.get("shared_sha256"))
            publish(name, path, metadata={"fingerprint": fingerprint,
                                          "artifact": path})
    elif workers:
        # no artifact given: fit a sharded ensemble on the benchmark,
        # save it beside the server's working data, and serve it through
        # worker processes (the artifact is the cluster's unit of state)
        import tempfile

        if not args.shards:
            raise SystemExit("repro serve: --workers without --load "
                             "needs --shards N to fit an ensemble first")
        model = _make_model(args)
        context = make_context(args.benchmark, scale=args.scale,
                               seed=args.seed, n_queries=args.queries,
                               max_tables=args.max_tables)
        model.fit(context.database)
        artifact_dir = tempfile.mkdtemp(prefix="repro-serve-ensemble-")
        model.save(artifact_dir, name=DEFAULT_MODEL)
        print(f"fitted ensemble saved to {artifact_dir}")
        manifest = read_manifest(artifact_dir)
        publish(DEFAULT_MODEL, artifact_dir,
                metadata={"benchmark": args.benchmark,
                          "fingerprint": manifest.get("shared_sha256"),
                          "artifact": artifact_dir,
                          "fit_seconds": model.fit_seconds})
    else:
        model = _make_model(args)
        context = make_context(args.benchmark, scale=args.scale,
                               seed=args.seed, n_queries=args.queries,
                               max_tables=args.max_tables)
        model.fit(context.database)
        service.register(DEFAULT_MODEL, model,
                         metadata={"benchmark": args.benchmark,
                                   "fit_seconds": model.fit_seconds})
    if getattr(args, "snapshot", None) and Path(args.snapshot).is_file():
        from repro.errors import ReproError

        try:
            summary = service.restore_snapshot(args.snapshot)
            print(f"restored cache snapshot {args.snapshot} "
                  f"({summary['entries']} query entries, "
                  f"{summary['subplans']} sub-plan entries)")
        except ReproError as exc:
            # a stale snapshot (or an ambiguous default model) must
            # refuse, not kill the server; the shutdown path overwrites
            # it with a fresh one
            print(f"cache snapshot refused: {exc}")
    if getattr(args, "warm", None):
        summary = warm_from_spec(service, args)
        print(f"warmed {summary['entries']} workload entries in "
              f"{summary['seconds']:.2f}s "
              f"({summary['warmed_subplan_maps']} sub-plan maps, "
              f"{summary['warmed_estimates']} plain estimates"
              + (f", {len(summary['errors'])} skipped"
                 if summary["errors"] else "") + ")")
    if getattr(args, "record", None):
        service.start_recording(args.record)
        print(f"recording served queries to {args.record}")
    return service


def warm_from_spec(service, args) -> dict:
    """Resolve ``--warm`` (a workload file, or the literal ``benchmark``
    for the generated benchmark workload) and replay it into the caches
    before any socket is bound."""
    from repro.serve import generated_workload, load_workload, warm_service

    if args.warm == "benchmark":
        entries = generated_workload(args.benchmark, scale=args.scale,
                                     seed=args.seed,
                                     n_queries=args.queries,
                                     max_tables=args.max_tables)
    else:
        entries = load_workload(args.warm)
    return warm_service(service, entries)


def cmd_serve(args) -> int:
    from repro.serve import make_server

    service = build_service(args)
    snapshot_dir = args.snapshot_dir
    if snapshot_dir is None and args.snapshot:
        snapshot_dir = str(Path(args.snapshot).resolve().parent)
    server = make_server(service, host=args.host, port=args.port,
                         verbose=args.verbose, snapshot_dir=snapshot_dir,
                         swap_dir=args.swap_dir)
    host, port = server.server_address[:2]
    service.start_alert_ticker(
        interval=getattr(args, "alert_interval", 5.0))
    print(f"serving models {service.registry.names()} "
          f"on http://{host}:{port}")
    print("endpoints: POST /v1/estimate /v1/subplans /v1/plan /v1/update "
          "/v1/explain /v1/swap /v1/feedback · GET /v1/models /v1/stats "
          "/v1/traces /v1/slo /v1/drift /v1/alerts /v1/debug/bundles "
          "/v1/profile /metrics /health "
          "(legacy: /estimate /estimate_batch /update /warmup /models "
          "/stats)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
        service.stop_alert_ticker()
        if getattr(args, "snapshot", None):
            from repro.errors import ReproError

            try:
                summary = service.save_snapshot(args.snapshot)
                print(f"saved cache snapshot to {args.snapshot} "
                      f"({summary['entries']} query entries, "
                      f"{summary['subplans']} sub-plan entries)")
            except ReproError as exc:  # e.g. ambiguous default model
                print(f"cache snapshot not saved: {exc}")
        # flush buffered JSONL records: a SIGINT must not drop the last
        # traces or alert events still sitting in libc's buffers
        exporter = getattr(service.tracer, "exporter", None)
        if exporter is not None:
            exporter.close()
        alert_exporter = getattr(service.alerts, "exporter", None)
        if alert_exporter is not None:
            alert_exporter.close()
        # cluster models own worker processes; stop them with the server
        for name in service.registry.names():
            try:
                model = service.registry.get(name)
            except Exception:
                continue
            close = getattr(model, "close", None)
            if callable(close):
                close()
    return 0


def cmd_plan(args) -> int:
    from repro.optimizer.cost import COST_MODELS
    from repro.plan import (
        LocalCardinalityGenerator,
        RemoteCardinalityGenerator,
        plan_query,
    )

    query = coerce_query(args.sql)
    if args.url:
        generator = RemoteCardinalityGenerator(args.url, model=args.model)
        source = args.url
    elif args.load:
        from repro.serve import load_model

        generator = LocalCardinalityGenerator(model=load_model(args.load))
        source = args.load
    else:
        model = FactorJoin(FactorJoinConfig(
            n_bins=args.bins, table_estimator=args.estimator,
            seed=args.seed))
        context = make_context(args.benchmark, scale=args.scale,
                               seed=args.seed, n_queries=args.queries,
                               max_tables=args.max_tables)
        model.fit(context.database)
        generator = LocalCardinalityGenerator(model=model)
        source = f"{args.benchmark} fit"
    decision = plan_query(query, generator,
                          COST_MODELS[args.cost_model])
    print(f"join order ({args.cost_model} cost "
          f"{decision.estimated_cost:,.1f}, estimates from {source}):")
    print(decision.plan.render())
    print("hints:")
    print(decision.hint_text(args.dialect))
    return 0


def cmd_e2e(args) -> int:
    import json

    from repro.optimizer.cost import COST_MODELS
    from repro.plan import LocalCardinalityGenerator, PlanHarness

    context = make_context(args.benchmark, scale=args.scale,
                           seed=args.seed, n_queries=args.queries,
                           max_tables=args.max_tables)
    model = FactorJoin(FactorJoinConfig(
        n_bins=args.bins, table_estimator=args.estimator,
        seed=args.seed))
    model.fit(context.database)
    harness = PlanHarness(context.database,
                          cost_model=COST_MODELS[args.cost_model])
    report = harness.run(LocalCardinalityGenerator(model=model),
                         context.workload, name="factorjoin")
    if args.json:
        print(json.dumps(report.to_json(worst=args.worst), indent=2,
                         sort_keys=True))
        return 0
    summary = report.p_error_summary()
    rows = [
        ["queries", str(len(report.verdicts))],
        ["unsupported", str(report.num_unsupported)],
        ["plan agreement", f"{report.agreement_rate:.1%}"],
        ["P-error mean", f"{summary['mean']:.3f}"],
        ["P-error median", f"{summary['median']:.3f}"],
        ["P-error p90", f"{summary['p90']:.3f}"],
        ["P-error max", f"{summary['max']:.3f}"],
    ]
    print(format_table(
        ["metric", "value"], rows,
        title=f"Plan quality on {context.benchmark.name} "
              f"({args.cost_model})"))
    worst = [v for v in report.worst(args.worst) if v.p_error > 1.0]
    if worst:
        print("\nworst queries (P-error > 1):")
        for verdict in worst:
            print(f"  {verdict.p_error:8.3f}  {verdict.sql}")
    else:
        print("\nevery chosen plan matched the truecard-oracle cost.")
    return 0


def cmd_profile(args) -> int:
    import urllib.parse
    import urllib.request

    params = {"seconds": args.seconds, "hz": args.hz}
    if args.worker is not None:
        params["worker"] = args.worker
    if args.model:
        params["model"] = args.model
    if not args.json:
        params["format"] = "collapsed"
    url = (args.url.rstrip("/") + "/v1/profile?"
           + urllib.parse.urlencode(params))
    # the server blocks for the sampling duration; leave headroom for a
    # forwarded worker profile on a loaded host
    with urllib.request.urlopen(url,
                                timeout=args.seconds + 60.0) as response:
        body = response.read().decode("utf-8", "replace")
    print(body, end="" if body.endswith("\n") else "\n")
    return 0


def cmd_alerts(args) -> int:
    import json
    import urllib.request

    url = args.url.rstrip("/") + "/v1/alerts"
    with urllib.request.urlopen(url, timeout=30.0) as response:
        body = response.read().decode("utf-8", "replace")
    if args.json:
        print(body, end="" if body.endswith("\n") else "\n")
        return 0
    payload = json.loads(body)
    rows = payload.get("alerts", [])
    if not rows:
        print("no alert rules configured")
        return 0
    print(f"{'RULE':<28} {'STATE':<8} {'VALUE':>10} {'THRESHOLD':>10} "
          f"SEVERITY")
    for row in rows:
        value = row.get("value")
        shown = "-" if value is None else f"{value:.3f}"
        print(f"{row['name']:<28} {row['state']:<8} {shown:>10} "
              f"{row['threshold']:>10.3f} {row['severity']}")
    firing = payload.get("firing", 0)
    print(f"{firing} firing")
    return 0


def cmd_debug_bundle(args) -> int:
    import urllib.parse
    import urllib.request

    params = {}
    if args.kind:
        params["kind"] = args.kind
    if args.limit is not None:
        params["limit"] = args.limit
    url = args.url.rstrip("/") + "/v1/debug/bundles"
    if params:
        url += "?" + urllib.parse.urlencode(params)
    with urllib.request.urlopen(url, timeout=30.0) as response:
        body = response.read().decode("utf-8", "replace")
    if args.output:
        Path(args.output).write_text(
            body if body.endswith("\n") else body + "\n",
            encoding="utf-8")
        print(f"wrote debug bundles to {args.output}")
        return 0
    print(body, end="" if body.endswith("\n") else "\n")
    return 0


def cmd_worker(args) -> int:
    from repro.cluster.net import DEFAULT_MAX_FRAME, WorkerServer, \
        parse_address

    host, port = parse_address(args.listen)
    store = None
    if args.store:
        from repro.serve import LocalArtifactStore

        store = LocalArtifactStore(args.store)
    server = WorkerServer(
        host, port, store=store,
        max_frame=args.max_frame or DEFAULT_MAX_FRAME)
    bound_host, bound_port = server.address
    # drivers (and the benchmarks) parse this line to learn the port
    # when --listen asked for port 0
    print(f"worker listening on {bound_host}:{bound_port}"
          + (f" (store: {args.store})" if args.store else ""),
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("worker shutting down")
    finally:
        server.stop()
    return 0


COMMANDS = {
    "summary": cmd_summary,
    "compare": cmd_compare,
    "fit": cmd_fit,
    "estimate": cmd_estimate,
    "serve": cmd_serve,
    "plan": cmd_plan,
    "e2e": cmd_e2e,
    "profile": cmd_profile,
    "alerts": cmd_alerts,
    "debug-bundle": cmd_debug_bundle,
    "worker": cmd_worker,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
