"""Uniform table samples with scale factors.

Used by the sampling-based single-table estimator (Section 3.3), the MSCN
sample bitmaps, and the WJSample baseline's starting tables.
"""

from __future__ import annotations

import numpy as np

from repro.data.table import Table
from repro.engine.filter import evaluate_predicate
from repro.sql.predicates import Predicate
from repro.utils import resolve_rng


class TableSample:
    """A uniform row sample of one table plus its scale-up factor."""

    def __init__(self, table: Table, rate: float | None = None,
                 max_rows: int | None = None, rng=None):
        rng = resolve_rng(rng)
        n = len(table)
        if rate is None and max_rows is None:
            raise ValueError("specify rate or max_rows")
        target = n
        if rate is not None:
            target = max(1, int(round(n * rate)))
        if max_rows is not None:
            target = min(target, max_rows)
        target = min(target, n)
        if n == 0:
            self.rows = table
            self.scale = 1.0
        else:
            idx = np.sort(rng.choice(n, size=target, replace=False))
            self.rows = table.take(idx)
            self.scale = n / target
        self.source_rows = n

    def __len__(self) -> int:
        return len(self.rows)

    def selectivity(self, pred: Predicate) -> float:
        """Fraction of sample rows matching ``pred``."""
        if len(self.rows) == 0:
            return 0.0
        mask = evaluate_predicate(pred, self.rows)
        return float(mask.mean())

    def estimate_count(self, pred: Predicate) -> float:
        """Estimated number of source rows matching ``pred``."""
        return self.selectivity(pred) * self.source_rows

    def bitmap(self, pred: Predicate) -> np.ndarray:
        """Boolean match vector over the sample (MSCN featurization)."""
        return evaluate_predicate(pred, self.rows)
