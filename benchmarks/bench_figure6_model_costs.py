"""Figure 6: model size and training time across methods (both benchmarks).

Paper: FactorJoin's model is ~100x smaller and ~100x faster to train than
the learned data-driven methods (FLAT: 160x size, 240x training vs
FactorJoin on STATS), while traditional methods' models are negligible.

Shape checks: FactorJoin's model is much smaller than the data-driven
baseline's and its training much faster, while staying within a small
factor of the traditional methods.
"""

from repro.utils import format_table


def test_figure6_model_size_and_training(benchmark, stats_ctx,
                                         stats_results):
    methods = stats_ctx.methods
    rows = []
    for name, method in methods.items():
        rows.append([
            name,
            f"{method.model_size_bytes() / 1e6:.3f} MB",
            f"{method.fit_seconds:.3f} s",
        ])
    print()
    print(format_table(["Method", "Model size", "Training time"], rows,
                       title="Figure 6: model size & training time "
                             "(STATS-CEB)"))

    fj = methods["FactorJoin"]
    dd = methods["DataDriven"]
    # data-driven methods store denormalization-scale statistics; at the
    # paper's data scale the gap is ~100x, at laptop scale table sizes and
    # model sizes converge, so we assert the direction only
    assert dd.model_size_bytes() > fj.model_size_bytes()

    benchmark(lambda: fj.model_size_bytes())
