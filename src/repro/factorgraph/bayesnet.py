"""Tree-structured Bayesian network over discrete codes.

This is the probabilistic engine behind the BayesCard single-table estimator
(paper Section 3.3 / [70]): structure = Chow-Liu tree, parameters = per-edge
joint count matrices, inference = exact message passing with per-node *soft
evidence* vectors (the probability each code of a node satisfies the filter
predicate).

``marginal(target, evidence)`` returns the unnormalized vector
``P(target = x, evidence)`` — multiplied by the table row count this is
exactly the quantity FactorJoin's factor nodes need
(``P(key bin | Q) * |Q|``, Equation 1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import InferenceError, NotFittedError
from repro.factorgraph.chow_liu import chow_liu_tree, joint_histogram


class TreeBayesNet:
    """Discrete tree BN learned from an integer code matrix."""

    def __init__(self, smoothing: float = 0.1):
        self._smoothing = smoothing
        self._fitted = False

    # -- training ----------------------------------------------------------------

    def fit(self, code_matrix: np.ndarray, cardinalities: list[int],
            root: int = 0) -> "TreeBayesNet":
        code_matrix = np.asarray(code_matrix, dtype=np.int64)
        self.n_nodes = code_matrix.shape[1]
        self.cardinalities = list(cardinalities)
        self.n_rows = code_matrix.shape[0]
        self.edges = chow_liu_tree(code_matrix, self.cardinalities, root=root)
        self._adjacency: dict[int, list[int]] = {
            i: [] for i in range(self.n_nodes)}
        self._joints: dict[tuple[int, int], np.ndarray] = {}
        for parent, child in self.edges:
            joint = joint_histogram(
                code_matrix[:, parent], code_matrix[:, child],
                self.cardinalities[parent], self.cardinalities[child])
            joint += self._smoothing / joint.size
            self._joints[(parent, child)] = joint
            self._adjacency[parent].append(child)
            self._adjacency[child].append(parent)
        self._marginals = []
        for j in range(self.n_nodes):
            counts = np.bincount(code_matrix[:, j],
                                 minlength=self.cardinalities[j])
            counts = counts.astype(np.float64) + self._smoothing / max(
                1, self.cardinalities[j])
            self._marginals.append(counts / counts.sum())
        self._fitted = True
        return self

    def partial_fit(self, code_matrix: np.ndarray) -> None:
        """Incremental update: add new rows' counts (structure kept fixed).

        This mirrors the paper's Section 4.3: single-table models are updated
        in place from inserted tuples without retraining.
        """
        self._check_fitted()
        code_matrix = np.asarray(code_matrix, dtype=np.int64)
        n_new = code_matrix.shape[0]
        if n_new == 0:
            return
        for (parent, child), joint in self._joints.items():
            joint += joint_histogram(
                code_matrix[:, parent], code_matrix[:, child],
                self.cardinalities[parent], self.cardinalities[child])
        total_old = self.n_rows
        for j in range(self.n_nodes):
            counts = np.bincount(code_matrix[:, j],
                                 minlength=self.cardinalities[j]).astype(float)
            merged = self._marginals[j] * total_old + counts
            self._marginals[j] = merged / merged.sum()
        self.n_rows += n_new

    # -- inference -----------------------------------------------------------------

    def marginal(self, target: int, evidence: dict[int, np.ndarray] | None = None
                 ) -> np.ndarray:
        """Unnormalized ``P(target = x, evidence)`` for all codes ``x``.

        ``evidence[node]`` is a weight vector in [0, 1] per code of ``node``
        (1.0 everywhere == no evidence).  Exact on trees via a single
        upward pass rooted at ``target``.
        """
        self._check_fitted()
        evidence = evidence or {}
        for node, vec in evidence.items():
            if len(vec) != self.cardinalities[node]:
                raise InferenceError(
                    f"evidence vector for node {node} has length {len(vec)}, "
                    f"expected {self.cardinalities[node]}")
        message = self._collect(target, parent=None, evidence=evidence)
        result = self._marginals[target] * message
        if target in evidence:
            result = result * evidence[target]
        return result

    def probability(self, evidence: dict[int, np.ndarray]) -> float:
        """Normalized probability of the (soft) evidence."""
        if not evidence:
            return 1.0
        anchor = next(iter(evidence))
        return float(self.marginal(anchor, evidence).sum())

    def pairwise_conditional(self, parent: int, child: int) -> np.ndarray:
        """P(child | parent) matrix, composing conditionals along the tree
        path when the two nodes are not adjacent."""
        self._check_fitted()
        path = self._path(parent, child)
        if path is None:
            raise InferenceError(f"no path between nodes {parent} and {child}")
        matrix = np.eye(self.cardinalities[parent])
        for a, b in zip(path[:-1], path[1:]):
            matrix = matrix @ self._conditional(a, b)
        return matrix

    # -- internals ------------------------------------------------------------------

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("TreeBayesNet.fit was never called")

    def _conditional(self, a: int, b: int) -> np.ndarray:
        """P(b | a) for adjacent nodes, from the stored joint counts."""
        if (a, b) in self._joints:
            joint = self._joints[(a, b)]
        elif (b, a) in self._joints:
            joint = self._joints[(b, a)].T
        else:
            raise InferenceError(f"nodes {a}, {b} not adjacent in tree")
        row_sums = joint.sum(axis=1, keepdims=True)
        return np.divide(joint, row_sums, out=np.zeros_like(joint),
                         where=row_sums > 0)

    def _collect(self, node: int, parent: int | None,
                 evidence: dict[int, np.ndarray]) -> np.ndarray:
        """Product of messages flowing into ``node`` from all neighbours
        except ``parent`` (recursion depth == tree diameter, fine here)."""
        message = np.ones(self.cardinalities[node])
        for nbr in self._adjacency[node]:
            if nbr == parent:
                continue
            child_msg = self._collect(nbr, node, evidence)
            if nbr in evidence:
                child_msg = child_msg * evidence[nbr]
            message = message * (self._conditional(node, nbr) @ child_msg)
        return message

    def _path(self, a: int, b: int) -> list[int] | None:
        if a == b:
            return [a]
        stack = [(a, [a])]
        seen = {a}
        while stack:
            node, path = stack.pop()
            for nbr in self._adjacency[node]:
                if nbr in seen:
                    continue
                new_path = path + [nbr]
                if nbr == b:
                    return new_path
                seen.add(nbr)
                stack.append((nbr, new_path))
        return None
