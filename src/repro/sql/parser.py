"""Parser for the SQL subset used by the CEB/JOB-style workloads.

Grammar (case-insensitive keywords)::

    query      := SELECT COUNT(*) FROM table_list [WHERE expr] [;]
    table_list := table [AS] alias ("," table [AS] alias)*
    expr       := or_expr
    or_expr    := and_expr (OR and_expr)*
    and_expr   := unary (AND unary)*
    unary      := NOT unary | "(" expr ")" | atom
    atom       := colref "=" colref                       -- join condition
                | colref op literal                       -- comparison
                | colref BETWEEN literal AND literal
                | colref [NOT] IN "(" literal, ... ")"
                | colref [NOT] LIKE string
                | colref IS [NOT] NULL

Top-level conjuncts of the WHERE clause that compare two column references
become join conditions; every other predicate (including OR/NOT subtrees)
must reference exactly one alias and becomes part of that alias's filter.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.sql.predicates import (
    Between,
    Comparison,
    In,
    IsNull,
    Like,
    Not,
    Or,
    Predicate,
    conjoin,
)
from repro.sql.query import ColumnRef, JoinCondition, Query, TableRef

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')
      | (?P<number>-?\d+\.\d+|-?\d+)
      | (?P<op><>|!=|<=|>=|=|<|>)
      | (?P<punct>[(),;*])
      | (?P<word>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)?)
    )""",
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "count", "from", "where", "and", "or", "not", "in",
    "between", "like", "is", "null", "as",
}


class _Token:
    __slots__ = ("kind", "text")

    def __init__(self, kind: str, text: str):
        self.kind = kind
        self.text = text

    def __repr__(self) -> str:
        return f"{self.kind}:{self.text}"


def _tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            if sql[pos:].strip() == "":
                break
            raise ParseError(
                f"unexpected character at {pos}: {sql[pos:pos + 20]!r}")
        pos = match.end()
        for kind in ("string", "number", "op", "punct", "word"):
            text = match.group(kind)
            if text is not None:
                if kind == "word" and text.lower() in _KEYWORDS:
                    tokens.append(_Token("kw", text.lower()))
                else:
                    tokens.append(_Token(kind, text))
                break
    return tokens


class _JoinAtom:
    """A ``colref = colref`` atom (join condition)."""

    def __init__(self, left: ColumnRef, right: ColumnRef):
        self.left = left
        self.right = right


class _FilterAtom:
    """A filter predicate together with the alias it references."""

    def __init__(self, alias: str, predicate: Predicate):
        self.alias = alias
        self.predicate = predicate


class _AndList:
    """A flattened conjunction possibly mixing joins and filters."""

    def __init__(self, parts: list):
        self.parts: list = []
        for part in parts:
            if isinstance(part, _AndList):
                self.parts.extend(part.parts)
            else:
                self.parts.append(part)


def _unquote(text: str) -> str:
    return text[1:-1].replace("''", "'")


def _literal(tok: _Token):
    if tok.kind == "string":
        return _unquote(tok.text)
    if tok.kind == "number":
        if "." in tok.text:
            return float(tok.text)
        return int(tok.text)
    raise ParseError(f"expected literal, got {tok.text!r}")


class _Parser:
    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -----------------------------------------------------------

    def _peek(self) -> _Token | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> _Token:
        tok = self._peek()
        if tok is None:
            raise ParseError("unexpected end of query")
        self._pos += 1
        return tok

    def _expect_kw(self, word: str) -> None:
        tok = self._next()
        if tok.kind != "kw" or tok.text != word:
            raise ParseError(f"expected {word.upper()!r}, got {tok.text!r}")

    def _expect_punct(self, char: str) -> None:
        tok = self._next()
        if tok.kind != "punct" or tok.text != char:
            raise ParseError(f"expected {char!r}, got {tok.text!r}")

    def _accept_kw(self, word: str) -> bool:
        tok = self._peek()
        if tok is not None and tok.kind == "kw" and tok.text == word:
            self._pos += 1
            return True
        return False

    def _accept_punct(self, char: str) -> bool:
        tok = self._peek()
        if tok is not None and tok.kind == "punct" and tok.text == char:
            self._pos += 1
            return True
        return False

    # -- grammar -------------------------------------------------------------------

    def parse_query(self) -> Query:
        self._expect_kw("select")
        self._expect_kw("count")
        self._expect_punct("(")
        self._expect_punct("*")
        self._expect_punct(")")
        self._expect_kw("from")
        tables = self._parse_table_list()
        where = None
        if self._accept_kw("where"):
            where = self._parse_or()
        self._accept_punct(";")
        if self._peek() is not None:
            raise ParseError(
                f"trailing tokens after query: {self._peek().text!r}")
        return _build_query(tables, where)

    def _parse_table_list(self) -> list[TableRef]:
        tables = []
        while True:
            tok = self._next()
            if tok.kind != "word":
                raise ParseError(f"expected table name, got {tok.text!r}")
            table = tok.text
            alias = table
            self._accept_kw("as")
            nxt = self._peek()
            if nxt is not None and nxt.kind == "word":
                alias = self._next().text
            tables.append(TableRef(table, alias))
            if not self._accept_punct(","):
                break
        return tables

    def _parse_or(self):
        parts = [self._parse_and()]
        while self._accept_kw("or"):
            parts.append(self._parse_and())
        if len(parts) == 1:
            return parts[0]
        atoms = [_as_filter(p) for p in parts]
        aliases = {a.alias for a in atoms}
        if len(aliases) != 1:
            raise ParseError(
                f"OR branches must reference one alias, got {sorted(aliases)}")
        return _FilterAtom(atoms[0].alias, Or([a.predicate for a in atoms]))

    def _parse_and(self):
        parts = [self._parse_unary()]
        while self._accept_kw("and"):
            parts.append(self._parse_unary())
        if len(parts) == 1:
            return parts[0]
        return _AndList(parts)

    def _parse_unary(self):
        if self._accept_kw("not"):
            child = _as_filter(self._parse_unary())
            return _FilterAtom(child.alias, Not(child.predicate))
        if self._accept_punct("("):
            inner = self._parse_or()
            self._expect_punct(")")
            return inner
        return self._parse_atom()

    def _parse_atom(self):
        tok = self._next()
        if tok.kind != "word" or "." not in tok.text:
            raise ParseError(
                f"expected qualified column reference, got {tok.text!r}")
        alias, column = tok.text.split(".", 1)
        ref = ColumnRef(alias, column)
        nxt = self._peek()
        if nxt is None:
            raise ParseError(f"dangling column reference {tok.text!r}")
        if nxt.kind == "op":
            op = self._next().text
            op = "!=" if op == "<>" else op
            rhs = self._next()
            if rhs.kind == "word" and "." in rhs.text:
                r_alias, r_column = rhs.text.split(".", 1)
                if op != "=":
                    raise ParseError(
                        f"only equi-joins are supported, got {op!r}")
                return _JoinAtom(ref, ColumnRef(r_alias, r_column))
            return _FilterAtom(alias, Comparison(column, op, _literal(rhs)))
        if nxt.kind == "kw" and nxt.text == "between":
            self._next()
            low = _literal(self._next())
            self._expect_kw("and")
            high = _literal(self._next())
            return _FilterAtom(alias, Between(column, low, high))
        negated = False
        if nxt.kind == "kw" and nxt.text == "not":
            self._next()
            negated = True
            nxt = self._peek()
            if nxt is None:
                raise ParseError("dangling NOT")
        if nxt.kind == "kw" and nxt.text == "in":
            self._next()
            self._expect_punct("(")
            values = [_literal(self._next())]
            while self._accept_punct(","):
                values.append(_literal(self._next()))
            self._expect_punct(")")
            pred: Predicate = In(column, values)
            if negated:
                pred = Not(pred)
            return _FilterAtom(alias, pred)
        if nxt.kind == "kw" and nxt.text == "like":
            self._next()
            pat = self._next()
            if pat.kind != "string":
                raise ParseError("LIKE requires a string pattern")
            return _FilterAtom(alias,
                               Like(column, _unquote(pat.text), negated=negated))
        if nxt.kind == "kw" and nxt.text == "is":
            self._next()
            neg = self._accept_kw("not")
            self._expect_kw("null")
            return _FilterAtom(alias, IsNull(column, negated=neg))
        raise ParseError(f"cannot parse predicate after {tok.text!r}")


def _as_filter(part) -> _FilterAtom:
    if isinstance(part, _FilterAtom):
        return part
    if isinstance(part, _AndList):
        atoms = [_as_filter(p) for p in part.parts]
        aliases = {a.alias for a in atoms}
        if len(aliases) != 1:
            raise ParseError(
                "a parenthesized boolean expression must reference exactly "
                f"one alias, got {sorted(aliases)}")
        return _FilterAtom(atoms[0].alias,
                           conjoin([a.predicate for a in atoms]))
    raise ParseError("join conditions cannot appear inside OR / NOT")


def _build_query(tables: list[TableRef], where) -> Query:
    aliases = {t.alias for t in tables}
    joins: list[JoinCondition] = []
    filters: dict[str, list[Predicate]] = {}

    if where is None:
        parts = []
    elif isinstance(where, _AndList):
        parts = where.parts
    else:
        parts = [where]

    for part in parts:
        if isinstance(part, _JoinAtom):
            joins.append(JoinCondition(part.left, part.right))
            continue
        atom = _as_filter(part)
        if atom.alias not in aliases:
            raise ParseError(
                f"predicate references unknown alias {atom.alias!r}")
        filters.setdefault(atom.alias, []).append(atom.predicate)

    final_filters = {a: conjoin(ps) for a, ps in filters.items()}
    return Query(tables, joins, final_filters)


def parse_query(sql: str) -> Query:
    """Parse a ``SELECT COUNT(*)`` join query from SQL text."""
    parser = _Parser(_tokenize(sql))
    return parser.parse_query()
