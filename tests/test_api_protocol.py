"""Protocol conformance: every registered model family, one contract.

The capability-matrix suite instantiates every family in
:func:`repro.api.model_families` (FactorJoin under two table estimators,
the sharded ensemble, and the baselines) and verifies that *declared*
:class:`~repro.api.Capabilities` match *actual* behavior:

- all families satisfy the structural :class:`~repro.api.CardinalityModel`
  protocol;
- prepared sessions answer bit-identically to one-shot ``estimate`` /
  ``estimate_subplans``;
- ``supports_update=False`` / ``supports_delete=False`` families raise
  the taxonomy error (:class:`~repro.errors.UnsupportedOperationError`,
  code ``unsupported_operation``), and supporting families absorb a real
  batch;
- the optimizer's DP produces bit-identical plans whether it reads a
  precomputed sub-plan map or probes the session lazily.
"""

import numpy as np
import pytest

from repro.api import (
    Capabilities,
    CardinalityModel,
    EstimationSession,
    PREDICATE_CLASSES,
    build_model,
    error_code,
    model_families,
)
from repro.data import Column, Table
from repro.errors import UnsupportedOperationError
from repro.optimizer.dp import make_oracle, optimize, optimize_with_session
from repro.sql import parse_query
from tests.conftest import build_toy_db

FAMILIES = sorted(model_families())

QUERY = ("SELECT COUNT(*) FROM A a, B b, C c "
         "WHERE a.id = b.aid AND b.cid = c.id AND a.x > 1")
TWO_TABLE = "SELECT COUNT(*) FROM A a, B b WHERE a.id = b.aid"


@pytest.fixture(scope="module")
def shared_db():
    return build_toy_db(seed=3)


@pytest.fixture(scope="module", params=FAMILIES)
def family_model(request, shared_db):
    """One fitted model per registered family (module-scoped: families
    are fitted once for the whole matrix)."""
    return request.param, build_model(request.param, shared_db)


def _insert_batch(n=3, start=500):
    ids = np.arange(start, start + n)
    return Table("C", [Column("id", ids),
                       Column("z", np.ones(n, dtype=ids.dtype))])


class TestProtocolConformance:
    def test_satisfies_protocol(self, family_model):
        name, model = family_model
        assert isinstance(model, CardinalityModel), name

    def test_capabilities_are_declared_and_valid(self, family_model):
        name, model = family_model
        caps = model.capabilities()
        assert isinstance(caps, Capabilities)
        assert caps.name
        assert set(caps.predicate_classes) <= set(PREDICATE_CLASSES)
        assert caps.supports_subplans and caps.supports_sessions
        # granularity and update support must agree
        assert caps.supports_update == (caps.update_granularity
                                        == "row-batch")

    def test_estimate_and_subplans_answer(self, family_model):
        name, model = family_model
        query = parse_query(QUERY)
        assert model.estimate(query) >= 0.0
        subplans = model.estimate_subplans(query, min_tables=1)
        # singletons + pairs (a,b), (b,c) + the full join
        assert set(subplans) == {
            frozenset({"a"}), frozenset({"b"}), frozenset({"c"}),
            frozenset({"a", "b"}), frozenset({"b", "c"}),
            frozenset({"a", "b", "c"})}


class TestSessionBitIdentity:
    def test_session_matches_one_shot_estimate(self, family_model):
        name, model = family_model
        query = parse_query(QUERY)
        with model.open_session(query) as session:
            assert isinstance(session, EstimationSession)
            assert session.estimate() == model.estimate(query)

    def test_session_lattice_matches_estimate_subplans(self, family_model):
        name, model = family_model
        query = parse_query(QUERY)
        expected = model.estimate_subplans(query, min_tables=1)
        with model.open_session(query) as session:
            assert session.estimate_all(min_tables=1) == expected
            # per-probe answers equal the map entries, and repeating a
            # probe (memoized) answers identically
            for subset, value in expected.items():
                assert session.estimate_join(subset) == value
                assert session.estimate_join(subset) == value

    def test_session_rejects_foreign_aliases(self, family_model):
        name, model = family_model
        session = model.open_session(parse_query(TWO_TABLE))
        with pytest.raises(ValueError, match="not part of this"):
            session.estimate_join({"zz"})
        with pytest.raises(ValueError, match="non-empty"):
            session.estimate_join(set())


class TestCapabilityMatrix:
    """Declared capabilities must match behavior, per family."""

    def test_update_capability_matches_behavior(self, shared_db,
                                                family_model):
        name, _ = family_model
        model = build_model(name, shared_db)  # fresh: updates mutate
        caps = model.capabilities()
        if caps.supports_update:
            before = model.estimate(parse_query(TWO_TABLE))
            model.update("C", _insert_batch())
            assert model.estimate(parse_query(TWO_TABLE)) == before
        else:
            with pytest.raises(UnsupportedOperationError) as info:
                model.update("C", _insert_batch())
            assert error_code(info.value) == "unsupported_operation"

    def test_delete_capability_matches_behavior(self, shared_db,
                                                family_model):
        name, _ = family_model
        model = build_model(name, shared_db)
        caps = model.capabilities()
        batch = _insert_batch()
        if caps.supports_delete:
            # insert-then-delete round-trips the statistics
            probe = parse_query(QUERY)
            before = model.estimate(probe)
            model.update("C", batch)
            model.update("C", deleted_rows=batch)
            assert model.estimate(probe) == pytest.approx(before,
                                                          rel=1e-9)
        else:
            with pytest.raises(UnsupportedOperationError) as info:
                model.update("C", deleted_rows=batch)
            assert error_code(info.value) == "unsupported_operation"

    def test_expected_matrix_corners(self, shared_db):
        """Spot-check the matrix: exact estimators absorb both
        operations, bayescard-backed models reject deletions, static
        baselines reject both."""
        truescan = build_model("factorjoin", shared_db).capabilities()
        assert truescan.supports_update and truescan.supports_delete
        bayes = build_model("factorjoin-bayescard",
                            shared_db).capabilities()
        assert bayes.supports_update and not bayes.supports_delete
        postgres = build_model("baseline-postgres",
                               shared_db).capabilities()
        assert not postgres.supports_update
        datadriven = build_model("baseline-datadriven",
                                 shared_db).capabilities()
        assert datadriven.supports_update
        assert not datadriven.supports_delete


class TestServingGate:
    def test_service_gates_on_declared_capabilities(self, shared_db):
        """A served model without per-table supports_update/delete hooks
        (any baseline) is gated by its declared Capabilities — the
        taxonomy error fires before any batch validation or mutation."""
        from repro.serve import EstimationService

        service = EstimationService()
        service.register("pg", build_model("baseline-postgres", shared_db))
        with pytest.raises(UnsupportedOperationError,
                           match="does not support incremental"):
            service.update("C", _insert_batch())
        with pytest.raises(UnsupportedOperationError,
                           match="does not support incremental"):
            service.update("C", deleted_rows=_insert_batch())


class TestPlanConformance:
    """The ``plan`` capability row: every registered family drives the
    plan layer — cardinality injection, deterministic join ordering, and
    lossless hint round-trips."""

    def test_every_family_plans_deterministically(self, family_model):
        from repro.plan import LocalCardinalityGenerator, plan_query

        name, model = family_model
        first = plan_query(QUERY, LocalCardinalityGenerator(model=model))
        second = plan_query(QUERY,
                            LocalCardinalityGenerator(model=model))
        assert first.plan == second.plan, name
        assert first.hint_text() == second.hint_text(), name
        assert first.estimated_cost == second.estimated_cost, name

    def test_every_family_hint_text_round_trips(self, family_model):
        from repro.plan import (LocalCardinalityGenerator, parse_hints,
                                plan_query, render_hints)

        name, model = family_model
        decision = plan_query(QUERY,
                              LocalCardinalityGenerator(model=model))
        for dialect in ("pg_hint_plan", "json"):
            text = decision.hint_text(dialect)
            assert render_hints(parse_hints(text, dialect),
                                dialect) == text, name

    def test_every_family_serves_plans(self, family_model):
        """``serve_plan`` answers for every family and matches the
        direct plan layer bit-for-bit."""
        from repro.plan import (LocalCardinalityGenerator, PlanRequest,
                                plan_query)
        from repro.serve import EstimationService

        name, model = family_model
        service = EstimationService()
        service.register("m", model)
        response = service.serve_plan(PlanRequest(query=QUERY))
        decision = plan_query(QUERY,
                              LocalCardinalityGenerator(model=model))
        assert response.hint_text == decision.hint_text(), name
        assert response.estimated_cost == decision.estimated_cost, name


class TestOptimizerThroughSessions:
    def test_dp_plans_are_bit_identical_via_session(self, family_model):
        """The DP picks the same plan (and believes the same cost)
        whether it reads a precomputed map or probes the session."""
        name, model = family_model
        query = parse_query(QUERY)
        estimates = model.estimate_subplans(query, min_tables=1)
        plan_map, cost_map = optimize(query, make_oracle(estimates))
        plan_sess, cost_sess = optimize_with_session(
            query, model.open_session(query))
        assert plan_sess == plan_map
        assert cost_sess == cost_map
