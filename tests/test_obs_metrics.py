"""obs.metrics: instruments, exact percentiles, collectors, and the
Prometheus render/parse round trip."""

import math
import threading

import pytest

from repro.obs import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
    quantize,
    render_prometheus,
)
from repro.obs.metrics import QERROR_BUCKETS, percentile_from_counts


class TestQuantize:
    def test_three_significant_figures(self):
        assert quantize(0.0012344) == pytest.approx(0.00123)
        assert quantize(123456.0) == pytest.approx(123000.0)
        assert quantize(1.0) == 1.0

    def test_relative_error_bounded(self):
        for value in (3.14159e-6, 0.9999, 7.77e9):
            assert abs(quantize(value) - value) / value <= 1e-3

    def test_degenerate_values_map_to_themselves(self):
        assert quantize(0.0) == 0.0
        assert quantize(-5.0) == -5.0
        assert quantize(math.inf) == math.inf


class TestCounterGauge:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        c = registry.counter("hits", "help")
        c.inc(model="a")
        c.inc(2.0, model="a")
        c.inc(model="b")
        assert c.value(model="a") == 3.0
        assert c.value(model="b") == 1.0
        assert c.value(model="absent") == 0.0

    def test_gauge_set_and_inc(self):
        g = MetricsRegistry().gauge("depth")
        g.set(5.0)
        g.inc(-2.0)
        assert g.value() == 3.0

    def test_get_or_create_is_idempotent_but_kind_checked(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")


class TestHistogram:
    def test_exact_percentiles_over_the_whole_stream(self):
        h = Histogram("lat")
        for ms in range(1, 1001):  # 1..1000
            h.observe(ms / 1000.0)
        s = h.summary()
        assert s["count"] == 1000
        assert s["p50"] == pytest.approx(0.501, rel=2e-3)
        assert s["p99"] == pytest.approx(0.991, rel=2e-3)
        assert s["min"] == pytest.approx(0.001)
        assert s["max"] == pytest.approx(1.0)

    def test_match_filter_merges_admissible_label_sets(self):
        h = Histogram("lat")
        h.observe(1.0, endpoint="estimate")
        h.observe(2.0, endpoint="subplans")
        h.observe(100.0, endpoint="update")
        count, total, _, _, _ = h.snapshot(
            {"endpoint": ("estimate", "subplans")})
        assert count == 2 and total == 3.0
        assert h.snapshot({"endpoint": "update"})[0] == 1
        assert h.snapshot()[0] == 3

    def test_percentile_from_counts_nearest_rank(self):
        counts = {1.0: 3, 2.0: 1}
        assert percentile_from_counts(counts, 0.50) == 1.0
        assert percentile_from_counts(counts, 0.99) == 2.0
        assert percentile_from_counts({}, 0.5) == 0.0

    def test_concurrent_observes_lose_nothing(self):
        h = Histogram("lat")

        def worker():
            for _ in range(1000):
                h.observe(0.001)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.snapshot()[0] == 4000


class TestCollectAndRender:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total", "Hits.").inc(3, model="m")
        registry.gauge("repro_depth", "Depth.").set(2.0)
        h = registry.histogram("repro_qerror", "Q-error.",
                               buckets=QERROR_BUCKETS)
        for v in (1.0, 1.4, 9.0, 500.0):
            h.observe(v, model="m")
        return registry

    def test_render_parse_round_trip(self):
        text = self._registry().render_prometheus()
        families = parse_prometheus_text(text)
        assert families["repro_hits_total"]["type"] == "counter"
        assert families["repro_qerror"]["type"] == "histogram"
        name, labels, value = families["repro_hits_total"]["samples"][0]
        assert labels == {"model": "m"} and value == 3.0

    def test_histogram_buckets_are_cumulative_and_capped_by_inf(self):
        text = self._registry().render_prometheus()
        buckets = {}
        for line in text.splitlines():
            if line.startswith("repro_qerror_bucket"):
                le = line.split('le="')[1].split('"')[0]
                buckets[le] = float(line.rsplit(" ", 1)[1])
        assert buckets["1"] == 1  # just the exact 1.0
        assert buckets["1.5"] == 2
        assert buckets["10"] == 3
        assert buckets["+Inf"] == 4
        values = [buckets[k] for k in buckets]
        assert values == sorted(values)

    def test_scrape_time_collector_families_are_included(self):
        registry = self._registry()
        registry.register_collector(lambda: [
            ("gauge", "repro_worker_up", "Liveness.",
             [({"worker": "0"}, 1.0)])])
        text = registry.render_prometheus()
        assert 'repro_worker_up{worker="0"} 1' in text
        parse_prometheus_text(text)

    def test_broken_collector_never_kills_the_scrape(self):
        registry = self._registry()

        def broken():
            raise RuntimeError("boom")

        registry.register_collector(broken)
        parse_prometheus_text(registry.render_prometheus())

    def test_label_values_are_escaped(self):
        # quotes, backslashes, newlines in a label value must keep the
        # exposition parseable (the validator reads the escaped form)
        families = [("counter", "c", "", [({"q": 'a"b\\c\nd'}, 1.0)])]
        parsed = parse_prometheus_text(render_prometheus(families))
        _, labels, _ = parsed["c"]["samples"][0]
        assert labels == {"q": 'a\\"b\\\\c\\nd'}

    def test_to_json_has_summaries(self):
        payload = self._registry().to_json()
        assert payload["repro_qerror"]["summary"]["count"] == 4
        assert payload["repro_hits_total"]["values"] == {"model=m": 3.0}


class TestParserRejections:
    def test_rejects_malformed_sample_line(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("# TYPE a counter\na{ nonsense\n")

    def test_rejects_sample_preceding_type(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("orphan_metric 1\n")

    def test_rejects_decreasing_cumulative_buckets(self):
        bad = ("# TYPE h histogram\n"
               'h_bucket{le="1"} 5\n'
               'h_bucket{le="2"} 3\n'
               'h_bucket{le="+Inf"} 5\n'
               "h_sum 1\nh_count 5\n")
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)

    def test_rejects_missing_inf_bucket(self):
        bad = ("# TYPE h histogram\n"
               'h_bucket{le="1"} 5\n'
               "h_sum 1\nh_count 5\n")
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)

    def test_rejects_non_numeric_value(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("# TYPE a gauge\na one\n")


class TestLabelCardinalityCap:
    def test_past_cap_label_sets_collapse_into_overflow_child(self):
        registry = MetricsRegistry()
        c = registry.counter("c_total", "caps", max_label_sets=3)
        for i in range(10):
            c.inc(query=f"q{i}")
        assert c.dropped_label_sets == 7
        samples = dict((tuple(sorted(labels.items())), value)
                       for labels, value in c.samples())
        assert len(samples) == 4  # 3 admitted + the overflow child
        assert samples[(("label_overflow", "true"),)] == 7.0
        # existing label sets keep updating after the cap is hit
        c.inc(query="q0")
        assert c.value(query="q0") == 2.0
        assert c.dropped_label_sets == 7

    def test_histogram_overflow_keeps_observations(self):
        h = Histogram("h", max_label_sets=2)
        for i in range(5):
            h.observe(1.0, op=f"op{i}")
        assert h.snapshot()[0] == 5  # nothing lost, only relabeled
        assert h.dropped_label_sets == 3
        overflow = h.snapshot({"label_overflow": "true"})
        assert overflow[0] == 3

    def test_dropped_family_lands_in_the_scrape(self):
        registry = MetricsRegistry()
        g = registry.gauge("g", "gauges", max_label_sets=1)
        g.set(1.0, shard="0")
        g.set(2.0, shard="1")
        text = registry.render_prometheus()
        assert ('repro_metric_dropped_label_sets_total{metric="g"} 1'
                in text)
        assert 'label_overflow="true"' in text
        parse_prometheus_text(text)

    def test_uncapped_registry_scrapes_without_the_family(self):
        registry = MetricsRegistry()
        registry.counter("c", "c").inc(model="m")
        assert ("repro_metric_dropped_label_sets_total"
                not in registry.render_prometheus())


class TestNullMetrics:
    def test_same_surface_zero_state(self):
        h = NULL_METRICS.histogram("x")
        h.observe(1.0, model="m")
        assert h.snapshot()[0] == 0
        assert h.summary()["count"] == 0
        NULL_METRICS.counter("c").inc()
        assert NULL_METRICS.counter("c").value() == 0.0
        assert NULL_METRICS.collect() == []
        assert not NULL_METRICS.enabled
        parse_prometheus_text(NULL_METRICS.render_prometheus())
