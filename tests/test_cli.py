"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_summary_defaults(self):
        args = build_parser().parse_args(["summary"])
        assert args.benchmark == "stats"
        assert args.scale == 0.1

    def test_estimate_requires_sql(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.cache_size == 1024
        assert args.load is None

    def test_serve_load_is_repeatable(self):
        args = build_parser().parse_args(
            ["serve", "--load", "a=/tmp/a.fj", "--load", "/tmp/b.fj"])
        assert args.load == ["a=/tmp/a.fj", "/tmp/b.fj"]


class TestCommands:
    def test_summary_prints_table(self, capsys):
        code = main(["summary", "--scale", "0.02", "--queries", "4",
                     "--max-tables", "3", "--seed", "21"])
        out = capsys.readouterr().out
        assert code == 0
        assert "STATS-CEB summary" in out
        assert "num_key_groups" in out

    def test_estimate_with_truth(self, capsys):
        code = main([
            "estimate",
            "SELECT COUNT(*) FROM posts p, comments c "
            "WHERE p.id = c.post_id AND p.score > 0",
            "--scale", "0.02", "--queries", "4", "--max-tables", "3",
            "--seed", "21", "--bins", "4", "--true",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "estimate:" in out
        assert "est/true" in out

    def test_estimate_truescan(self, capsys):
        code = main([
            "estimate",
            "SELECT COUNT(*) FROM users u, badges b WHERE u.id = b.user_id",
            "--scale", "0.02", "--queries", "4", "--max-tables", "3",
            "--seed", "21", "--estimator", "truescan",
        ])
        assert code == 0
        assert "estimate:" in capsys.readouterr().out


class TestSaveLoadRoundTrip:
    SQL = ("SELECT COUNT(*) FROM posts p, comments c "
           "WHERE p.id = c.post_id AND p.score > 0")
    ARGS = ["--scale", "0.02", "--queries", "4", "--max-tables", "3",
            "--seed", "21", "--bins", "4"]

    def _estimate_line(self, out):
        return next(line for line in out.splitlines()
                    if line.startswith("estimate:"))

    def test_fit_save_load_identical_estimate(self, capsys, tmp_path):
        artifact = str(tmp_path / "m.fj")
        assert main(["estimate", self.SQL, *self.ARGS,
                     "--save", artifact]) == 0
        saved_out = capsys.readouterr().out
        assert f"saved model to {artifact}" in saved_out

        assert main(["estimate", self.SQL, *self.ARGS,
                     "--load", artifact]) == 0
        loaded_out = capsys.readouterr().out
        assert "fit skipped" in loaded_out
        assert self._estimate_line(loaded_out) == self._estimate_line(
            saved_out)

    def test_load_missing_artifact_fails_loudly(self, tmp_path):
        from repro.errors import ArtifactError
        with pytest.raises(ArtifactError):
            main(["estimate", self.SQL, *self.ARGS,
                  "--load", str(tmp_path / "absent.fj")])


class TestBuildService:
    def test_serve_loads_artifacts_by_name(self, capsys, tmp_path):
        from repro.cli import build_service
        artifact = str(tmp_path / "toy.fj")
        assert main(["estimate",
                     "SELECT COUNT(*) FROM users u, badges b "
                     "WHERE u.id = b.user_id",
                     "--scale", "0.02", "--queries", "4",
                     "--max-tables", "3", "--seed", "21", "--bins", "4",
                     "--save", artifact]) == 0
        capsys.readouterr()
        args = build_parser().parse_args(
            ["serve", "--load", f"toy={artifact}"])
        service = build_service(args)
        assert service.registry.names() == ["toy"]
        result = service.estimate(
            "SELECT COUNT(*) FROM users u, badges b WHERE u.id = b.user_id")
        assert result.model == "toy" and result.estimate > 0

        # two artifacts deriving the same name must not silently shadow
        from repro.cli import build_service as build
        clash = build_parser().parse_args(
            ["serve", "--load", artifact, "--load", f"other/{artifact}"])
        with pytest.raises(SystemExit, match="disambiguate"):
            build(clash)


class TestFitCommand:
    BENCH = ["--scale", "0.02", "--queries", "4", "--max-tables", "3",
             "--seed", "21", "--bins", "4", "--estimator", "truescan"]
    SQL = "SELECT COUNT(*) FROM users u, badges b WHERE u.id = b.user_id"

    def test_fit_requires_save(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fit"])

    def test_fit_writes_single_model_artifact(self, capsys, tmp_path):
        artifact = str(tmp_path / "m.fj")
        assert main(["fit", *self.BENCH, "--save", artifact]) == 0
        out = capsys.readouterr().out
        assert "fitted model" in out and artifact in out
        assert main(["estimate", self.SQL, *self.BENCH[:-2],
                     "--load", artifact]) == 0

    def test_fit_writes_ensemble_artifact(self, capsys, tmp_path):
        from repro.serve import read_manifest
        from repro.shard import ShardedFactorJoin

        artifact = str(tmp_path / "ens")
        assert main(["fit", *self.BENCH, "--shards", "3",
                     "--policy", "hash", "--parallel", "serial",
                     "--save", artifact, "--name", "trio"]) == 0
        out = capsys.readouterr().out
        assert "3-shard hash ensemble" in out
        manifest = read_manifest(artifact)
        assert manifest["n_shards"] == 3 and manifest["name"] == "trio"
        assert isinstance(ShardedFactorJoin.load(artifact),
                          ShardedFactorJoin)

    def test_shard_flags_on_serve(self):
        args = build_parser().parse_args(
            ["serve", "--shards", "4", "--policy", "range",
             "--parallel", "thread", "--snapshot", "/tmp/x.snap"])
        assert args.shards == 4
        assert args.policy == "range"
        assert args.snapshot == "/tmp/x.snap"


class TestServeSnapshotFlow:
    ARGS = ["serve", "--benchmark", "stats", "--scale", "0.02",
            "--queries", "4", "--max-tables", "3", "--seed", "21",
            "--bins", "4", "--estimator", "truescan"]
    SQL = "SELECT COUNT(*) FROM users u, badges b WHERE u.id = b.user_id"

    def test_snapshot_restores_across_restarts(self, capsys, tmp_path):
        from repro.cli import build_service

        snap = str(tmp_path / "cache.snap")
        args = build_parser().parse_args([*self.ARGS, "--snapshot", snap])
        first = build_service(args)
        assert not first.estimate(self.SQL).cached
        first.save_snapshot(snap)
        capsys.readouterr()

        second = build_service(args)
        out = capsys.readouterr().out
        assert "restored cache snapshot" in out
        assert second.estimate(self.SQL).cached

    def test_stale_snapshot_refused_but_not_fatal(self, capsys, tmp_path):
        from repro.cli import build_service

        snap = str(tmp_path / "cache.snap")
        args = build_parser().parse_args([*self.ARGS, "--snapshot", snap])
        service = build_service(args)
        service.estimate(self.SQL)
        service.save_snapshot(snap)
        capsys.readouterr()

        stale_args = build_parser().parse_args(
            [*self.ARGS[:-2], "--estimator", "bayescard",
             "--snapshot", snap])
        survivor = build_service(stale_args)
        out = capsys.readouterr().out
        assert "cache snapshot refused" in out
        assert not survivor.estimate(self.SQL).cached

    def test_serve_fits_sharded_ensemble(self, capsys):
        from repro.cli import build_service
        from repro.shard import ShardedFactorJoin

        args = build_parser().parse_args(
            [*self.ARGS, "--shards", "2", "--parallel", "serial"])
        service = build_service(args)
        record = service.registry.record("default")
        assert isinstance(record.model, ShardedFactorJoin)
        assert service.estimate(self.SQL).estimate > 0
