"""Structured tracing: trace ids, span trees, cross-process propagation.

Every served request gets one **trace**: a root span plus a tree of
child spans covering the stages the request actually passed through —
parse, session prep, cache lookup, per-shard probe fan-out, bound fold.
Spans are plain objects (two clock reads, one list append), created
through class-based context managers so the always-on cost stays in the
low microseconds per request.

Context propagation
-------------------
The *current* span lives in a thread-local; :func:`trace_span` nests
under it implicitly.  Two explicit hand-offs cover the places implicit
context cannot reach:

- **executor threads** — the cluster model fans probe batches out on a
  thread pool; :func:`capture_context` in the request thread plus
  :func:`use_context` inside the submitted callable re-activates the
  request's context there;
- **worker processes** — :func:`wire_context` yields a picklable
  ``(trace_id, span_id)`` pair the RPC envelope carries; the worker
  records its spans as plain dicts against that parent
  (:func:`remote_span`) and ships them back in the reply, where
  :func:`absorb_remote_spans` grafts them into the live trace.  Worker
  spans therefore nest under the exact driver span that issued the RPC,
  under one consistent trace id.

Finished traces are appended to a :class:`TraceLog` — a ring buffer of
recent traces plus a second ring of *slow* ones (``GET /v1/traces``) —
and, when configured, exported as one JSON line each
(``repro serve --trace-log FILE``).  Trees are rendered lazily on read:
the per-request cost of keeping a trace is the ring append, not a JSON
serialization.
"""

from __future__ import annotations

import itertools
import os
import threading
import time

_SPAN_IDS = itertools.count(1)
_TRACE_IDS = itertools.count(1)
# distinguishes ids minted by different processes (driver vs workers)
_PROCESS_TAG = f"{os.getpid():x}"

_tls = threading.local()


def _new_trace_id() -> str:
    return f"t{_PROCESS_TAG}-{next(_TRACE_IDS):x}"


def _new_span_id() -> str:
    return f"s{_PROCESS_TAG}-{next(_SPAN_IDS):x}"


class Span:
    """One timed stage of a trace (already started when constructed)."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start",
                 "duration", "attributes", "error", "_t0")

    def __init__(self, trace_id: str, parent_id: str | None, name: str,
                 attributes: dict | None = None):
        self.trace_id = trace_id
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.name = name
        self.start = time.time()
        self.duration = None
        self.attributes = attributes or {}
        self.error = None
        self._t0 = time.perf_counter()

    def annotate(self, **attributes) -> None:
        """Attach attributes after creation (e.g. the cache level the
        lookup resolved to)."""
        self.attributes.update(attributes)

    def finish(self, error: str | None = None) -> None:
        self.duration = time.perf_counter() - self._t0
        self.error = error

    def to_json(self) -> dict:
        payload = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration_ms": (self.duration * 1e3
                            if self.duration is not None else None),
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.error is not None:
            payload["error"] = self.error
        return payload


def remote_span(trace_id: str, parent_id: str, name: str,
                started: float, duration: float,
                attributes: dict | None = None,
                error: str | None = None) -> dict:
    """A worker-side span as a picklable dict (what replies carry).

    Workers have no :class:`Tracer`; they time their handling around
    two clock reads and ship this dict home, where it joins the trace
    exactly as if the span had been recorded in the driver.
    """
    payload = {
        "trace_id": trace_id,
        "span_id": f"w{os.getpid():x}-{next(_SPAN_IDS):x}",
        "parent_id": parent_id,
        "name": name,
        "start": started,
        "duration_ms": duration * 1e3,
        "remote": True,
    }
    if attributes:
        payload["attributes"] = dict(attributes)
    if error is not None:
        payload["error"] = error
    return payload


class TraceRecord:
    """One in-flight (then finished) trace: the root span plus every
    span recorded under it, local or absorbed from workers.

    Appends are lock-protected — the cluster layer finishes spans on
    executor threads concurrently with the request thread.  The tree is
    assembled lazily by :meth:`to_json`.
    """

    __slots__ = ("trace_id", "root", "_spans", "_lock", "finished")

    def __init__(self, root: Span):
        self.trace_id = root.trace_id
        self.root = root
        self._spans: list = [root]
        self._lock = threading.Lock()
        self.finished = False

    def add(self, span) -> None:
        """Record a finished local :class:`Span` or remote span dict."""
        with self._lock:
            self._spans.append(span)

    @property
    def duration_ms(self) -> float:
        return (self.root.duration or 0.0) * 1e3

    def span_dicts(self) -> list[dict]:
        with self._lock:
            spans = list(self._spans)
        return [span if isinstance(span, dict) else span.to_json()
                for span in spans]

    def to_json(self) -> dict:
        """The rendered trace: summary fields plus the nested span tree
        (spans whose parent never arrived attach under the root)."""
        spans = self.span_dicts()
        by_id = {span["span_id"]: dict(span, children=[])
                 for span in spans}
        root = by_id[self.root.span_id]
        for span_id, span in by_id.items():
            if span_id == self.root.span_id:
                continue
            parent = by_id.get(span.get("parent_id"))
            (parent if parent is not None else root)["children"].append(
                span)
        for span in by_id.values():
            span["children"].sort(key=lambda child: child["start"])
        return {
            "trace_id": self.trace_id,
            "name": self.root.name,
            "start": self.root.start,
            "duration_ms": root["duration_ms"],
            "span_count": len(spans),
            "error": self.root.error,
            "root": root,
        }


class TraceLog:
    """Ring buffers of finished traces: every recent one, plus the ones
    slower than ``slow_threshold_ms`` (the slow-query log)."""

    def __init__(self, capacity: int = 256, slow_capacity: int = 64,
                 slow_threshold_ms: float = 100.0):
        import collections

        self.slow_threshold_ms = float(slow_threshold_ms)
        self._lock = threading.Lock()
        self._recent = collections.deque(maxlen=int(capacity))
        self._slow = collections.deque(maxlen=int(slow_capacity))

    def add(self, record: TraceRecord) -> None:
        with self._lock:
            self._recent.append(record)
            if record.duration_ms >= self.slow_threshold_ms:
                self._slow.append(record)

    def snapshot(self, slow: bool = False, limit: int = 50) -> list[dict]:
        """The newest ``limit`` traces (slow ring with ``slow=True``),
        newest first, rendered to JSON on read."""
        with self._lock:
            records = list(self._slow if slow else self._recent)
        return [record.to_json() for record in reversed(records[-limit:])]

    def describe(self) -> dict:
        with self._lock:
            return {
                "recent": len(self._recent),
                "slow": len(self._slow),
                "slow_threshold_ms": self.slow_threshold_ms,
            }


class _Context:
    """What the thread-local carries: the tracer, the active record,
    and the span new children nest under."""

    __slots__ = ("tracer", "record", "span")

    def __init__(self, tracer: "Tracer", record: TraceRecord, span: Span):
        self.tracer = tracer
        self.record = record
        self.span = span


def _current() -> _Context | None:
    return getattr(_tls, "ctx", None)


def capture_context() -> _Context | None:
    """The request thread's active context, for hand-off to an executor
    thread (pair with :func:`use_context` inside the submitted task)."""
    return _current()


class use_context:
    """Context manager re-activating a captured context on this thread."""

    __slots__ = ("_ctx", "_prev")

    def __init__(self, ctx: _Context | None):
        self._ctx = ctx

    def __enter__(self):
        self._prev = _current()
        _tls.ctx = self._ctx
        return self._ctx

    def __exit__(self, exc_type, exc, tb):
        _tls.ctx = self._prev
        return False


def wire_context() -> tuple[str, str] | None:
    """The picklable ``(trace_id, span_id)`` pair an RPC envelope
    carries (None when this thread is not tracing)."""
    ctx = _current()
    if ctx is None:
        return None
    return (ctx.record.trace_id, ctx.span.span_id)


def current_trace_id() -> str | None:
    """The active trace's id on this thread (None outside a trace) —
    the cheap read histogram exemplars link observations through."""
    ctx = _current()
    if ctx is None:
        return None
    return ctx.record.trace_id


def absorb_remote_spans(spans) -> None:
    """Graft worker-recorded span dicts into this thread's live trace
    (a no-op outside a trace, or for an empty batch)."""
    if not spans:
        return
    ctx = _current()
    if ctx is None:
        return
    for span in spans:
        if span.get("trace_id") == ctx.record.trace_id:
            ctx.record.add(span)


class trace_span:
    """Context manager recording one child span under the current
    context — the single instrumentation point the whole stack uses.

    Outside a trace (no active context on this thread) entering costs
    one thread-local read and records nothing, which is what keeps
    always-on instrumentation viable on microsecond code paths.
    """

    __slots__ = ("_name", "_attributes", "_span", "_prev")

    def __init__(self, name: str, **attributes):
        self._name = name
        self._attributes = attributes
        self._span = None

    def __enter__(self) -> Span | None:
        ctx = _current()
        if ctx is None:
            self._prev = None
            return None
        span = Span(ctx.record.trace_id, ctx.span.span_id, self._name,
                    self._attributes or None)
        self._span = span
        self._prev = ctx
        _tls.ctx = _Context(ctx.tracer, ctx.record, span)
        return span

    def __exit__(self, exc_type, exc, tb):
        span = self._span
        if span is not None:
            span.finish(error=(f"{exc_type.__name__}: {exc}"
                               if exc_type is not None else None))
            self._prev.record.add(span)
            _tls.ctx = self._prev
        return False


class _RootScope:
    """The ``with tracer.trace(...)`` scope: owns finalization."""

    __slots__ = ("_tracer", "_name", "_attributes", "_record", "_prev")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes

    def __enter__(self) -> Span:
        root = Span(_new_trace_id(), None, self._name,
                    self._attributes or None)
        self._record = TraceRecord(root)
        self._prev = _current()
        _tls.ctx = _Context(self._tracer, self._record, root)
        return root

    def __exit__(self, exc_type, exc, tb):
        record = self._record
        record.root.finish(error=(f"{exc_type.__name__}: {exc}"
                                  if exc_type is not None else None))
        record.finished = True
        _tls.ctx = self._prev
        self._tracer._finalize(record)
        return False


class Tracer:
    """Mints traces, owns the ring buffers and the optional exporter.

    ``trace(name)`` opens a root scope (one per request); ``span`` is
    re-exported as the module-level :func:`trace_span` since child spans
    only consult the thread-local context.  ``record_of(root)`` fetches
    the finished :class:`TraceRecord` for responses that carry their own
    trace (``/v1/explain?trace=true``).
    """

    def __init__(self, log: TraceLog | None = None, exporter=None):
        self.log = log if log is not None else TraceLog()
        self.exporter = exporter
        self._lock = threading.Lock()
        # root span_id -> finished record, bounded: entries are popped
        # by record_of and the dict is pruned alongside the ring buffer
        self._finished: dict[str, TraceRecord] = {}

    enabled = True

    def trace(self, name: str, **attributes) -> _RootScope:
        """Open a root span; the ``with`` scope finalizes the trace."""
        return _RootScope(self, name, attributes)

    span = staticmethod(trace_span)

    def _finalize(self, record: TraceRecord) -> None:
        self.log.add(record)
        with self._lock:
            self._finished[record.root.span_id] = record
            while len(self._finished) > 512:
                self._finished.pop(next(iter(self._finished)))
        if self.exporter is not None:
            try:
                self.exporter.export(record)
            except Exception:  # an export failure must not fail serving
                pass

    def record_of(self, root: Span) -> TraceRecord | None:
        """The finished record whose root is ``root`` (and forget it)."""
        with self._lock:
            return self._finished.pop(root.span_id, None)

    def traces(self, slow: bool = False, limit: int = 50) -> list[dict]:
        """Rendered recent (or slow) traces, newest first."""
        return self.log.snapshot(slow=slow, limit=limit)


class _NullScope:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SCOPE = _NullScope()


class NullTracer:
    """The tracer's no-op twin (overhead bench, telemetry off)."""

    enabled = False
    exporter = None

    def __init__(self):
        self.log = TraceLog(capacity=1, slow_capacity=1)

    def trace(self, name: str, **attributes) -> _NullScope:
        return _NULL_SCOPE

    @staticmethod
    def span(name: str, **attributes) -> _NullScope:
        return _NULL_SCOPE

    def record_of(self, root) -> None:
        return None

    def traces(self, slow: bool = False, limit: int = 50) -> list:
        return []


NULL_TRACER = NullTracer()
