"""Drift monitoring: accuracy attribution, alerting, and flight
recording.

Walks the drift-observability layer end to end, in-process, on a fake
clock (so the 60-second alert hold passes instantly):

1. serve a model and replay an accurately-served workload — every
   attribution key (model, table, join template, shard) stays stable;
2. inject an update-driven shift: one query's true cardinalities
   inflate 40x while the served estimates go stale, and watch
   ``GET /v1/drift`` flip that query's table and template keys to
   ``critical`` with an onset stamp and magnitude;
3. tick the alert engine past the ``drift-critical`` rule's hold
   window and watch the firing event (what ``repro serve --alert-log``
   writes as JSONL);
4. dump the flight recorder's worst-offender bundle — the exact SQL,
   estimate, truth, and q-error a debugging session starts from
   (``GET /v1/debug/bundles`` / ``repro debug-bundle``).

Run:  python examples/drift_monitoring.py
"""

import json
import urllib.request

from repro import FactorJoin, FactorJoinConfig
from repro.api import FeedbackRequest
from repro.obs import (
    AlertEngine,
    DriftMonitor,
    FlightRecorder,
    default_alert_rules,
)
from repro.serve import EstimationService, serve_in_background

from quickstart import build_database

QUERIES = [
    "SELECT COUNT(*) FROM users u, orders o WHERE u.id = o.user_id",
    "SELECT COUNT(*) FROM users u, orders o "
    "WHERE u.id = o.user_id AND u.age < 30",
    "SELECT COUNT(*) FROM users u WHERE u.age >= 60",
]


class FakeClock:
    """An injectable clock: samples are stamped and alert holds aged
    with it, so the walkthrough is deterministic and instant."""

    def __init__(self):
        self.at = 0.0

    def __call__(self):
        return self.at

    def advance(self, seconds):
        self.at += seconds


def main() -> None:
    db = build_database()
    model = FactorJoin(FactorJoinConfig(n_bins=128,
                                        table_estimator="truescan"))
    model.fit(db)

    clock = FakeClock()
    service = EstimationService(
        drift=DriftMonitor(clock=clock),
        alerts=AlertEngine(rules=default_alert_rules(), clock=clock),
        flight=FlightRecorder())
    service.register("orders", model)
    server, _ = serve_in_background(service, port=0)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"

    # -- 1. the accurately-served prefix: everything stable ------------------
    estimates = {sql: service.estimate(sql).estimate for sql in QUERIES}
    for round_no in range(12):
        for sql in QUERIES:
            clock.advance(1.0)
            service.record_feedback(FeedbackRequest(
                query=sql, true_cardinality=max(estimates[sql], 1.0),
                estimate=estimates[sql]))
    report = service.drift_report()
    print(f"stable prefix: {report.counts} over "
          f"{len(report.entries)} attribution keys")

    # -- 2. the injected shift -----------------------------------------------
    # updates landed on `orders` that the model never absorbed: the
    # join query's true cardinality is now 40x its stale estimate
    drifted = QUERIES[0]
    clock.advance(300.0)  # a quiet stretch, then the shift arrives
    for _ in range(10):
        clock.advance(1.0)
        service.record_feedback(FeedbackRequest(
            query=drifted,
            true_cardinality=max(estimates[drifted], 1.0) * 40.0,
            estimate=estimates[drifted]))

    body = json.loads(urllib.request.urlopen(
        base + "/v1/drift?top=4", timeout=10).read())
    print(f"\nGET /v1/drift -> counts {body['counts']}, "
          f"{body['samples']} samples attributed")
    for entry in body["top"]:
        onset = entry["onset_age_seconds"]
        print(f"  {entry['status']:>8}  {entry['scope']:<8} "
              f"{(entry['key'] or entry['model']):<28} "
              f"score {entry['score']:6.1f}  "
              f"magnitude {entry['magnitude']:5.1f}x  "
              f"onset {onset:.0f}s ago")

    # -- 3. the drift-critical alert fires after its hold window -------------
    events = service.evaluate_alerts()  # first sight: pending
    state = {a["name"]: a["state"]
             for a in service.alerts_v1()["alerts"]}
    print(f"\nalert tick 1: drift-critical is {state['drift-critical']} "
          f"(hold window 60s)")
    clock.advance(61.0)
    events = service.evaluate_alerts()
    for event in events:
        print(f"alert tick 2: {event['rule']} -> {event['event']} "
              f"(value {event['value']:.0f}, "
              f"severity {event['severity']})")

    # -- 4. the flight recorder's worst offender -----------------------------
    bundles = json.loads(urllib.request.urlopen(
        base + "/v1/debug/bundles?kind=qerror&limit=1",
        timeout=10).read())
    worst = bundles["bundles"][0]["bundle"]
    print(f"\nGET /v1/debug/bundles -> worst q-error "
          f"{worst['q_error']:.1f} on shards {worst['shards']}")
    print(f"  sql:      {worst['sql']}")
    print(f"  estimate: {worst['estimate']:,.0f}   "
          f"truth: {worst['true_cardinality']:,.0f}")

    server.shutdown()
    server.server_close()


if __name__ == "__main__":
    main()
