"""Join-key domain binning (paper Section 4).

A :class:`Binning` maps every value of an equivalent key group's domain to a
bin id in ``[0, n_bins)``; the *same* binning is applied to every join key in
the group so that equal values always land in equal bins (the correctness
requirement stated under Equation 3).

Three construction strategies are provided, matching the paper's ablation
(Table 6): equal-width, equal-depth, and the Greedy Bin Selection Algorithm
(GBSA, Algorithm 2) which minimizes the variance of value counts inside each
bin across all keys of the group.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


class Binning:
    """Value -> bin assignment over an integer key domain.

    Bins are arbitrary subsets of the domain (GBSA groups values by count,
    not by range), so the mapping is stored explicitly as a sorted domain
    array plus a parallel bin-id array.  Values unseen at construction time
    (inserted later; never joinable with trained stats anyway) are assigned
    deterministically by ``value mod n_bins`` so all keys in a group agree.
    """

    __slots__ = ("domain", "bin_ids", "n_bins")

    def __init__(self, domain: np.ndarray, bin_ids: np.ndarray, n_bins: int):
        domain = np.asarray(domain, dtype=np.int64)
        bin_ids = np.asarray(bin_ids, dtype=np.int64)
        if domain.shape != bin_ids.shape:
            raise ReproError("binning domain/bin_ids length mismatch")
        order = np.argsort(domain, kind="stable")
        self.domain = domain[order]
        self.bin_ids = bin_ids[order]
        if n_bins <= 0:
            raise ReproError(f"n_bins must be positive, got {n_bins}")
        if len(bin_ids) and bin_ids.max() >= n_bins:
            raise ReproError("bin id out of range")
        self.n_bins = int(n_bins)

    def assign(self, values) -> np.ndarray:
        """Vectorized bin lookup for an int array of key values."""
        values = np.asarray(values, dtype=np.int64)
        if len(self.domain) == 0:
            return np.abs(values) % self.n_bins
        pos = np.searchsorted(self.domain, values)
        pos_clipped = np.minimum(pos, len(self.domain) - 1)
        hit = self.domain[pos_clipped] == values
        out = np.abs(values) % self.n_bins
        out[hit] = self.bin_ids[pos_clipped[hit]]
        return out

    def assign_with_null_code(self, column) -> np.ndarray:
        """Bin codes of a :class:`~repro.data.column.Column` with NULLs
        mapped to the extra trailing code ``n_bins``.

        The single definition of the NULL-code convention every joint
        histogram relies on (key trees, pairwise joints, BayesCard key
        nodes) — per-shard and merged statistics must agree on it
        exactly for ensemble merging to be lossless.
        """
        codes = np.full(len(column), self.n_bins, dtype=np.int64)
        valid = ~column.null_mask
        if valid.any():
            codes[valid] = self.assign(
                column.values[valid].astype(np.int64))
        return codes

    def __len__(self) -> int:
        return self.n_bins

    def __repr__(self) -> str:
        return f"Binning(n_bins={self.n_bins}, domain_size={len(self.domain)})"


# ---------------------------------------------------------------------------
# naive strategies (Table 6 baselines)
# ---------------------------------------------------------------------------

def equal_width_binning(domain: np.ndarray, n_bins: int) -> Binning:
    """Partition ``[min, max]`` of the domain into equal-width ranges."""
    domain = np.unique(np.asarray(domain, dtype=np.int64))
    if len(domain) == 0:
        return Binning(domain, domain, max(1, n_bins))
    n_bins = max(1, min(n_bins, len(domain)))
    lo, hi = domain[0], domain[-1]
    if hi == lo:
        return Binning(domain, np.zeros(len(domain), np.int64), 1)
    width = (hi - lo) / n_bins
    ids = np.minimum(((domain - lo) / width).astype(np.int64), n_bins - 1)
    return Binning(domain, ids, n_bins)


def equal_depth_binning(domain: np.ndarray, counts: np.ndarray,
                        n_bins: int) -> Binning:
    """Bins holding roughly equal total row counts (DBMS-style histogram).

    ``counts[i]`` is the total number of rows with value ``domain[i]``
    summed over every key in the group.
    """
    domain = np.asarray(domain, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.float64)
    order = np.argsort(domain, kind="stable")
    domain, counts = domain[order], counts[order]
    if len(domain) == 0:
        return Binning(domain, domain, max(1, n_bins))
    n_bins = max(1, min(n_bins, len(domain)))
    cum = np.cumsum(counts)
    total = cum[-1]
    # target boundary for each value: which of the n_bins quantile slots
    ids = np.minimum((cum - counts / 2) / total * n_bins,
                     n_bins - 1).astype(np.int64)
    return Binning(domain, ids, int(ids.max()) + 1)


# ---------------------------------------------------------------------------
# GBSA (Algorithm 2)
# ---------------------------------------------------------------------------

def _min_variance_bins(counts: np.ndarray, n_bins: int) -> list[np.ndarray]:
    """Minimal-variance bins on a single key: sort values by count, then
    equal-depth partition the count-sorted order so each bin groups values
    of similar frequency (line 4 of Algorithm 2).

    Returns a list of index arrays into the domain.
    """
    m = len(counts)
    n_bins = max(1, min(n_bins, m))
    order = np.argsort(counts, kind="stable")[::-1]
    sorted_counts = counts[order]
    cum = np.cumsum(sorted_counts)
    total = cum[-1] if m else 0.0
    if total <= 0:
        # degenerate: all zero counts -> split evenly by position
        splits = np.array_split(order, n_bins)
        return [s for s in splits if len(s)]
    slot = np.minimum((cum - sorted_counts / 2) / total * n_bins,
                      n_bins - 1).astype(np.int64)
    bins = []
    for b in range(int(slot.max()) + 1):
        members = order[slot == b]
        if len(members):
            bins.append(members)
    return bins


def _within_variance(values: np.ndarray) -> float:
    """Sum of squared deviations from the mean (0 for <2 items)."""
    if len(values) < 2:
        return 0.0
    return float(np.var(values) * len(values))


def _bin_variance_for_key(bin_members: np.ndarray,
                          key_counts: np.ndarray) -> float:
    """Variance of one key's value counts inside a bin.

    Only values the key actually contains (non-zero counts) participate —
    a value absent from this key cannot be its MFV, and including zeros
    would drown the outlier signal GBSA hunts for.
    """
    counts = key_counts[bin_members]
    counts = counts[counts > 0]
    return _within_variance(counts)


def _min_variance_dichotomy(bin_members: np.ndarray,
                            key_counts: np.ndarray
                            ) -> tuple[np.ndarray, np.ndarray] | None:
    """Split one bin in two, minimizing within-bin count variance for
    ``key_counts`` (line 11 of Algorithm 2).  Returns None if unsplittable.
    """
    if len(bin_members) < 2:
        return None
    counts = key_counts[bin_members]
    order = np.argsort(counts, kind="stable")
    sorted_counts = counts[order].astype(np.float64)
    m = len(sorted_counts)
    prefix = np.cumsum(sorted_counts)
    prefix_sq = np.cumsum(sorted_counts ** 2)
    total, total_sq = prefix[-1], prefix_sq[-1]
    cuts = np.arange(1, m)
    nl = cuts.astype(np.float64)
    nr = m - nl
    sum_l, sq_l = prefix[cuts - 1], prefix_sq[cuts - 1]
    sum_r, sq_r = total - sum_l, total_sq - sq_l
    cost = (sq_l - sum_l ** 2 / nl) + (sq_r - sum_r ** 2 / nr)
    best = int(np.argmin(cost)) + 1
    members_sorted = bin_members[order]
    return members_sorted[:best], members_sorted[best:]


def gbsa_binning(key_columns: list[np.ndarray], n_bins: int) -> Binning:
    """Greedy Bin Selection Algorithm over one equivalent key group.

    ``key_columns`` holds the raw (non-null) value arrays of every join key
    in the group.  Follows Algorithm 2: spend half the budget on
    minimal-variance bins for the key with the largest domain, then
    repeatedly dichotomize the highest-variance bins for each further key
    with geometrically shrinking budget.
    """
    key_columns = [np.asarray(c, dtype=np.int64) for c in key_columns]
    domain = np.unique(np.concatenate([c for c in key_columns])
                       if key_columns else np.zeros(0, np.int64))
    if len(domain) == 0:
        return Binning(domain, domain, max(1, n_bins))
    n_bins = max(1, min(n_bins, len(domain)))

    # per-key counts aligned to the union domain
    per_key_counts = []
    domain_sizes = []
    for col in key_columns:
        vals, cnts = np.unique(col, return_counts=True)
        aligned = np.zeros(len(domain), dtype=np.float64)
        aligned[np.searchsorted(domain, vals)] = cnts
        per_key_counts.append(aligned)
        domain_sizes.append(len(vals))

    if n_bins == 1 or not per_key_counts:
        return Binning(domain, np.zeros(len(domain), np.int64), 1)

    # line 3: sort keys by domain size (largest first)
    key_order = np.argsort(domain_sizes)[::-1]
    first_counts = per_key_counts[key_order[0]]
    first_budget = max(1, n_bins // 2)
    bins = _min_variance_bins(first_counts, first_budget)

    remain = n_bins - len(bins)
    for j in key_order[1:]:
        if remain <= 0:
            break
        key_counts = per_key_counts[j]
        variances = np.array([_bin_variance_for_key(b, key_counts)
                              for b in bins])
        split_budget = max(1, remain // 2) if len(key_order) > 2 else remain
        order = np.argsort(variances)[::-1]
        splits_done = 0
        for p in order:
            if splits_done >= split_budget or remain - splits_done <= 0:
                break
            if variances[p] <= 0:
                break
            parts = _min_variance_dichotomy(bins[p], key_counts)
            if parts is None:
                continue
            bins[p] = parts[0]
            bins.append(parts[1])
            splits_done += 1
        remain -= splits_done
        if splits_done == 0:
            # nothing left to improve for the remaining keys either
            continue

    bin_ids = np.zeros(len(domain), dtype=np.int64)
    for b, members in enumerate(bins):
        bin_ids[members] = b
    return Binning(domain, bin_ids, len(bins))


def split_bin_budget(total_budget: int, group_frequencies: dict[str, int],
                     min_bins: int = 1) -> dict[str, int]:
    """Workload-aware bin budget allocation (Section 4.2).

    ``group_frequencies[name]`` counts how often the equivalent key group
    appears in the observed workload; each group gets
    ``k_i = K * n_i / sum(n_j)`` bins (at least ``min_bins``).
    """
    total_freq = sum(group_frequencies.values())
    if total_freq <= 0:
        even = max(min_bins, total_budget // max(1, len(group_frequencies)))
        return {name: even for name in group_frequencies}
    return {
        name: max(min_bins, int(round(total_budget * freq / total_freq)))
        for name, freq in group_frequencies.items()
    }
