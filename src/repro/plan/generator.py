"""Cardinality generators: the estimator as an optimizer's oracle.

A :class:`CardinalityGenerator` answers per-join-subset cardinalities for
an external optimizer — the injection interface of the paper's end-to-end
evaluation (estimates are *injected into* a planner; the planner never
calls the model directly).  Two backends answer identically:

- :class:`LocalCardinalityGenerator` holds a fitted
  :class:`~repro.api.protocol.CardinalityModel` in process and asks it
  for whole sub-plan maps (``estimate_subplans``) and single induced
  sub-queries (``estimate``);
- :class:`RemoteCardinalityGenerator` speaks to a running server over
  ``POST /v1/subplans`` / ``POST /v1/estimate`` with a stdlib HTTP
  client — the deployment shape where the optimizer and the estimator
  are separate processes.

Both share one memo keyed on the canonical, alias-invariant
:meth:`~repro.sql.query.Query.subplan_key`, so a subset probed under one
query (or one alias spelling) is answered from memory when any later
query induces the same sub-plan.  JSON serializes finite floats
losslessly, so the remote backend returns bit-identical numbers to the
local one against the same model — the agreement the plan CI gate
asserts.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.api import coerce_query
from repro.errors import ReproError
from repro.optimizer.dp import CardOracle
from repro.sql.query import Query


class CardinalityGenerator:
    """Answers join-subset cardinality probes for an optimizer.

    Subclasses implement :meth:`_subplan_map` (the whole connected
    sub-plan lattice of a query) and :meth:`_estimate_query` (one
    arbitrary induced sub-query — the escape hatch for off-lattice
    probes such as the cross products a disconnected join graph forces).
    The base class owns the :meth:`~repro.sql.query.Query.subplan_key`
    memo and the optimizer-facing surface: :meth:`prepare`,
    :meth:`card`, and :meth:`oracle`.
    """

    def __init__(self):
        self._memo: dict[tuple, float] = {}

    # -- backend hooks ----------------------------------------------------

    def _subplan_map(self, query: Query) -> dict[frozenset, float]:
        raise NotImplementedError

    def _estimate_query(self, query: Query) -> float:
        raise NotImplementedError

    # -- optimizer surface ------------------------------------------------

    @property
    def memo_size(self) -> int:
        """Memoized sub-plan entries held so far."""
        return len(self._memo)

    def prepare(self, query: Query | str) -> dict[frozenset, float]:
        """Fetch (or recall) the whole connected sub-plan map of
        ``query`` — singletons included — memoizing every entry.

        One backend round trip answers all of a query's lattice probes;
        entries already memoized under their canonical keys (from an
        earlier overlapping query) skip the backend entirely.
        """
        query = coerce_query(query)
        keys = query.subplan_keys(min_tables=1)
        if all(k in self._memo for k in keys.values()):
            return {subset: self._memo[k] for subset, k in keys.items()}
        cards = self._subplan_map(query)
        for subset, value in cards.items():
            key = keys.get(subset)
            if key is None:
                key = query.subquery(subset).subplan_key()
            self._memo[key] = float(value)
        return {s: float(v) for s, v in cards.items()}

    def card(self, query: Query | str, aliases) -> float:
        """The estimated cardinality of one alias subset of ``query``.

        Probes hit the memo first (canonical key, so alias spelling and
        the enclosing query do not matter); misses estimate the induced
        sub-query through the backend and memoize the answer.
        """
        query = coerce_query(query)
        subset = frozenset(aliases)
        unknown = subset - set(query.aliases)
        if unknown:
            raise ValueError(
                f"subset names aliases {sorted(unknown)} not in the query")
        if not subset:
            raise ValueError("cannot estimate an empty alias subset")
        sub = query.subquery(subset)
        key = sub.subplan_key()
        value = self._memo.get(key)
        if value is None:
            value = float(self._estimate_query(sub))
            self._memo[key] = value
        return value

    def oracle(self, query: Query | str) -> CardOracle:
        """A :data:`~repro.optimizer.dp.CardOracle` over ``query`` for
        the DP optimizer: the lattice is prefetched in one round trip,
        off-lattice probes fall back to :meth:`card`."""
        query = coerce_query(query)
        cards = self.prepare(query)

        def probe(aliases: frozenset) -> float:
            subset = frozenset(aliases)
            value = cards.get(subset)
            if value is not None:
                return value
            return self.card(query, subset)

        return probe


class LocalCardinalityGenerator(CardinalityGenerator):
    """A generator over an in-process
    :class:`~repro.api.protocol.CardinalityModel` (a fitted estimator or
    a whole :class:`~repro.serve.service.EstimationService` via
    ``service=``, which adds its two-level cache in front)."""

    def __init__(self, model=None, service=None, model_name: str | None = None):
        super().__init__()
        if (model is None) == (service is None):
            raise ValueError(
                "provide exactly one of 'model' (a fitted "
                "CardinalityModel) or 'service' (an EstimationService)")
        self._model = model
        self._service = service
        self._model_name = model_name

    def _subplan_map(self, query: Query) -> dict[frozenset, float]:
        if self._service is not None:
            return self._service.estimate_subplans(
                query, model=self._model_name, min_tables=1)
        return self._model.estimate_subplans(query, min_tables=1)

    def _estimate_query(self, query: Query) -> float:
        if self._service is not None:
            return self._service.estimate(
                query, model=self._model_name).estimate
        return float(self._model.estimate(query))


class GeneratorError(ReproError):
    """The remote generator's server answered an error or was unreachable."""


class RemoteCardinalityGenerator(CardinalityGenerator):
    """A generator over a running server's versioned HTTP API.

    Lattice fetches go through ``POST /v1/subplans`` (one request per
    unseen query); off-lattice probes through ``POST /v1/estimate`` on
    the induced sub-query's SQL.  Uses only :mod:`urllib` — no client
    dependency — and raises :class:`GeneratorError` carrying the
    server's taxonomy error code when a request fails.
    """

    def __init__(self, base_url: str, model: str | None = None,
                 timeout: float = 30.0):
        super().__init__()
        self.base_url = base_url.rstrip("/")
        self._model_name = model
        self._timeout = timeout

    def _post(self, route: str, payload: dict) -> dict:
        body = json.dumps(payload).encode()
        request = urllib.request.Request(
            self.base_url + route, data=body,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self._timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                error = json.loads(exc.read()).get("error", {})
            except Exception:
                error = {}
            raise GeneratorError(
                f"{route} answered {exc.code} "
                f"[{error.get('code', 'unknown')}]: "
                f"{error.get('message', exc.reason)}") from None
        except OSError as exc:
            raise GeneratorError(
                f"cannot reach {self.base_url}{route}: {exc}") from None

    def _subplan_map(self, query: Query) -> dict[frozenset, float]:
        payload = self._post("/v1/subplans", {
            "sql": query.to_sql(), "model": self._model_name,
            "min_tables": 1})
        return {frozenset(key.split(",")): float(value)
                for key, value in payload["subplans"].items()}

    def _estimate_query(self, query: Query) -> float:
        payload = self._post("/v1/estimate", {
            "sql": query.to_sql(), "model": self._model_name})
        return float(payload["estimate"])
