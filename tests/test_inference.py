"""Unit tests for bound-semiring inference over synthetic factor providers.

These isolate repro.core.inference from the estimator stack: factors are
constructed directly, so the fold logic, progressive caching, and the
independent-estimation ablation path are tested on their own.
"""

import numpy as np
import pytest

from repro.core.factors import JoinFactor
from repro.core.inference import (
    ProgressiveSubplanEstimator,
    estimate_subplans_independently,
    fold_query,
)
from repro.sql import parse_query

CHAIN = parse_query(
    "SELECT COUNT(*) FROM A a, B b, C c WHERE a.id = b.aid AND b.cid = c.id")
STAR = parse_query(
    "SELECT COUNT(*) FROM A a, B b, C c WHERE a.id = b.aid AND a.id = c.aid")


def make_provider(factors: dict):
    calls = []

    def provider(query, alias):
        calls.append(alias)
        return factors[alias].copy()

    provider.calls = calls
    return provider


def chain_factors(k=4):
    """a -(v0)- b -(v1)- c with uniform distributions."""
    ones = np.ones(k)
    return {
        "a": JoinFactor((0,), 4 * k, {0: ones * 4}, {0: ones * 2}),
        "b": JoinFactor((0, 1), 2 * k,
                        {0: ones * 2, 1: ones * 2},
                        {0: ones, 1: ones}),
        "c": JoinFactor((1,), 3 * k, {1: ones * 3}, {1: ones * 3}),
    }


class TestFoldQuery:
    def test_two_table_fold(self):
        factors = chain_factors()
        q = parse_query("SELECT COUNT(*) FROM A a, B b WHERE a.id = b.aid")
        est = fold_query(q, make_provider(factors))
        # per bin: min(4/2, 2/1) * 2 * 1 = 4; 4 bins -> 16
        assert est == pytest.approx(16.0)

    def test_chain_fold_positive_and_finite(self):
        est = fold_query(CHAIN, make_provider(chain_factors()))
        assert np.isfinite(est) and est > 0

    def test_single_alias(self):
        factors = chain_factors()
        q = parse_query("SELECT COUNT(*) FROM A a WHERE a.x = 0")
        assert fold_query(q, make_provider(factors)) == pytest.approx(16.0)

    def test_empty_factor_zeroes_result(self):
        factors = chain_factors()
        k = 4
        factors["a"] = JoinFactor((0,), 0.0, {0: np.zeros(k)},
                                  {0: np.zeros(k)})
        q = parse_query("SELECT COUNT(*) FROM A a, B b WHERE a.id = b.aid")
        assert fold_query(q, make_provider(factors)) == 0.0


class TestProgressive:
    def test_caches_base_factors(self):
        provider = make_provider(chain_factors())
        prog = ProgressiveSubplanEstimator(CHAIN, provider)
        prog.estimate_all()
        # one provider call per alias despite many sub-plans
        assert sorted(provider.calls) == ["a", "b", "c"]

    def test_covers_all_connected_subsets(self):
        prog = ProgressiveSubplanEstimator(CHAIN,
                                           make_provider(chain_factors()))
        results = prog.estimate_all(min_tables=1)
        expected = {frozenset(s) for s in
                    (["a"], ["b"], ["c"], ["a", "b"], ["b", "c"],
                     ["a", "b", "c"])}
        assert set(results) == expected

    def test_star_subplans(self):
        prog = ProgressiveSubplanEstimator(STAR,
                                           make_provider(chain_factors()))
        results = prog.estimate_all(min_tables=2)
        assert frozenset(["a", "b"]) in results
        assert frozenset(["a", "c"]) in results
        # b and c only meet through a: {b, c} is not connected
        assert frozenset(["b", "c"]) not in results

    def test_factor_for_direct_subset(self):
        prog = ProgressiveSubplanEstimator(CHAIN,
                                           make_provider(chain_factors()))
        factor = prog.factor_for(frozenset(["a", "b"]))
        assert factor.total_estimate == pytest.approx(16.0)

    def test_monotone_under_extra_join(self):
        # adding a join to a sub-plan cannot increase its bound beyond the
        # cross-product of the pieces
        prog = ProgressiveSubplanEstimator(CHAIN,
                                           make_provider(chain_factors()))
        res = prog.estimate_all(min_tables=1)
        ab = res[frozenset(["a", "b"])]
        a = res[frozenset(["a"])]
        b = res[frozenset(["b"])]
        assert ab <= a * b + 1e-9


class TestIndependentAblation:
    def test_same_keys_as_progressive(self):
        provider = make_provider(chain_factors())
        indep = estimate_subplans_independently(CHAIN, provider)
        prog = ProgressiveSubplanEstimator(
            CHAIN, make_provider(chain_factors())).estimate_all(min_tables=1)
        assert set(indep) == set(prog)

    def test_agrees_on_chains(self):
        indep = estimate_subplans_independently(
            CHAIN, make_provider(chain_factors()))
        prog = ProgressiveSubplanEstimator(
            CHAIN, make_provider(chain_factors())).estimate_all(min_tables=1)
        for subset, value in prog.items():
            assert indep[subset] == pytest.approx(value, rel=1e-9), subset

    def test_provider_called_per_subplan(self):
        provider = make_provider(chain_factors())
        estimate_subplans_independently(CHAIN, provider, min_tables=2)
        # independent mode re-fetches factors for every sub-plan
        assert len(provider.calls) > 3
