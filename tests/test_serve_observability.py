"""Serving-layer observability: /metrics scrapes, /v1/stats, the /stats
deprecation shim, request traces over HTTP, and accuracy telemetry."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import EstimateRequest, FeedbackRequest
from repro.core.estimator import FactorJoin, FactorJoinConfig
from repro.obs import JsonlTraceExporter, TraceLog, Tracer, parse_prometheus_text
from repro.serve import EstimationService, serve_in_background

SQL = "SELECT COUNT(*) FROM A a, B b WHERE a.id = b.aid AND a.x > 1"


@pytest.fixture
def served(toy_db):
    model = FactorJoin(FactorJoinConfig(n_bins=4,
                                        table_estimator="truescan")).fit(
        toy_db)
    service = EstimationService()
    service.register("default", model)
    server, _ = serve_in_background(service, port=0)
    yield server, service, model
    server.shutdown()
    server.server_close()


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _post(server, path, payload):
    req = urllib.request.Request(
        _url(server, path), data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=10) as resp:
        return json.loads(resp.read())


def _get(server, path):
    with urllib.request.urlopen(_url(server, path), timeout=10) as resp:
        return json.loads(resp.read())


def _get_raw(server, path):
    with urllib.request.urlopen(_url(server, path), timeout=10) as resp:
        return resp.status, dict(resp.headers), resp.read().decode()


class TestMetricsEndpoint:
    def test_scrape_parses_and_carries_the_families(self, served):
        server, _, _ = served
        _post(server, "/estimate", {"sql": SQL})
        _post(server, "/estimate", {"sql": SQL})  # a cache hit
        status, headers, text = _get_raw(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        families = parse_prometheus_text(text)
        assert families["repro_request_seconds"]["type"] == "histogram"
        assert families["repro_cache_hits_total"]["type"] == "counter"
        assert families["repro_uptime_seconds"]["type"] == "gauge"
        assert families["repro_model_version"]["type"] == "gauge"
        hits = {tuple(sorted(labels.items())): value
                for _, labels, value
                in families["repro_cache_hits_total"]["samples"]}
        assert hits[(("level", "query"), ("model", "default"))] == 1.0

    def test_latency_histogram_labeled_by_endpoint_and_model(self, served):
        server, service, _ = served
        _post(server, "/estimate", {"sql": SQL})
        text = service.metrics.render_prometheus()
        assert ('repro_request_seconds_count{endpoint="estimate",'
                'model="default"} 1') in text

    def test_counters_stay_consistent_under_concurrent_scrapes(self,
                                                               served):
        server, service, _ = served
        stop = threading.Event()
        errors = []

        def traffic():
            while not stop.is_set():
                service.serve_estimate(EstimateRequest(query=SQL))

        def scrape():
            last = -1.0
            while not stop.is_set():
                families = parse_prometheus_text(
                    service.metrics.render_prometheus())
                totals = {}
                for _, labels, value in families[
                        "repro_cache_hits_total"]["samples"]:
                    if labels["level"] == "query":
                        totals["hits"] = value
                for _, labels, value in families[
                        "repro_cache_misses_total"]["samples"]:
                    if labels["level"] == "query":
                        totals["misses"] = value
                lookups = totals.get("hits", 0) + totals.get("misses", 0)
                if totals.get("hits", 0) > lookups or lookups < last:
                    errors.append(dict(totals))
                    return
                last = lookups

        threads = [threading.Thread(target=traffic) for _ in range(3)]
        threads.append(threading.Thread(target=scrape))
        for t in threads:
            t.start()
        import time

        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join()
        assert not errors


class TestStatsEndpoints:
    def test_v1_stats_exposes_metrics_and_trace_rings(self, served):
        server, _, _ = served
        _post(server, "/estimate", {"sql": SQL})
        body = _get(server, "/v1/stats")
        assert body["api_version"] == "v1"
        assert body["metrics"]["repro_request_seconds"]["kind"] == (
            "histogram")
        summary = body["metrics"]["repro_request_seconds"]["summary"]
        assert summary["count"] >= 1
        assert body["traces"]["recent"] >= 1
        assert "slow_threshold_ms" in body["traces"]

    def test_legacy_stats_is_a_deprecated_shim(self, served):
        server, _, _ = served
        _post(server, "/estimate", {"sql": SQL})
        status, headers, text = _get_raw(server, "/stats")
        assert status == 200
        assert headers["Deprecation"] == "true"
        body = json.loads(text)
        # the exact legacy shape, now derived from the shared registry
        assert body["estimate_latency"]["count"] == 1
        assert set(body["estimate_latency"]) >= {"count", "total_seconds",
                                                 "mean_ms", "p50_ms",
                                                 "p99_ms"}
        assert body["caches"]["default"]["hits"] == 0


class TestTracesOverHttp:
    def test_explain_trace_returns_one_span_tree(self, served):
        server, _, _ = served
        body = _post(server, "/v1/explain?trace=true", {"sql": SQL})
        trace = body["trace"]
        assert trace["trace_id"] == body["explain"]["trace_id"]
        root = trace["root"]
        assert root["name"] == "request.estimate"
        names = [child["name"] for child in root["children"]]
        assert names[:2] == ["parse", "cache.lookup"]
        assert "model.estimate" in names
        assert all(child["trace_id"] == trace["trace_id"]
                   for child in root["children"])

    def test_untraced_explain_still_stamps_the_trace_id(self, served):
        server, _, _ = served
        body = _post(server, "/v1/explain", {"sql": SQL})
        assert "trace" not in body
        assert body["explain"]["trace_id"]

    def test_v1_traces_ring(self, served):
        server, _, _ = served
        for _ in range(3):
            _post(server, "/estimate", {"sql": SQL})
        body = _get(server, "/v1/traces?limit=2")
        assert body["api_version"] == "v1"
        assert len(body["traces"]) == 2
        assert body["recent"] >= 3
        newest = body["traces"][0]
        assert newest["root"]["name"] == "request.estimate"
        slow = _get(server, "/v1/traces?slow=true")
        assert slow["slow"] == len(slow["traces"])

    def test_v1_traces_rejects_bad_limit(self, served):
        server, _, _ = served
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(server, "/v1/traces?limit=zero")
        assert info.value.code == 400

    def test_jsonl_export_writes_one_line_per_request(self, toy_db,
                                                      tmp_path):
        model = FactorJoin(FactorJoinConfig(n_bins=4)).fit(toy_db)
        path = tmp_path / "trace.jsonl"
        exporter = JsonlTraceExporter(str(path))
        service = EstimationService(
            tracer=Tracer(log=TraceLog(), exporter=exporter))
        service.register("default", model)
        service.serve_estimate(EstimateRequest(query=SQL))
        service.serve_estimate(EstimateRequest(query=SQL))
        exporter.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "request.estimate"


class TestAccuracyTelemetry:
    def test_feedback_records_qerror(self, served):
        server, service, model = served
        est = _post(server, "/estimate", {"sql": SQL})["estimate"]
        body = _post(server, "/v1/feedback",
                     {"sql": SQL, "true_cardinality": max(est / 2.0, 1.0)})
        assert body["model"] == "default"
        assert body["q_error"] == pytest.approx(
            max(est / max(est / 2.0, 1.0), max(est / 2.0, 1.0) / est))
        assert body["estimate"] == est
        summary = service.metrics.histogram("repro_qerror").summary()
        assert summary["count"] == 1
        assert service.metrics.counter("repro_feedback_total").value(
            model="default") == 1.0

    def test_feedback_validates_payload(self, served):
        server, _, _ = served
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(server, "/v1/feedback", {"sql": SQL})
        assert info.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(server, "/v1/feedback",
                  {"sql": SQL, "true_cardinality": -3})
        assert info.value.code == 400

    def test_record_truth_uses_retained_tables(self, served):
        _, service, model = served
        response = service.record_truth(SQL)
        from repro.engine.executor import CardinalityExecutor
        from repro.sql import parse_query

        truth = float(CardinalityExecutor(model.database).cardinality(
            parse_query(SQL)))
        assert response.true_cardinality == truth
        assert response.q_error >= 1.0

    def test_feedback_rederivation_is_never_workload_recorded(
            self, served, tmp_path):
        _, service, _ = served
        service.start_recording(tmp_path / "workload.jsonl")
        service.record_feedback(FeedbackRequest(query=SQL,
                                                true_cardinality=10.0))
        assert service.stop_recording() == 0


class TestDriftEndpoints:
    def test_feedback_feeds_drift_and_the_v1_route(self, served):
        server, service, _ = served
        est = _post(server, "/estimate", {"sql": SQL})["estimate"]
        for _ in range(12):
            _post(server, "/v1/feedback",
                  {"sql": SQL, "true_cardinality": max(est, 1.0)})
        body = _get(server, "/v1/drift?top=3")
        assert body["api_version"] == "v1"
        assert body["samples"] > 0
        assert set(body["counts"]) == {"stable", "drifting", "critical"}
        scopes = {entry["scope"] for entry in body["keys"]}
        assert {"model", "table", "template"} <= scopes
        by_scope = {e["scope"]: e for e in body["keys"]}
        assert by_scope["model"]["model"] == "default"
        assert by_scope["table"]["key"] in ("A", "B")
        text = _get_raw(server, "/metrics")[2]
        families = parse_prometheus_text(text)
        assert families["repro_drift_score"]["type"] == "gauge"
        assert families["repro_drift_state"]["type"] == "gauge"

    def test_v1_drift_rejects_bad_top(self, served):
        server, _, _ = served
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(server, "/v1/drift?top=0")
        assert info.value.code == 400


class TestAlertEndpoints:
    def test_v1_alerts_lists_the_stock_rules(self, served):
        server, service, _ = served
        service.evaluate_alerts()
        body = _get(server, "/v1/alerts")
        assert body["api_version"] == "v1"
        names = {a["name"] for a in body["alerts"]}
        assert names == {"availability-fast-burn", "latency-fast-burn",
                         "qerror-fast-burn", "drift-critical"}
        assert body["firing"] == 0
        assert all(a["state"] == "ok" for a in body["alerts"])
        text = _get_raw(server, "/metrics")[2]
        families = parse_prometheus_text(text)
        samples = families["repro_alert_state"]["samples"]
        assert {labels["rule"] for _n, labels, _v in samples} == names

    def test_ticker_lifecycle_is_idempotent(self, served):
        _, service, _ = served
        service.start_alert_ticker(interval=30.0)
        first = service._alert_ticker
        service.start_alert_ticker(interval=30.0)
        assert service._alert_ticker is first
        service.stop_alert_ticker()
        assert service._alert_ticker is None
        service.stop_alert_ticker()  # no-op


class TestFlightRecorder:
    def test_keeps_only_the_worst_offenders(self):
        from repro.obs import FlightRecorder

        recorder = FlightRecorder(capacity=2)
        for score in (3.0, 1.0, 7.0, 2.0):
            if recorder.admits("qerror", score):
                recorder.record("qerror", score, {"score": score})
        kept = recorder.bundles("qerror")
        assert [b["score"] for b in kept] == [7.0, 3.0]
        described = recorder.describe()
        assert described["kinds"]["qerror"]["kept"] == 2

    def test_v1_debug_bundles_carries_feedback_offenders(self, served):
        server, _, _ = served
        est = _post(server, "/estimate", {"sql": SQL})["estimate"]
        _post(server, "/v1/feedback",
              {"sql": SQL, "true_cardinality": max(est * 100.0, 1.0)})
        body = _get(server, "/v1/debug/bundles?kind=qerror")
        assert body["api_version"] == "v1"
        assert body["bundles"]
        worst = body["bundles"][0]
        assert worst["kind"] == "qerror"
        bundle = worst["bundle"]
        assert bundle["model"] == "default"
        assert bundle["q_error"] == pytest.approx(worst["score"])
        assert bundle["sql"]
        latency = _get(server, "/v1/debug/bundles?kind=latency")
        for row in latency["bundles"]:
            assert row["bundle"]["trace"]["root"]["name"] == \
                "request.estimate"

    def test_v1_debug_bundles_rejects_unknown_kind(self, served):
        server, _, _ = served
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(server, "/v1/debug/bundles?kind=everything")
        assert info.value.code == 400
