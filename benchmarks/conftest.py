"""Shared session fixtures for the benchmark harness.

Every bench file regenerates one of the paper's tables or figures.  The
benchmark databases, workloads, fitted methods, and end-to-end results are
built once per session and shared, so ``pytest benchmarks/ --benchmark-only``
runs the whole evaluation in a few minutes.

Scales are laptop-sized (see DESIGN.md): absolute numbers differ from the
paper's testbed, but the comparisons' *shape* is what each bench asserts
and prints.
"""

import pytest

from repro.eval.harness import (
    default_methods,
    make_context,
    run_end_to_end,
)

STATS_SCALE = 0.15
IMDB_SCALE = 0.08


@pytest.fixture(scope="session")
def stats_ctx():
    return make_context("stats", scale=STATS_SCALE, seed=0, max_tables=6)


@pytest.fixture(scope="session")
def imdb_ctx():
    return make_context("imdb", scale=IMDB_SCALE, seed=0)


@pytest.fixture(scope="session")
def stats_results(stats_ctx):
    methods = default_methods("stats", fast=True)
    return run_end_to_end(stats_ctx, methods)


@pytest.fixture(scope="session")
def imdb_results(imdb_ctx):
    methods = default_methods("imdb", fast=True)
    return run_end_to_end(imdb_ctx, methods)
