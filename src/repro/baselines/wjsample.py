"""WJSample: wander join (paper [40], Section 6.1 baseline 3).

Random walks over pre-built join indexes: a walk starts at a uniformly
random row of the first alias and extends one alias at a time by picking a
uniformly random matching row; the Horvitz-Thompson estimator multiplies the
fan-outs along the path and rejects rows failing the filters.  The walk
budget caps estimation latency, exactly like the paper's time-boxed runs.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import CardEstMethod, MethodCharacteristics
from repro.data.database import Database
from repro.engine.filter import evaluate_predicate
from repro.sql.predicates import TruePredicate
from repro.sql.query import Query
from repro.utils import resolve_rng


class _JoinIndex:
    """value -> row ids of one key column (sorted arrays, binary search)."""

    def __init__(self, values: np.ndarray, null_mask: np.ndarray):
        valid = ~null_mask
        rows = np.nonzero(valid)[0]
        vals = values[valid].astype(np.int64)
        order = np.argsort(vals, kind="stable")
        self._vals = vals[order]
        self._rows = rows[order]

    def lookup(self, value: int) -> np.ndarray:
        lo = np.searchsorted(self._vals, value, side="left")
        hi = np.searchsorted(self._vals, value, side="right")
        return self._rows[lo:hi]


class WJSampleMethod(CardEstMethod):
    name = "WJSample"
    characteristics = MethodCharacteristics(
        uses_sampling=True, small_model_size=True, fast_training=True,
        generalizes_to_new_queries=True, supports_cyclic_join=True)

    def __init__(self, walks_per_query: int = 200, seed: int = 0):
        super().__init__()
        self._walks = walks_per_query
        self._rng = resolve_rng(seed)

    def _fit(self, database: Database, workload=None) -> None:
        self._db = database
        self._indexes: dict[tuple[str, str], _JoinIndex] = {}
        for name in database.table_names:
            table = database.table(name)
            for key in database.schema.table(name).key_columns:
                col = table[key]
                self._indexes[(name, key)] = _JoinIndex(col.values,
                                                        col.null_mask)
        # pre-computed filter masks are query-dependent; caching per query
        self._mask_cache: dict = {}

    def _filter_mask(self, query: Query, alias: str) -> np.ndarray | None:
        pred = query.filter_of(alias)
        table_name = query.table_of(alias)
        if isinstance(pred, TruePredicate):
            return None
        key = (table_name, pred.to_sql(alias))
        if key not in self._mask_cache:
            self._mask_cache[key] = evaluate_predicate(
                pred, self._db.table(table_name))
        return self._mask_cache[key]

    def estimate(self, query: Query) -> float:
        order, conditions = self._walk_plan(query)
        if order is None:
            return 0.0
        masks = {alias: self._filter_mask(query, alias)
                 for alias in query.aliases}
        first = order[0]
        first_table = self._db.table(query.table_of(first))
        n_first = len(first_table)
        if n_first == 0:
            return 0.0
        total = 0.0
        rng = self._rng
        start_rows = rng.integers(0, n_first, size=self._walks)
        for start in start_rows:
            total += self._one_walk(query, order, conditions, masks,
                                    int(start), n_first, rng)
        return total / self._walks

    def _one_walk(self, query, order, conditions, masks, start_row,
                  n_first, rng) -> float:
        rows = {order[0]: start_row}
        weight = float(n_first)
        first_mask = masks[order[0]]
        if first_mask is not None and not first_mask[start_row]:
            return 0.0
        if not self._self_ok(query, order[0], start_row):
            return 0.0
        for alias in order[1:]:
            cands = None
            for (src_alias, src_col, dst_col) in conditions[alias]:
                src_table = self._db.table(query.table_of(src_alias))
                src_column = src_table[src_col]
                src_row = rows[src_alias]
                if src_column.null_mask[src_row]:
                    return 0.0
                value = int(src_column.values[src_row])
                index = self._indexes[(query.table_of(alias), dst_col)]
                matches = index.lookup(value)
                cands = (matches if cands is None
                         else np.intersect1d(cands, matches))
                if len(cands) == 0:
                    return 0.0
            pick = int(cands[rng.integers(0, len(cands))])
            weight *= len(cands)
            mask = masks[alias]
            if mask is not None and not mask[pick]:
                return 0.0
            if not self._self_ok(query, alias, pick):
                return 0.0
            rows[alias] = pick
        return weight

    def _self_ok(self, query: Query, alias: str, row: int) -> bool:
        """Join conditions between two columns of the same alias."""
        for col_a, col_b in self._self_conditions.get(alias, ()):
            table = self._db.table(query.table_of(alias))
            a, b = table[col_a], table[col_b]
            if a.null_mask[row] or b.null_mask[row]:
                return False
            if a.values[row] != b.values[row]:
                return False
        return True

    def _walk_plan(self, query: Query):
        """Alias order plus, per alias, its binding conditions
        (source_alias, source_column, this_alias_column)."""
        aliases = list(query.aliases)
        if not aliases:
            return None, None
        adj = query.adjacency()
        order = [aliases[0]]
        seen = {aliases[0]}
        while len(order) < len(aliases):
            progress = False
            for alias in aliases:
                if alias in seen:
                    continue
                if adj[alias] & seen:
                    order.append(alias)
                    seen.add(alias)
                    progress = True
            if not progress:
                return None, None  # disconnected: not supported by walks
        conditions: dict[str, list] = {a: [] for a in aliases}
        self_conditions: dict[str, list] = {a: [] for a in aliases}
        for join in query.joins:
            la, ra = join.left.alias, join.right.alias
            if la == ra:
                self_conditions[la].append((join.left.column,
                                            join.right.column))
            elif order.index(la) < order.index(ra):
                conditions[ra].append((la, join.left.column,
                                       join.right.column))
            else:
                conditions[la].append((ra, join.right.column,
                                       join.left.column))
        self._self_conditions = self_conditions
        return order, conditions
