"""``ClusterModel``: a partitioned ensemble served by worker processes.

The sharded ensemble (PR 3) already decomposes every estimate into
per-shard probes — filtered row counts and binned key distributions —
summed under exactly-merged global statistics.  ``ClusterModel`` moves
those probes into worker processes: it *is* a
:class:`~repro.shard.ensemble.ShardedFactorJoin` whose shard slots are
:class:`RemoteShardModel` proxies, so the merged inference, sessions,
sub-plan maps, routed updates, capabilities, and the whole
:class:`~repro.api.protocol.CardinalityModel` protocol are inherited —
and answers are **bit-identical** to the in-process ensemble, because
every per-shard number is computed by the same code on the same
statistics, merely in another process, and summed in the same order.

Per-query batching
------------------
Opening a session (or any estimate) first resolves the query's key
groups and ships each worker **one** batch with every (table, filter,
key-columns) probe its shards owe the query.  The answers prime the
driver-side factor caches, so sub-plan lattice probes — the optimizer's
thousands of ``estimate_join`` calls — run incrementally in the driver
without further RPC.

Crash recovery
--------------
The driver keeps a *ledger* per shard-state token: the sub-artifact path
plus the update journal since.  When a worker dies, the pool restarts it
and replays the ledger; the request that observed the crash is answered
*in the driver* from a ledger-materialized local model — transparently,
with the same statistics the worker held.

Consistency
-----------
Updates and per-shard hot-swaps publish a new ensemble state whose slots
carry fresh tokens; in-flight estimates stay pinned to the tokens of the
state they resolved, and workers retain every token until the last
ensemble state referencing it is garbage-collected.  No estimate ever
mixes pre- and post-mutation statistics — the same contract the
in-process ensemble's atomic state swap gives, stretched across
processes.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from dataclasses import replace as _replace
from pathlib import Path

import numpy as np

from repro.cluster.messages import (
    BatchProbe,
    CloneUpdate,
    FingerprintRequest,
    LoadShard,
    ModelSizeRequest,
    ProbeItem,
    ProbeResult,
    ReleaseTokens,
    ShardStatsRequest,
)
from repro.cluster.pool import DEFAULT_TIMEOUT, WorkerPool
from repro.core.key_groups import query_key_groups
from repro.obs.trace import capture_context, trace_span, use_context
from repro.errors import (
    ReproError,
    UnsupportedOperationError,
    WorkerError,
)
from repro.shard.artifact import (
    load_shard_artifact,
    load_shard_summary,
    read_ensemble,
)
from repro.shard.ensemble import (
    EnsembleTableEstimator,
    ShardedFactorJoin,
    shard_stats_of,
)
from repro.shard.pruning import ShardSummary
from repro.sql.query import Query

_TOKEN_COUNTER = itertools.count()


def _new_token(shard_index: int) -> str:
    return f"s{shard_index}:v{next(_TOKEN_COUNTER)}"


@dataclass(frozen=True)
class _Ledger:
    """How to rebuild one shard-state token from durable parts: the
    sub-artifact on disk plus the update journal applied since.  This is
    what worker reseeding replays and what the driver materializes for
    in-process crash retries."""

    shard_index: int
    path: str
    journal: tuple = ()


class _LedgerBook:
    """Thread-safe token -> :class:`_Ledger` map.

    Mutated from estimate threads (updates, hot-swaps) *and* from
    garbage-collection finalizers (token releases), and snapshotted by
    worker reseeding — plain dict iteration would race those mutations.
    The lock is re-entrant because a finalizer can fire via GC on the
    very thread that holds it; every critical section is a single small
    operation, so re-entry is harmless.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._entries: dict[str, _Ledger] = {}

    def get(self, token: str) -> _Ledger | None:
        with self._lock:
            return self._entries.get(token)

    def set(self, token: str, ledger: _Ledger) -> None:
        with self._lock:
            self._entries[token] = ledger

    def pop(self, token: str) -> None:
        with self._lock:
            self._entries.pop(token, None)

    def snapshot(self) -> list[tuple[str, _Ledger]]:
        with self._lock:
            return sorted(self._entries.items())


def _materialize_ledger(ledger: _Ledger):
    """A local model holding exactly the token's statistics."""
    model, _ = load_shard_artifact(ledger.path)
    for table, rows, deleted_rows in ledger.journal:
        if deleted_rows is not None:
            model.update(table, rows, deleted_rows=deleted_rows)
        else:
            model.update(table, rows)
    return model


def _reseed_token(pool: WorkerPool, worker_id: int, token: str,
                  ledger: _Ledger) -> None:
    """Rebuild ``token`` on a (re)started worker by replaying its ledger.

    Intermediate versions are released immediately; the final
    ``CloneUpdate`` binds ``token`` itself, so concurrent probes of the
    token never observe a half-replayed journal.
    """
    if not ledger.journal:
        pool.call(worker_id, LoadShard(token, ledger.path,
                                       ledger.shard_index))
        return
    prev = _new_token(ledger.shard_index)
    pool.call(worker_id, LoadShard(prev, ledger.path, ledger.shard_index))
    retire = []
    for position, (table, rows, deleted_rows) in enumerate(ledger.journal):
        last = position == len(ledger.journal) - 1
        nxt = token if last else _new_token(ledger.shard_index)
        pool.call(worker_id, CloneUpdate(prev, nxt, table, rows,
                                         deleted_rows))
        retire.append(prev)
        prev = nxt
    pool.call(worker_id, ReleaseTokens(tuple(retire)))


def _release_token(pool: WorkerPool, worker_id: int, token: str,
                   ledgers: "_LedgerBook", local_models: dict) -> None:
    """GC finalizer of a :class:`RemoteShardModel`: when no ensemble
    state references the token anymore, drop its ledger, any local
    fallback model, and queue the worker-side release."""
    ledgers.pop(token)
    local_models.pop(token, None)
    pool.schedule_release(worker_id, token)


class RemoteShardModel:
    """Driver-side handle to one shard-state version in a worker.

    Duck-types the slice of a shard :class:`~repro.core.estimator.
    FactorJoin` the ensemble layer touches — probes via
    ``table_estimator``, ``clone_for_update``/``update`` for the routed
    copy-on-write path, ``fingerprint``/``model_size_bytes`` for
    introspection — so the inherited ensemble machinery drives workers
    without knowing it.  Transport failures are absorbed here: the pool
    restarts the worker and the answer is computed in-process from the
    token's ledger.
    """

    def __init__(self, pool: WorkerPool, worker_id: int, shard_index: int,
                 token: str, ledgers: "_LedgerBook", local_models: dict,
                 base_token: str | None = None):
        self.pool = pool
        self.worker_id = worker_id
        self.shard_index = shard_index
        self.token = token
        self._ledgers = ledgers
        self._local_models = local_models
        self._base_token = base_token
        self._finalizer = weakref.finalize(
            self, _release_token, pool, worker_id, token, ledgers,
            local_models)

    # -- probes ---------------------------------------------------------------

    def probe(self, table: str, pred, columns=(),
              want_total: bool = True) -> ProbeResult:
        """One shard probe, worker-side when possible, ledger-local on
        crash (transparently, bit-identically)."""
        item = ProbeItem(self.token, table, pred, tuple(columns),
                         want_total)
        try:
            return self.pool.call(self.worker_id, BatchProbe((item,)))[0]
        except WorkerError:
            self.pool.ensure_alive(self.worker_id)
            with trace_span("probe.retry", retried=True,
                            restarted_worker=self.worker_id):
                return self.local_probe(item)

    def local_probe(self, item: ProbeItem) -> ProbeResult:
        """The in-process retry: the worker's own probe computation
        (:func:`~repro.cluster.worker.probe_model`), driver-side."""
        from repro.cluster.worker import probe_model

        return probe_model(self._local_model(), item)

    def _local_model(self):
        model = self._local_models.get(self.token)
        if model is None:
            ledger = self._ledgers.get(self.token)
            if ledger is None:
                raise WorkerError(
                    f"shard state {self.token!r} has no ledger to retry "
                    f"from (already released?)")
            model = _materialize_ledger(ledger)
            self._local_models[self.token] = model
        return model

    def table_estimator(self, table_name: str) -> "_RemoteTableEstimator":
        return _RemoteTableEstimator(self, table_name)

    # -- copy-on-write update (the inherited _apply_update drives this) --------

    def clone_for_update(self) -> "RemoteShardModel":
        """A pending new version; :meth:`update` registers it worker-side
        (mirrors ``FactorJoin.clone_for_update`` + ``update``)."""
        return RemoteShardModel(self.pool, self.worker_id,
                                self.shard_index,
                                _new_token(self.shard_index),
                                self._ledgers, self._local_models,
                                base_token=self.token)

    def update(self, table_name: str, new_rows=None,
               deleted_rows=None) -> None:
        if self._base_token is None:
            raise ReproError("update a handle obtained from "
                             "clone_for_update, not a published slot")
        message = CloneUpdate(self._base_token, self.token, table_name,
                              new_rows, deleted_rows)
        try:
            self.pool.call(self.worker_id, message)
        except WorkerError:
            # crash path: restart, rebuild the base version from its
            # ledger, and retry once — validation errors (the model
            # rejecting the batch) are not WorkerErrors and propagate
            self.pool.ensure_alive(self.worker_id)
            with trace_span("update.retry", retried=True,
                            restarted_worker=self.worker_id):
                base_ledger = self._ledgers.get(self._base_token)
                if base_ledger is not None:
                    try:
                        _reseed_token(self.pool, self.worker_id,
                                      self._base_token, base_ledger)
                    except WorkerError:
                        pass
                self.pool.call(self.worker_id, message)
        base_ledger = self._ledgers.get(self._base_token)
        if base_ledger is not None:
            self._ledgers.set(self.token, _Ledger(
                self.shard_index, base_ledger.path,
                base_ledger.journal
                + ((table_name, new_rows, deleted_rows),)))

    # -- statistics -----------------------------------------------------------

    def shard_stats(self):
        """The version's mergeable statistics (hot-swap bookkeeping)."""
        try:
            return self.pool.call(self.worker_id,
                                  ShardStatsRequest(self.token))
        except WorkerError:
            self.pool.ensure_alive(self.worker_id)
            model = self._local_model()
            return shard_stats_of(model, model.database.schema)

    def fingerprint(self) -> str:
        try:
            return self.pool.call(self.worker_id,
                                  FingerprintRequest(self.token))
        except WorkerError:
            self.pool.ensure_alive(self.worker_id)
            return self._local_model().fingerprint()

    def model_size_bytes(self) -> int:
        try:
            return self.pool.call(self.worker_id,
                                  ModelSizeRequest(self.token))
        except WorkerError:
            self.pool.ensure_alive(self.worker_id)
            return self._local_model().model_size_bytes()

    def __repr__(self) -> str:
        return (f"RemoteShardModel(shard={self.shard_index}, "
                f"worker={self.worker_id}, token={self.token!r})")


class _RemoteTableEstimator:
    """Per-table probe surface of one :class:`RemoteShardModel` (what
    the inherited update path reads for post-delete row counts)."""

    def __init__(self, remote: RemoteShardModel, table_name: str):
        self._remote = remote
        self._table_name = table_name

    def estimate_row_count(self, pred) -> float:
        return self._remote.probe(self._table_name, pred, (), True).total

    def key_distribution(self, column: str, pred) -> np.ndarray:
        return self._remote.probe(self._table_name, pred, (column,),
                                  False).dists[column]


def _probe_in_context(ctx, remote: RemoteShardModel, table: str, pred,
                      columns, want_total: bool) -> ProbeResult:
    """Executor-thread shim for one fanned-out probe: pool executor
    threads do not inherit the request thread's trace context, so the
    caller captures it and this re-activates it around the probe —
    the rpc and worker spans then nest under the request."""
    with use_context(ctx):
        return remote.probe(table, pred, columns, want_total)


def merge_probe_results(results, columns, binnings,
                        want_total: bool):
    """Sum per-shard probe answers — ``results`` ordered by shard index
    — into ``(total, dists)``.

    The single definition of the cluster's merge: a plain float sum for
    totals and a float64 zero-initialized accumulation per column,
    exactly mirroring the in-process
    :class:`~repro.shard.ensemble.EnsembleTableEstimator` loops, which
    is what makes cluster answers bit-identical.  Both the per-probe
    path and the batched prefetch call this.
    """
    total = (float(sum(result.total for result in results))
             if want_total else None)
    dists = {}
    for column in columns:
        acc = np.zeros(binnings[column].n_bins, dtype=np.float64)
        for result in results:
            acc += result.dists[column]
        dists[column] = acc
    return total, dists


class ClusterTableEstimator(EnsembleTableEstimator):
    """Ensemble-table facade whose per-shard reads go through workers.

    Overrides exactly the two probe methods; pruning, policy hints, and
    capability reporting are inherited.  Probes fan out across the
    candidate shards in parallel (one thread per worker) and merge in
    shard-index order, so sums are bit-identical to the in-process
    serial loop.  Answers are memoized per filter under the current
    ensemble state — a new state builds new estimators, so memoized
    probes can never survive an update or hot-swap.
    """

    name = "cluster"

    #: Per-estimator probe memo bound (per published ensemble state).
    MAX_PROBE_CACHE = 1024

    def __init__(self, *args):
        super().__init__(*args)
        self._probe_lock = threading.Lock()
        self._probe_cache: OrderedDict = OrderedDict()

    # -- memo -----------------------------------------------------------------

    def missing_requirements(self, pred, columns: tuple,
                             want_total: bool = True):
        """``(columns_needed, total_needed)`` not yet memoized for
        ``pred`` (the driver's batched prefetch plans with this)."""
        with self._probe_lock:
            entry = self._probe_cache.get(pred)
            if entry is None:
                return tuple(columns), want_total
            cols = tuple(c for c in columns if c not in entry["dists"])
            return cols, want_total and entry["total"] is None

    def store_probe(self, pred, total, dists: dict) -> None:
        """Memoize shard-summed probe results for ``pred``."""
        with self._probe_lock:
            entry = self._probe_cache.get(pred)
            if entry is None:
                entry = {"total": None, "dists": {}}
                self._probe_cache[pred] = entry
            if total is not None:
                entry["total"] = float(total)
            entry["dists"].update(dists)
            self._probe_cache.move_to_end(pred)
            while len(self._probe_cache) > self.MAX_PROBE_CACHE:
                self._probe_cache.popitem(last=False)

    # -- probes ---------------------------------------------------------------

    def _remotes(self, shard_ids) -> list[RemoteShardModel]:
        return [self._shard_set.model(index) for index in shard_ids]

    def fetch(self, pred, columns: tuple, want_total: bool):
        """Fan one probe out across the candidate shards and merge."""
        remotes = self._remotes(self.candidate_shards(pred))
        if len(remotes) <= 1:
            results = [remote.probe(self._table_name, pred, columns,
                                    want_total) for remote in remotes]
        else:
            pool = remotes[0].pool
            ctx = capture_context()
            futures = [pool.spawn(_probe_in_context, ctx, remote,
                                  self._table_name, pred, columns,
                                  want_total)
                       for remote in remotes]
            results = [future.result() for future in futures]
        return merge_probe_results(results, columns, self._binnings,
                                   want_total)

    def _ensure(self, pred, columns: tuple, want_total: bool):
        cols_needed, total_needed = self.missing_requirements(
            pred, columns, want_total)
        if cols_needed or total_needed:
            total, dists = self.fetch(pred, cols_needed, total_needed)
            self.store_probe(pred, total, dists)
        with self._probe_lock:
            entry = self._probe_cache.get(pred)
            if entry is not None and all(c in entry["dists"]
                                         for c in columns) and (
                    not want_total or entry["total"] is not None):
                return (entry["total"],
                        {c: entry["dists"][c] for c in columns})
        # evicted under memory pressure mid-flight: answer directly
        return self.fetch(pred, tuple(columns), want_total)

    def estimate_row_count(self, pred) -> float:
        total, _ = self._ensure(pred, (), True)
        return total

    def key_distribution(self, column: str, pred) -> np.ndarray:
        _, dists = self._ensure(pred, (column,), False)
        return dists[column].copy()


class ClusterModel(ShardedFactorJoin):
    """A served ensemble whose shards live in worker processes.

    Build with :meth:`from_artifact`; everything online — ``estimate``,
    ``estimate_subplans``, ``open_session``, routed ``update``,
    ``capabilities`` — is the inherited ensemble surface over
    worker-backed shard slots, plus :meth:`hot_swap_shard` for
    republishing one shard and :meth:`workers_health` for the pool.
    The registry, :class:`~repro.serve.service.EstimationService`, and
    the ``/v1`` routes serve it unchanged.
    """

    table_estimator_cls = ClusterTableEstimator

    def __init__(self, *args, **kwargs):
        raise TypeError(
            "ClusterModel serves a saved ensemble artifact; build one "
            "with ClusterModel.from_artifact(path, workers=N)")

    @classmethod
    def from_artifact(cls, path, *, workers: int | None = None,
                      pool: WorkerPool | None = None,
                      expected_schema=None,
                      timeout: float = DEFAULT_TIMEOUT,
                      inline: bool = False) -> "ClusterModel":
        """Serve the ensemble artifact at ``path`` through a worker pool.

        ``workers`` defaults to one process per shard; fewer workers
        host shard groups (shard *i* on worker ``i % workers``).  Shard
        sub-artifacts are registered with the workers **lazily** — a
        worker deserializes a shard the first time a query needs it.
        Pass a shared ``pool`` to host several cluster models on one set
        of processes (the pool then outlives :meth:`close`).
        """
        payload, shard_dirs, _ = read_ensemble(
            path, expected_schema=expected_schema)
        if not shard_dirs:
            raise ReproError(f"ensemble at {path} has no shards to serve")
        owns_pool = pool is None
        if pool is None:
            pool = WorkerPool(min(workers or len(shard_dirs),
                                  len(shard_dirs)),
                              timeout=timeout, inline=inline)
        ledgers = _LedgerBook()
        local_models: dict[str, object] = {}
        slots = []
        try:
            for index, shard_dir in enumerate(shard_dirs):
                token = _new_token(index)
                worker_id = pool.owner_of(index)
                ledgers.set(token, _Ledger(index, str(shard_dir)))
                pool.call(worker_id, LoadShard(token, str(shard_dir),
                                               index))
                slots.append(RemoteShardModel(pool, worker_id, index,
                                              token, ledgers,
                                              local_models))
        except Exception:
            if owns_pool:
                pool.shutdown()
            raise
        model = cls.from_shared_state(payload, slots)
        model._pool = pool
        model._owns_pool = owns_pool
        model._ledgers = ledgers
        model._local_models = local_models
        model._artifact_path = str(path)
        # hooks accumulate per model, so several cluster models can share
        # one pool and each reseeds its own tokens after a restart
        pool.add_restart_hook(model._reseed_worker)
        return model

    # -- worker lifecycle ------------------------------------------------------

    @property
    def pool(self) -> WorkerPool:
        return self._pool

    def workers_health(self) -> list[dict]:
        """Ping every worker (see :meth:`WorkerPool.health`)."""
        return self._pool.health()

    def collect_metrics(self, model_name: str = "") -> list:
        """Scrape-time metric families for ``GET /metrics`` (the serving
        layer calls this hook on every published model that has one):
        per-worker liveness gauges and restart counters, read from the
        pool's cheap :meth:`WorkerPool.describe` — no pings, so a scrape
        never blocks behind a hung worker."""
        description = self._pool.describe()
        up, restarts = [], []
        for row in description["workers"]:
            labels = {"model": model_name, "worker": str(row["worker"])}
            up.append((labels, 1.0 if row["alive"] else 0.0))
            restarts.append((labels, float(row["restarts"])))
        return [
            ("gauge", "repro_worker_up",
             "Shard worker liveness (1 serving, 0 awaiting restart).", up),
            ("counter", "repro_worker_restarts_total",
             "Crashed shard workers replaced by the pool.", restarts),
        ]

    def _reseed_worker(self, worker_id: int) -> None:
        """Rebuild every live shard-state token a restarted worker owns
        (the pool's ``on_restart`` hook)."""
        for token, ledger in self._ledgers.snapshot():
            if self._pool.owner_of(ledger.shard_index) == worker_id:
                _reseed_token(self._pool, worker_id, token, ledger)

    def close(self) -> None:
        """Detach from the pool: deregister the reseed hook, and shut
        the pool down when this model owns it (a shared pool keeps
        running for its other models)."""
        self._pool.remove_restart_hook(self._reseed_worker)
        if getattr(self, "_owns_pool", False):
            self._pool.shutdown()

    def __enter__(self) -> "ClusterModel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- estimation (batched per-query prefetch, then inherited inference) -----

    def estimate(self, query: Query) -> float:
        state = self._require_state()
        with trace_span("session.prep"):
            self._prefetch(state, query)
        with trace_span("bound.fold"):
            return state.merged.estimate(query)

    def estimate_subplans(self, query: Query, min_tables: int = 1,
                          progressive: bool = True) -> dict[frozenset, float]:
        state = self._require_state()
        with trace_span("session.prep"):
            self._prefetch(state, query)
        with trace_span("bound.fold"):
            return state.merged.estimate_subplans(
                query, min_tables=min_tables, progressive=progressive)

    def open_session(self, query: Query):
        """Prepared sub-plan probing: the query's per-alias key-group
        probes ship to the workers once (one batch per worker), and
        every session probe after that combines the primed factors in
        the driver — no further RPC."""
        state = self._require_state()
        with trace_span("session.prep"):
            self._prefetch(state, query)
        return state.merged.open_session(query)

    def base_factor(self, query: Query, alias: str, groups_q=None):
        state = self._require_state()
        with trace_span("session.prep"):
            self._prefetch(state, query)
        return state.merged.base_factor(query, alias, groups_q)

    def _prefetch(self, state, query: Query) -> None:
        """Ship every probe the query's base factors will need — one
        batch per worker, in parallel — and prime the estimators.

        Best-effort: anything this cannot plan (unsupported queries,
        exotic predicates) simply falls through to the per-probe path,
        which computes the same numbers one round trip at a time.
        """
        try:
            groups_q = query_key_groups(query)
        except ReproError:
            return
        # one requirement per (table, filter): several aliases of one
        # table with one filter share probes, exactly as the in-process
        # estimator would recompute them identically
        requirements: dict = {}
        for alias in query.aliases:
            table_name = query.table_of(alias)
            pred = query.filter_of(alias)
            columns: list[str] = []
            for var in groups_q.vars_of_alias(alias):
                for ref in groups_q.refs_of(alias, var):
                    if ref.column not in columns:
                        columns.append(ref.column)
            key = (table_name, pred)
            if key in requirements:
                merged_cols = requirements[key]
                for column in columns:
                    if column not in merged_cols:
                        merged_cols.append(column)
            else:
                requirements[key] = columns
        plan = []  # (estimator, pred, cols_needed, total_needed, shards)
        for (table_name, pred), columns in requirements.items():
            estimator = state.merged.table_estimator(table_name)
            cols_needed, total_needed = estimator.missing_requirements(
                pred, tuple(columns))
            if not cols_needed and not total_needed:
                continue
            plan.append((estimator, pred, cols_needed, total_needed,
                         estimator.candidate_shards(pred)))
        if not plan:
            return
        # group by worker: each worker answers all its shards' probes in
        # one round trip
        per_worker: dict[int, list] = {}
        for probe_id, (estimator, pred, cols, total_needed,
                       shards) in enumerate(plan):
            for shard_index in shards:
                remote = state.shard_set.model(shard_index)
                item = ProbeItem(remote.token, estimator._table_name,
                                 pred, cols, total_needed)
                per_worker.setdefault(remote.worker_id, []).append(
                    (probe_id, shard_index, remote, item))
        ctx = capture_context()
        futures = {
            worker_id: self._pool.spawn(self._batch_in_context, ctx,
                                        worker_id, entries)
            for worker_id, entries in per_worker.items()
        }
        by_probe: dict[tuple[int, int], ProbeResult] = {}
        for worker_id, future in futures.items():
            for (probe_id, shard_index, _, _), result in zip(
                    per_worker[worker_id], future.result()):
                by_probe[(probe_id, shard_index)] = result
        for probe_id, (estimator, pred, cols, total_needed,
                       shards) in enumerate(plan):
            ordered = [by_probe[(probe_id, s)] for s in shards]
            total, dists = merge_probe_results(ordered, cols,
                                               estimator._binnings,
                                               total_needed)
            estimator.store_probe(pred, total, dists)

    def _batch_in_context(self, ctx, worker_id: int, entries: list) -> list:
        """Executor-thread shim for one worker's prefetch batch:
        re-activates the request's trace context on the fan-out thread
        and wraps the batch in a per-worker span, so the rpc round trip
        and the worker's own span nest under the request."""
        with use_context(ctx):
            with trace_span("probe.fanout", worker=worker_id,
                            probes=len(entries)):
                return self._call_batch(worker_id, entries)

    def _call_batch(self, worker_id: int, entries: list) -> list:
        """One worker's batch; on a crash, restart it and answer each
        item in-process from its shard's ledger."""
        try:
            return list(self._pool.call(
                worker_id, BatchProbe(tuple(item for *_, item in entries))))
        except WorkerError:
            self._pool.ensure_alive(worker_id)
            with trace_span("probe.retry", retried=True,
                            restarted_worker=worker_id):
                return [remote.local_probe(item)
                        for _, _, remote, item in entries]

    # -- hot swap --------------------------------------------------------------

    def _swap_parts(self, state, index: int, replacement,
                    summary: ShardSummary | None):
        """Cluster resolution of a hot-swap replacement (see
        :meth:`ShardedFactorJoin.hot_swap_shard` for the shared
        skeleton): the owning worker loads the refreshed sub-artifact as
        a new token, and the new slot is a worker-backed proxy.
        In-flight estimates stay pinned to the outgoing token (the
        worker keeps it until they finish) and the other shards'
        worker-side models and driver-side probe memos are untouched.
        """
        if not isinstance(replacement, (str, Path)):
            raise UnsupportedOperationError(
                "a cluster hot-swap takes a shard artifact directory "
                "(the owning worker loads it); save the refreshed shard "
                "with repro.shard.save_shard_artifact first")
        path = Path(replacement)
        if summary is None:
            summary = load_shard_summary(path) or ShardSummary({})
        old_stats = state.shard_set.model(index).shard_stats()
        worker_id = self._pool.owner_of(index)
        token = _new_token(index)
        ledger = _Ledger(index, str(path))
        self._ledgers.set(token, ledger)
        try:
            try:
                self._pool.call(worker_id, LoadShard(token, str(path),
                                                     index))
                new_stats = self._pool.call(worker_id,
                                            ShardStatsRequest(token))
            except WorkerError:
                self._pool.ensure_alive(worker_id)
                model = _materialize_ledger(ledger)
                self._local_models[token] = model
                new_stats = shard_stats_of(model, model.database.schema)
        except Exception:
            # a bad replacement (corrupt/missing artifact) publishes
            # nothing — and must not leak its provisional token
            _release_token(self._pool, worker_id, token,
                           self._ledgers, self._local_models)
            raise
        slot = RemoteShardModel(self._pool, worker_id, index, token,
                                self._ledgers, self._local_models)
        return slot, old_stats, new_stats, summary, {"artifact": str(path)}

    # -- protocol / introspection ----------------------------------------------

    def capabilities(self):
        """The ensemble's declared capabilities under the cluster's
        family name."""
        return _replace(super().capabilities(), name="factorjoin-cluster")

    def describe(self) -> dict:
        base = super().describe()
        base.update(kind="ClusterModel", artifact=self._artifact_path,
                    cluster=self._pool.describe())
        return base

    # -- blocked persistence surface -------------------------------------------

    def fit(self, database):
        raise UnsupportedOperationError(
            "a ClusterModel serves a fitted artifact; fit with "
            "ShardedFactorJoin.fit (or repro.cluster.fit_distributed), "
            "save it, then ClusterModel.from_artifact")

    def save(self, path, name=None, compress=False):
        raise UnsupportedOperationError(
            "a ClusterModel is a serving facade over the ensemble "
            "artifact it was opened from; copy or refresh that artifact "
            "instead of saving the facade")

    def __getstate__(self):
        raise UnsupportedOperationError(
            "ClusterModel holds worker processes and cannot be pickled; "
            "reopen with ClusterModel.from_artifact")
