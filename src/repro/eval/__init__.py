"""Evaluation utilities: metrics, experiment harness, report rendering."""

from repro.eval.metrics import (
    improvement_over,
    overestimation_fraction,
    q_error,
    relative_error_percentiles,
)
from repro.eval.harness import (
    ExperimentContext,
    default_methods,
    make_context,
    run_end_to_end,
)

__all__ = [
    "default_methods",
    "ExperimentContext",
    "improvement_over",
    "make_context",
    "overestimation_fraction",
    "q_error",
    "relative_error_percentiles",
    "run_end_to_end",
]
