"""Exporters: Prometheus text exposition and JSONL trace dumps.

:func:`render_prometheus` turns a registry's collected families into the
`text exposition format`_ served at ``GET /metrics``;
:func:`parse_prometheus_text` is the matching structural validator the
CI scrape check runs against a live scrape, so a malformed rendering
fails the build rather than a Prometheus server.  Histograms are
rendered the Prometheus way — cumulative ``le`` buckets ending in
``+Inf`` plus ``_sum``/``_count`` — from the exact quantized streams the
registry keeps, so scraped percentiles and ``/v1/stats`` percentiles
agree.

.. _text exposition format:
   https://prometheus.io/docs/instrumenting/exposition_formats/
"""

from __future__ import annotations

import json
import math
import re
import threading

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^ ]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _escape_label(value) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_str(labels: dict, extra: tuple | None = None) -> str:
    items = sorted(labels.items())
    if extra is not None:
        items = items + [extra]
    if not items:
        return ""
    body = ",".join(f'{key}="{_escape_label(value)}"'
                    for key, value in items)
    return "{" + body + "}"


def render_prometheus(families) -> str:
    """Render collected metric families as Prometheus text exposition.

    ``families`` is what :meth:`MetricsRegistry.collect` yields:
    ``(kind, name, help, samples)`` where samples are
    ``(labels, value)`` pairs for counters/gauges and
    ``(labels, (count, total, counts), buckets)`` triples for
    histograms (``counts`` being the quantized value→count dict).
    """
    lines: list[str] = []
    for kind, name, help_text, samples in families:
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            for labels, (count, total, counts), buckets in samples:
                cumulative = 0
                remaining = sorted(counts.items())
                index = 0
                for bound in buckets:
                    while (index < len(remaining)
                           and remaining[index][0] <= bound):
                        cumulative += remaining[index][1]
                        index += 1
                    lines.append(
                        f"{name}_bucket"
                        f"{_label_str(labels, ('le', _format_value(bound)))}"
                        f" {cumulative}")
                lines.append(
                    f'{name}_bucket{_label_str(labels, ("le", "+Inf"))}'
                    f" {count}")
                lines.append(
                    f"{name}_sum{_label_str(labels)}"
                    f" {_format_value(total)}")
                lines.append(f"{name}_count{_label_str(labels)} {count}")
        else:
            for labels, value in samples:
                lines.append(
                    f"{name}{_label_str(labels)} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict:
    """Structurally validate Prometheus text exposition; the CI scrape
    check runs this over a live ``GET /metrics`` body.

    Returns ``{metric name: {"type": ..., "help": ..., "samples":
    [(name, labels, value)]}}`` keyed by family, raising ``ValueError``
    on any malformed line, unknown sample name, non-float value, or a
    histogram whose cumulative ``le`` buckets decrease.
    """
    families: dict[str, dict] = {}
    typed: dict[str, str] = {}

    def family_of(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            base = sample_name[:-len(suffix)] if sample_name.endswith(
                suffix) else None
            if base and base in typed:
                return base
        return sample_name

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            if not parts or not _NAME_RE.fullmatch(parts[0]):
                raise ValueError(f"line {lineno}: malformed HELP: {raw!r}")
            families.setdefault(parts[0], {
                "type": None, "help": None, "samples": []})
            families[parts[0]]["help"] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(" ")
            if (len(parts) != 2 or not _NAME_RE.fullmatch(parts[0])
                    or parts[1] not in ("counter", "gauge", "histogram",
                                        "summary", "untyped")):
                raise ValueError(f"line {lineno}: malformed TYPE: {raw!r}")
            families.setdefault(parts[0], {
                "type": None, "help": None, "samples": []})
            families[parts[0]]["type"] = parts[1]
            typed[parts[0]] = parts[1]
            continue
        if line.startswith("#"):
            continue
        match = _LINE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {raw!r}")
        sample_name = match.group("name")
        label_text = match.group("labels")
        labels: dict[str, str] = {}
        if label_text:
            consumed = 0
            for label in _LABEL_RE.finditer(label_text):
                labels[label.group("key")] = label.group("value")
                consumed = label.end()
            rest = label_text[consumed:].strip().strip(",")
            if rest:
                raise ValueError(
                    f"line {lineno}: malformed labels: {raw!r}")
        value_text = match.group("value")
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        elif value_text == "NaN":
            value = math.nan
        else:
            try:
                value = float(value_text)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: non-numeric value: {raw!r}") from None
        base = family_of(sample_name)
        family = families.get(base)
        if family is None:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} precedes its "
                f"TYPE line")
        if typed.get(base) == "histogram":
            if not (sample_name == base + "_bucket"
                    or sample_name == base + "_sum"
                    or sample_name == base + "_count"):
                raise ValueError(
                    f"line {lineno}: bad histogram sample "
                    f"{sample_name!r}")
            if sample_name.endswith("_bucket") and "le" not in labels:
                raise ValueError(
                    f"line {lineno}: histogram bucket without le label")
        family["samples"].append((sample_name, labels, value))

    for base, family in families.items():
        if family["type"] != "histogram":
            continue
        series: dict[tuple, list] = {}
        for sample_name, labels, value in family["samples"]:
            if not sample_name.endswith("_bucket"):
                continue
            key = tuple(sorted((k, v) for k, v in labels.items()
                               if k != "le"))
            bound = (math.inf if labels["le"] == "+Inf"
                     else float(labels["le"]))
            series.setdefault(key, []).append((bound, value))
        for key, points in series.items():
            points.sort()
            last = -1.0
            for bound, cumulative in points:
                if cumulative < last:
                    raise ValueError(
                        f"histogram {base!r}{dict(key)}: cumulative "
                        f"bucket counts decrease at le={bound}")
                last = cumulative
            if points and points[-1][0] != math.inf:
                raise ValueError(
                    f"histogram {base!r}: missing le=+Inf bucket")
    return families


class _JsonlWriter:
    """Append-only JSONL file with size-capped rotation — the shared
    machinery behind the trace and alert-event exporters.

    With ``max_bytes`` set, the log rolls over before a write would
    exceed the limit: the current file is renamed to ``<path>.1``
    (replacing any previous rollover) and a fresh file is started, so
    disk usage stays bounded at roughly twice ``max_bytes`` with the
    most recent records always available.
    """

    def __init__(self, path: str, max_bytes: int | None = None):
        self.path = str(path)
        self.max_bytes = int(max_bytes) if max_bytes else None
        self._lock = threading.Lock()
        self._fh = open(self.path, "a", encoding="utf-8")

    def write_json(self, payload: dict) -> None:
        """Append ``payload`` as one compact JSON line (rotating
        first if the write would exceed ``max_bytes``)."""
        line = json.dumps(payload, default=str, separators=(",", ":"))
        with self._lock:
            if (self.max_bytes is not None
                    and self._fh.tell() > 0
                    and self._fh.tell() + len(line) + 1 > self.max_bytes):
                self._rotate()
            self._fh.write(line + "\n")
            self._fh.flush()

    def _rotate(self) -> None:
        import os

        self._fh.close()
        os.replace(self.path, self.path + ".1")
        self._fh = open(self.path, "w", encoding="utf-8")

    def close(self) -> None:
        """Flush and close the file (``repro serve`` calls this on
        shutdown so SIGINT never drops buffered records)."""
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


class JsonlTraceExporter(_JsonlWriter):
    """Appends one JSON line per finished trace to a file
    (``repro serve --trace-log FILE``); see :class:`_JsonlWriter` for
    the rotation contract."""

    def export(self, record) -> None:
        self.write_json(record.to_json())


class JsonlEventExporter(_JsonlWriter):
    """Appends one JSON line per alert transition event to a file
    (``repro serve --alert-log FILE``); same rotation contract as the
    trace exporter."""

    def export(self, event: dict) -> None:
        self.write_json(event)
