"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_summary_defaults(self):
        args = build_parser().parse_args(["summary"])
        assert args.benchmark == "stats"
        assert args.scale == 0.1

    def test_estimate_requires_sql(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate"])


class TestCommands:
    def test_summary_prints_table(self, capsys):
        code = main(["summary", "--scale", "0.02", "--queries", "4",
                     "--max-tables", "3", "--seed", "21"])
        out = capsys.readouterr().out
        assert code == 0
        assert "STATS-CEB summary" in out
        assert "num_key_groups" in out

    def test_estimate_with_truth(self, capsys):
        code = main([
            "estimate",
            "SELECT COUNT(*) FROM posts p, comments c "
            "WHERE p.id = c.post_id AND p.score > 0",
            "--scale", "0.02", "--queries", "4", "--max-tables", "3",
            "--seed", "21", "--bins", "4", "--true",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "estimate:" in out
        assert "est/true" in out

    def test_estimate_truescan(self, capsys):
        code = main([
            "estimate",
            "SELECT COUNT(*) FROM users u, badges b WHERE u.id = b.user_id",
            "--scale", "0.02", "--queries", "4", "--max-tables", "3",
            "--seed", "21", "--estimator", "truescan",
        ])
        assert code == 0
        assert "estimate:" in capsys.readouterr().out
