"""Plugging a custom single-table estimator into FactorJoin.

The paper (Section 3.3): "In principle, any single-table CardEst method
that is able to provide conditional distributions can be adapted into
FactorJoin."  This example registers a deliberately crude estimator — a
group-by cache over one filter column — and runs it through the framework.

Run:  python examples/custom_estimator.py
"""

import os
import sys

import numpy as np

from repro.core.estimator import FactorJoin, FactorJoinConfig
from repro.engine import CardinalityExecutor
from repro.engine.filter import evaluate_predicate
from repro.estimators.base import BaseTableEstimator, register_estimator
from repro.sql import parse_query
from repro.sql.predicates import TruePredicate

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from quickstart import build_database  # noqa: E402


@register_estimator
class CrudeGroupByEstimator(BaseTableEstimator):
    """Exact row counts, but key distributions ignore the filter entirely.

    (Equivalent to assuming full independence between filters and join
    keys — plugging it in shows how much the conditional distributions
    contribute, the "with Conditional" effect of the paper's Table 8.)
    """

    name = "crude-groupby"

    def fit(self, table, schema, key_binnings):
        self._table = table
        self._binnings = dict(key_binnings)
        self._unconditional = {}
        for column, binning in key_binnings.items():
            col = table[column]
            bins = binning.assign(col.values[~col.null_mask])
            self._unconditional[column] = np.bincount(
                bins, minlength=binning.n_bins).astype(float)
        return self

    def estimate_row_count(self, pred):
        if isinstance(pred, TruePredicate):
            return float(len(self._table))
        return float(evaluate_predicate(pred, self._table).sum())

    def key_distribution(self, column, pred):
        selectivity = self.estimate_row_count(pred) / max(
            len(self._table), 1)
        return self._unconditional[column] * selectivity


def main() -> None:
    db = build_database()
    executor = CardinalityExecutor(db)
    sql = ("SELECT COUNT(*) FROM users u, orders o "
           "WHERE u.id = o.user_id AND u.age < 25")
    query = parse_query(sql)
    true = executor.cardinality(query)

    print(f"query: {sql}\ntrue cardinality: {true:,.0f}\n")
    for estimator in ("crude-groupby", "bayescard", "truescan"):
        model = FactorJoin(FactorJoinConfig(
            n_bins=32, table_estimator=estimator))
        model.fit(db)
        est = model.estimate(query)
        print(f"{estimator:>14}: estimate {est:>12,.0f}   "
              f"est/true {est / true:.2f}")


if __name__ == "__main__":
    main()
