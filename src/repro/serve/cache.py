"""Two-level LRU cache of estimates: query fingerprints + sub-plan table.

Optimizers re-ask the same cardinalities constantly (every DP enumeration
revisits the same sub-plans; dashboards re-issue identical templates), and
FactorJoin's estimates are deterministic given a fitted model — so caching
turns repeated sub-millisecond inference into microsecond lookups.

The cache has two levels:

- **query level** — exact request fingerprints (sorted table set,
  normalized join conditions, normalized predicates via
  :meth:`repro.sql.query.Query.signature`, plus the request shape), so
  syntactic permutations of one request share an entry;
- **sub-plan level** — canonical, alias-renaming-invariant
  (table-set, predicate, join-structure) keys from
  :meth:`repro.sql.query.Query.subplan_key`.  Every answered estimate and
  every entry of a sub-plan map lands here, so a *different* query that
  contains (or equals) a previously served sub-plan is answered without
  touching the model — the cross-request reuse FactorJoin's per-sub-plan
  decomposition makes possible.

The two levels keep separate hit/miss counters (``stats()``), so benchmark
numbers for whole-query caching and sub-plan reuse are never conflated.

Entries are only valid for one model version: the serving layer keeps one
cache per model name and invalidates it on every registry swap or
in-place ``update()``.  Invalidation clears both levels atomically, and
the stamped-put mechanism (see :meth:`EstimateCache.put`) covers both, so
a slow computation racing a model update can never resurrect pre-update
state at either level.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.sql.query import Query


def query_fingerprint(query: Query, request: tuple = ()) -> tuple:
    """Hashable canonical identity of an estimation request.

    ``request`` distinguishes request shapes that share a query but not an
    answer (e.g. ``("subplans", min_tables)`` vs a plain estimate).
    """
    return request + query.signature()


class EstimateCache:
    """Bounded two-level LRU (query fingerprints + sub-plan table).

    All operations take the cache lock; they are dict manipulations, so the
    critical sections are tiny compared to even a cached model inference.

    Parameters
    ----------
    max_size:
        Query-level entry bound.
    subplan_max_size:
        Sub-plan-table entry bound; defaults to ``8 * max_size`` (one
        served query typically contributes several sub-plans).
    """

    def __init__(self, max_size: int = 1024,
                 subplan_max_size: int | None = None):
        if max_size < 1:
            raise ValueError("cache max_size must be >= 1")
        if subplan_max_size is None:
            subplan_max_size = 8 * max_size
        if subplan_max_size < 1:
            raise ValueError("cache subplan_max_size must be >= 1")
        self.max_size = max_size
        self.subplan_max_size = subplan_max_size
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._subplans: OrderedDict[tuple, float] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.subplan_hits = 0
        self.subplan_misses = 0
        self.subplan_evictions = 0
        self.invalidations = 0

    _MISSING = object()

    # -- query level -----------------------------------------------------------

    def get(self, key: tuple):
        """The cached value, or None on a miss (estimates are floats > 0 or
        dicts, so None is unambiguous)."""
        with self._lock:
            value = self._entries.get(key, self._MISSING)
            if value is self._MISSING:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: tuple, value, stamp: int | None = None) -> None:
        """Insert ``key``; with ``stamp`` (an invalidation count observed
        before computing ``value``), the put is dropped when an
        invalidation happened in between — a slow computation racing an
        ``update()`` must not resurrect pre-update state."""
        with self._lock:
            if stamp is not None and stamp != self.invalidations:
                return
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self.evictions += 1

    # -- sub-plan level --------------------------------------------------------

    def get_subplan(self, key: tuple):
        """The cached sub-plan estimate for a canonical
        :meth:`~repro.sql.query.Query.subplan_key`, or None on a miss."""
        with self._lock:
            value = self._subplans.get(key, self._MISSING)
            if value is self._MISSING:
                self.subplan_misses += 1
                return None
            self._subplans.move_to_end(key)
            self.subplan_hits += 1
            return value

    def lookup_subplans(self, keys: list[tuple]):
        """All-or-nothing batch lookup: ``{key: value}`` when *every* key
        is present, else None.

        Used to assemble a full sub-plan map from previously served
        entries; a partial set is useless there (the model recomputes the
        whole map anyway), so hits are only counted when the assembly
        succeeds, and on failure only the absent keys count as misses —
        keeping the counters an honest measure of avoided inference.
        """
        with self._lock:
            absent = [k for k in keys if k not in self._subplans]
            if absent:
                self.subplan_misses += len(absent)
                return None
            out = {}
            for key in keys:
                self._subplans.move_to_end(key)
                out[key] = self._subplans[key]
            self.subplan_hits += len(keys)
            return out

    def put_subplan(self, key: tuple, value: float,
                    stamp: int | None = None) -> None:
        """Insert one sub-plan estimate (same stamp semantics as
        :meth:`put`)."""
        self.put_subplans({key: value}, stamp=stamp)

    def put_subplans(self, entries: dict[tuple, float],
                     stamp: int | None = None) -> None:
        """Insert a batch of sub-plan estimates under one lock acquisition
        (same stamp semantics as :meth:`put`); a batch straddling an
        invalidation is dropped whole."""
        with self._lock:
            if stamp is not None and stamp != self.invalidations:
                return
            for key, value in entries.items():
                if key in self._subplans:
                    self._subplans.move_to_end(key)
                self._subplans[key] = value
            while len(self._subplans) > self.subplan_max_size:
                self._subplans.popitem(last=False)
                self.subplan_evictions += 1

    # -- persistence -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Copyable view of both levels (see :mod:`repro.serve.snapshot`).

        Entries are returned in LRU order (least recent first) so a
        restore into a smaller cache keeps the hottest ones.
        """
        with self._lock:
            return {
                "entries": list(self._entries.items()),
                "subplans": list(self._subplans.items()),
            }

    def restore(self, snapshot: dict, stamp: int | None = None) -> dict:
        """Refill both levels from a :meth:`snapshot` payload.

        Existing entries are kept (restored ones overwrite on key
        collision); bounds are enforced, so restoring a snapshot larger
        than the cache keeps its most-recent tail.  Returns counts of
        restored entries per level, plus ``dropped``.  Callers are
        responsible for only restoring snapshots taken against the
        *same* model version — the serving layer stamps snapshots with a
        model fingerprint (:func:`repro.serve.snapshot.save_snapshot`)
        for exactly that, and passes the invalidation ``stamp`` it
        observed when it verified the fingerprint: like :meth:`put`, a
        restore racing an invalidation is dropped whole rather than
        resurrecting pre-update entries.
        """
        entries = list(snapshot.get("entries", ()))
        subplans = list(snapshot.get("subplans", ()))
        with self._lock:
            if stamp is not None and stamp != self.invalidations:
                return {"entries": 0, "subplans": 0, "dropped": True}
            for key, value in entries:
                self._entries[key] = value
                self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
            for key, value in subplans:
                self._subplans[key] = value
                self._subplans.move_to_end(key)
            while len(self._subplans) > self.subplan_max_size:
                self._subplans.popitem(last=False)
            # report what actually survived bound enforcement, not the
            # snapshot's size — operators read these to judge warm-start
            # coverage
            kept_entries = sum(1 for key, _ in entries
                               if key in self._entries)
            kept_subplans = sum(1 for key, _ in subplans
                                if key in self._subplans)
        return {"entries": kept_entries, "subplans": kept_subplans,
                "dropped": False}

    # -- lifecycle -------------------------------------------------------------

    def invalidate(self) -> None:
        """Drop every entry at both levels (model swapped or updated in
        place); bumps the invalidation stamp so in-flight puts drop."""
        with self._lock:
            self._entries.clear()
            self._subplans.clear()
            self.invalidations += 1

    def __len__(self) -> int:
        """Number of query-level entries (see ``stats()['subplan_size']``
        for the sub-plan table)."""
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """JSON-ready counters, split by level: ``hits``/``misses``/
        ``hit_rate`` are query-level; ``subplan_*`` mirror them for the
        sub-plan table."""
        with self._lock:
            lookups = self.hits + self.misses
            sub_lookups = self.subplan_hits + self.subplan_misses
            return {
                "size": len(self._entries),
                "max_size": self.max_size,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / lookups if lookups else 0.0,
                "evictions": self.evictions,
                "subplan_size": len(self._subplans),
                "subplan_max_size": self.subplan_max_size,
                "subplan_hits": self.subplan_hits,
                "subplan_misses": self.subplan_misses,
                "subplan_hit_rate": (self.subplan_hits / sub_lookups
                                     if sub_lookups else 0.0),
                "subplan_evictions": self.subplan_evictions,
                "invalidations": self.invalidations,
            }
