"""Cluster layer: multi-process shard workers behind one model surface.

The sharding layer (:mod:`repro.shard`) made shards the unit of fitting,
persistence, pruning, and update routing; this package makes them the
unit of *execution*:

- :mod:`repro.cluster.messages` — the typed RPC plane: every
  driver/worker exchange is a frozen dataclass carrying the library's
  own predicates, tables, and statistics;
- :mod:`repro.cluster.worker` — the worker process: a token-addressed
  map of shard-model versions answering probes, copy-on-write updates,
  statistics requests, and fit jobs with the exact in-process code;
- :mod:`repro.cluster.pool` — worker lifecycle behind one transport
  surface: spawn/connect, framed calls with deadlines and a
  slow-vs-dead grace window, health pings, crash detection,
  restart-with-reseed, elastic grow/retire, and an inline fallback for
  environments that cannot fork;
- :mod:`repro.cluster.net` — the TCP transport: length-prefixed frames
  over stdlib sockets, a client interchangeable with the pipe
  transport, and the ``repro worker --listen`` server for multi-host
  deployments;
- :mod:`repro.cluster.model` — :class:`ClusterModel`: a
  :class:`~repro.shard.ensemble.ShardedFactorJoin` whose shard slots are
  worker-backed proxies — bit-identical answers, per-query batched
  probe shipping, transparent in-driver crash retries, routed updates,
  and per-shard hot-swap, all behind the unchanged
  :class:`~repro.api.protocol.CardinalityModel` protocol;
- :mod:`repro.cluster.fit` — distributed fit: workers fit and save
  their shards, the driver assembles the ensemble artifact from shipped
  statistics without materializing a single shard model.

Serving plugs in unchanged: publish a :class:`ClusterModel` into the
registry (``repro serve --workers N``) and the estimation service, the
caches, and the ``/v1`` routes treat it like any other model.
"""

from repro.cluster.fit import fit_distributed
from repro.cluster.messages import (
    CompactResult,
    CompactToken,
    Ping,
    UnknownTokenError,
    WorkerInfo,
)
from repro.cluster.model import (
    ClusterModel,
    ClusterTableEstimator,
    RemoteShardModel,
)
from repro.cluster.net import (
    FrameDecoder,
    FrameError,
    TcpTransport,
    WorkerServer,
    encode_frame,
    parse_address,
)
from repro.cluster.pool import DEFAULT_TIMEOUT, WorkerPool
from repro.cluster.worker import ShardWorker, worker_main
from repro.errors import WorkerError

__all__ = [
    "ClusterModel",
    "ClusterTableEstimator",
    "CompactResult",
    "CompactToken",
    "DEFAULT_TIMEOUT",
    "encode_frame",
    "fit_distributed",
    "FrameDecoder",
    "FrameError",
    "parse_address",
    "Ping",
    "RemoteShardModel",
    "ShardWorker",
    "TcpTransport",
    "UnknownTokenError",
    "worker_main",
    "WorkerError",
    "WorkerInfo",
    "WorkerPool",
    "WorkerServer",
]
