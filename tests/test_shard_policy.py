"""Tests for sharding policies, partitioning, and predicate pruning."""

import numpy as np
import pytest

from repro.data import Column, Table
from repro.errors import ReproError
from repro.shard import (
    HashShardingPolicy,
    RangeShardingPolicy,
    ShardingPolicy,
    make_policy,
    partition_database,
    predicate_excludes,
    split_rows,
)
from repro.shard.pruning import ColumnSummary, ShardSummary, TableSummary
from repro.sql.predicates import (
    And,
    Between,
    Comparison,
    In,
    IsNull,
    Like,
    Or,
    TruePredicate,
)


class TestPolicies:
    def test_make_policy_unknown_kind(self):
        with pytest.raises(ReproError, match="unknown sharding policy"):
            make_policy("nope", 4)

    def test_n_shards_must_be_positive(self):
        with pytest.raises(ReproError):
            HashShardingPolicy(0)

    def test_hash_assign_is_mod_on_first_key(self, toy_db):
        policy = HashShardingPolicy(4)
        table = toy_db.table("B")
        ids = policy.assign(table, toy_db.schema.table("B"))
        expected = np.mod(table["aid"].values.astype(np.int64), 4)
        assert np.array_equal(ids, expected)

    def test_hash_shard_key_override(self, toy_db):
        policy = HashShardingPolicy(4, shard_keys={"B": "cid"})
        table = toy_db.table("B")
        ids = policy.assign(table, toy_db.schema.table("B"))
        assert np.array_equal(ids, np.mod(table["cid"].values, 4))

    def test_hash_bad_override_raises(self, toy_db):
        policy = HashShardingPolicy(4, shard_keys={"B": "nope"})
        with pytest.raises(ReproError, match="not a column"):
            policy.assign(toy_db.table("B"), toy_db.schema.table("B"))

    def test_hash_null_keys_route_to_shard_zero(self, toy_db_nulls):
        policy = HashShardingPolicy(4)
        table = toy_db_nulls.table("B")
        ids = policy.assign(table, toy_db_nulls.schema.table("B"))
        assert (ids[table["aid"].null_mask] == 0).all()

    def test_hash_candidate_shards_equality_and_in(self, toy_db):
        policy = HashShardingPolicy(4)
        schema = toy_db.schema.table("B")
        assert policy.candidate_shards("B", schema,
                                       Comparison("aid", "=", 7)) == {3}
        assert policy.candidate_shards("B", schema,
                                       In("aid", [1, 5, 9])) == {1}
        # range predicates and non-key columns: no policy opinion
        assert policy.candidate_shards("B", schema,
                                       Comparison("aid", ">", 7)) is None
        assert policy.candidate_shards("B", schema,
                                       Comparison("y", "=", 2)) is None

    def test_range_assign_is_contiguous(self, toy_db):
        policy = RangeShardingPolicy(3)
        ids = policy.assign(toy_db.table("B"), toy_db.schema.table("B"))
        assert (np.diff(ids) >= 0).all()
        assert set(np.unique(ids)) == {0, 1, 2}

    def test_range_routes_inserts_to_last_shard(self, toy_db):
        policy = RangeShardingPolicy(3)
        rows = toy_db.table("B").head(5)
        ids = policy.route(rows, toy_db.schema.table("B"))
        assert (ids == 2).all()

    def test_delete_routing_capabilities(self, toy_db):
        """Deletes must be routed by row content; positional placements
        (range everywhere, hash on keyless tables) must refuse."""
        schema_b = toy_db.schema.table("B")
        hash_policy = HashShardingPolicy(4)
        assert hash_policy.can_route_deletes(schema_b)
        rows = toy_db.table("B").head(5)
        assert np.array_equal(hash_policy.route_deletes(rows, schema_b),
                              hash_policy.assign(rows, schema_b))

        range_policy = RangeShardingPolicy(3)
        assert not range_policy.routes_deletes
        assert not range_policy.can_route_deletes(schema_b)
        with pytest.raises(ReproError, match="position"):
            range_policy.route_deletes(rows, schema_b)

        from repro.data.schema import ColumnSchema, TableSchema
        from repro.data.types import DataType

        keyless = TableSchema("logs", [ColumnSchema("msg", DataType.INT)])
        assert not hash_policy.can_route_deletes(keyless)
        with pytest.raises(ReproError, match="keyless"):
            hash_policy.route_deletes(
                Table("logs", [Column("msg", [1, 2])]), keyless)

    def test_describe_round_trips_to_json(self):
        import json

        policy = HashShardingPolicy(4, shard_keys={"B": "cid"})
        desc = json.loads(json.dumps(policy.describe()))
        assert desc["kind"] == "hash"
        assert desc["n_shards"] == 4
        assert desc["shard_keys"] == {"B": "cid"}


class TestPartition:
    def test_every_row_lands_in_exactly_one_shard(self, toy_db):
        for policy in (HashShardingPolicy(4), RangeShardingPolicy(4)):
            shards = partition_database(toy_db, policy)
            assert len(shards) == 4
            for name in toy_db.table_names:
                total = sum(len(s.table(name)) for s in shards)
                assert total == len(toy_db.table(name))

    def test_shards_keep_the_full_schema(self, toy_db):
        shards = partition_database(toy_db, HashShardingPolicy(2))
        for shard in shards:
            assert shard.table_names == toy_db.table_names
            assert shard.schema is toy_db.schema

    def test_hash_colocates_equal_keys(self, toy_db):
        shards = partition_database(toy_db, HashShardingPolicy(4))
        for s, shard in enumerate(shards):
            aid = shard.table("B")["aid"].values
            assert (np.mod(aid, 4) == s).all()

    def test_bad_policy_assignment_rejected(self, toy_db):
        class Broken(ShardingPolicy):
            kind = "broken"

            def assign(self, table, schema):
                return np.full(len(table), 99, dtype=np.int64)

        with pytest.raises(ReproError, match="outside"):
            partition_database(toy_db, Broken(4))

    def test_split_rows_routes_batches(self, toy_db):
        policy = HashShardingPolicy(4)
        rows = toy_db.table("B").head(10)
        routed = split_rows(policy, rows, toy_db.schema.table("B"))
        assert sum(len(t) for t in routed.values()) == 10
        for s, part in routed.items():
            assert (np.mod(part["aid"].values, 4) == s).all()


def _summary(values, nulls=None):
    return TableSummary.of(Table("t", [Column("c", values,
                                              null_mask=nulls)]))


class TestPruning:
    def test_empty_shard_excludes_everything(self):
        empty = TableSummary(0, {})
        assert predicate_excludes(TruePredicate(), empty)
        assert predicate_excludes(Comparison("c", "=", 1), empty)

    def test_true_predicate_keeps_nonempty_shard(self):
        assert not predicate_excludes(TruePredicate(), _summary([1, 2]))

    def test_equality_outside_range_excludes(self):
        summary = _summary(list(range(40)))
        assert predicate_excludes(Comparison("c", "=", 99), summary)
        assert not predicate_excludes(Comparison("c", "=", 5), summary)

    def test_equality_against_tracked_values(self):
        summary = _summary([2, 4, 8])
        assert predicate_excludes(Comparison("c", "=", 3), summary)
        assert not predicate_excludes(Comparison("c", "=", 4), summary)

    def test_range_operators(self):
        summary = _summary([10, 20, 30])
        assert predicate_excludes(Comparison("c", "<", 10), summary)
        assert not predicate_excludes(Comparison("c", "<=", 10), summary)
        assert predicate_excludes(Comparison("c", ">", 30), summary)
        assert not predicate_excludes(Comparison("c", ">=", 30), summary)

    def test_between_and_in(self):
        summary = _summary(list(range(100)))
        assert predicate_excludes(Between("c", 200, 300), summary)
        assert not predicate_excludes(Between("c", 90, 110), summary)
        assert predicate_excludes(In("c", [150, 200]), summary)
        assert not predicate_excludes(In("c", [150, 50]), summary)

    def test_null_predicates(self):
        no_nulls = _summary([1, 2, 3])
        assert predicate_excludes(IsNull("c"), no_nulls)
        assert not predicate_excludes(IsNull("c", negated=True), no_nulls)
        all_null = _summary([0, 0], nulls=[True, True])
        assert predicate_excludes(IsNull("c", negated=True), all_null)
        assert not predicate_excludes(IsNull("c"), all_null)
        # comparisons never match NULL
        assert predicate_excludes(Comparison("c", ">", -100), all_null)

    def test_conjunction_and_disjunction(self):
        summary = _summary([1, 2, 3])
        dead = Comparison("c", "=", 99)
        alive = Comparison("c", "=", 2)
        assert predicate_excludes(And([alive, dead]), summary)
        assert not predicate_excludes(Or([alive, dead]), summary)
        assert predicate_excludes(Or([dead, dead]), summary)

    def test_unknown_and_unsupported_are_conservative(self):
        summary = _summary([1, 2, 3])
        assert not predicate_excludes(Comparison("other", "=", 99), summary)
        assert not predicate_excludes(Like("c", "%x%"), summary)

    def test_widening_after_inserts(self):
        summary = ColumnSummary.of(Column("c", [1, 2, 3]))
        wider = summary.widened_by(Column("c", [10]))
        assert wider.maximum == 10 and wider.minimum == 1
        assert 10 in wider.values

    def test_shard_summary_of_database(self, toy_db):
        summary = ShardSummary.of(toy_db)
        assert summary.table("B").row_count == len(toy_db.table("B"))
        assert summary.table("nope") is None
