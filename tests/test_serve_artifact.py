"""Tests for model artifact persistence (save/load, manifest, integrity)."""

import json

import pytest

from repro.core.estimator import FactorJoin, FactorJoinConfig
from repro.errors import ArtifactError
from repro.serve.artifact import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    MODEL_NAME,
    load_model,
    read_manifest,
    save_model,
    schema_fingerprint,
)
from repro.sql import parse_query

QUERY = parse_query(
    "SELECT COUNT(*) FROM A a, B b WHERE a.id = b.aid AND a.x > 1")


@pytest.fixture
def fitted(toy_db):
    return FactorJoin(FactorJoinConfig(n_bins=4)).fit(toy_db)


class TestSaveLoad:
    def test_round_trip_identical_estimate(self, fitted, tmp_path):
        want = fitted.estimate(QUERY)
        save_model(fitted, tmp_path / "m.fj")
        loaded = load_model(tmp_path / "m.fj")
        assert loaded.estimate(QUERY) == want

    def test_method_hooks(self, fitted, tmp_path):
        fitted.save(tmp_path / "m.fj")
        loaded = FactorJoin.load(tmp_path / "m.fj")
        assert loaded.estimate(QUERY) == fitted.estimate(QUERY)

    def test_load_verifies_expected_schema(self, fitted, tmp_path, toy_db):
        save_model(fitted, tmp_path / "m.fj")
        load_model(tmp_path / "m.fj", expected_schema=toy_db.schema)

    def test_loaded_model_still_updates(self, fitted, tmp_path, toy_db):
        save_model(fitted, tmp_path / "m.fj")
        loaded = load_model(tmp_path / "m.fj")
        loaded.update("C", toy_db.table("C").head(5))
        assert loaded.estimate(QUERY) > 0

    def test_save_unfitted_via_hook_raises(self, tmp_path):
        from repro.errors import NotFittedError
        with pytest.raises(NotFittedError):
            FactorJoin(FactorJoinConfig(n_bins=4)).save(tmp_path / "m.fj")


class TestManifest:
    def test_manifest_fields(self, fitted, tmp_path, toy_db):
        save_model(fitted, tmp_path / "m.fj", name="toy",
                   extra_metadata={"note": "test"})
        manifest = read_manifest(tmp_path / "m.fj")
        assert manifest["format_version"] == FORMAT_VERSION
        assert manifest["kind"].endswith("FactorJoin")
        assert manifest["name"] == "toy"
        assert manifest["schema_hash"] == schema_fingerprint(toy_db.schema)
        assert manifest["model_bytes"] == (
            tmp_path / "m.fj" / MODEL_NAME).stat().st_size
        assert manifest["config"]["n_bins"] == 4
        assert manifest["extra"] == {"note": "test"}

    def test_missing_artifact(self, tmp_path):
        with pytest.raises(ArtifactError, match="missing"):
            load_model(tmp_path / "nope")

    def test_future_format_version_rejected(self, fitted, tmp_path):
        path = save_model(fitted, tmp_path / "m.fj")
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="format version"):
            load_model(path)


class TestIntegrity:
    def test_corrupt_pickle_detected(self, fitted, tmp_path):
        path = save_model(fitted, tmp_path / "m.fj")
        blob = bytearray((path / MODEL_NAME).read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        (path / MODEL_NAME).write_bytes(bytes(blob))
        with pytest.raises(ArtifactError, match="integrity"):
            load_model(path)

    def test_schema_drift_detected(self, fitted, tmp_path, toy_db_nulls):
        # same schema object shape — build a genuinely different schema
        from repro.data import ColumnSchema, DatabaseSchema, DataType, \
            TableSchema
        other = DatabaseSchema(
            [TableSchema("X", [ColumnSchema("id", DataType.INT, True)])], [])
        path = save_model(fitted, tmp_path / "m.fj")
        with pytest.raises(ArtifactError, match="different schema"):
            load_model(path, expected_schema=other)

    def test_fingerprint_stable_under_data_growth(self, toy_db, toy_db_nulls):
        # fingerprints hash declarations, not rows
        assert schema_fingerprint(toy_db.schema) == schema_fingerprint(
            toy_db_nulls.schema)
