"""Typed messages of the cluster RPC plane.

Every exchange between the driver and a shard worker process is one of
the frozen dataclasses below, wrapped in a :class:`Request` /
:class:`Reply` envelope and shipped over a stdlib
:mod:`multiprocessing` pipe.  The payloads deliberately reuse the
library's own value types — :class:`~repro.sql.predicates.Predicate`
filters, :class:`~repro.data.table.Table` mutation batches,
:class:`~repro.shard.ensemble.ShardStats` statistics — so the worker
executes exactly the code the in-process ensemble would, on exactly the
same inputs; bit-identical serving falls out of that.

Shard state on a worker is addressed by **token**: an opaque,
driver-issued id naming one immutable shard-model version.  Every probe
carries its token, so an estimate pinned to an old ensemble state keeps
reading the statistics that state was published with, even while an
update or hot-swap registers newer tokens — the cross-process analogue
of the ensemble's atomic state swap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkerError


class UnknownTokenError(WorkerError):
    """A worker was asked about a shard-state token it does not hold
    (usually: the worker restarted and lost its in-memory versions).
    The driver reseeds the worker and answers the request locally."""


# ------------------------------------------------------------- envelope --


@dataclass(frozen=True)
class Request:
    """One framed request: a monotone per-connection id plus the typed
    message.  Replies echo the id, so a late reply to a timed-out
    request is recognized and dropped instead of answering the next one.

    ``trace`` optionally carries the driver's trace context — the
    ``(trace_id, span_id)`` pair of :func:`repro.obs.trace.wire_context`
    — so the worker can time its handling as a span nested under the
    exact driver span that issued the RPC.  ``None`` (the default, and
    what untraced requests send) keeps the worker's trace path entirely
    skipped.
    """

    id: int
    message: object
    trace: tuple | None = None


@dataclass(frozen=True)
class Reply:
    """One framed reply; ``error`` carries the worker-side exception
    (pickled whole when possible, re-raised verbatim in the driver).

    ``spans`` carries worker-recorded span dicts
    (:func:`repro.obs.trace.remote_span`) back to the driver, which
    grafts them into the live trace — on error replies too, so a failed
    RPC still shows up timed in the request's trace.
    """

    id: int
    ok: bool
    value: object = None
    error: BaseException | None = None
    spans: tuple = ()


# ------------------------------------------------------------- lifecycle --


@dataclass(frozen=True)
class Ping:
    """Health-check: answered with a :class:`WorkerInfo`."""


@dataclass(frozen=True)
class Shutdown:
    """Orderly exit: the worker acknowledges, then leaves its loop."""


@dataclass(frozen=True)
class WorkerInfo:
    """A worker's self-report (the :class:`Ping` answer)."""

    pid: int
    tokens: tuple[str, ...] = ()
    materialized: tuple[str, ...] = ()
    probes: int = 0
    updates: int = 0
    fits: int = 0

    def describe(self) -> dict:
        """JSON-ready view (surfaced by the pool's health checks)."""
        return {
            "pid": self.pid,
            "tokens": list(self.tokens),
            "materialized": list(self.materialized),
            "probes": self.probes,
            "updates": self.updates,
            "fits": self.fits,
        }


# ----------------------------------------------------------- shard state --


@dataclass(frozen=True)
class LoadShard:
    """Register ``token`` as the shard sub-artifact at ``path``.

    Loading is lazy: the worker records the path and deserializes
    (checksum-verified, via the ordinary artifact loader) the first time
    a probe needs the model — mirroring the lazy ``ShardSet`` slots of
    an in-process ensemble.
    """

    token: str
    path: str
    shard_index: int


@dataclass(frozen=True)
class ReleaseTokens:
    """Drop shard-state versions no ensemble state references anymore."""

    tokens: tuple[str, ...]


@dataclass(frozen=True)
class CloneUpdate:
    """Copy-on-write update: clone ``base_token``'s model, apply one
    insert/delete batch, register the result as ``token``.

    The base version survives untouched — estimates pinned to it keep
    their statistics — exactly like ``clone_for_update`` in the
    in-process ensemble.  Validation failures leave the worker holding
    only the base.
    """

    base_token: str
    token: str
    table: str
    rows: object | None = None
    deleted_rows: object | None = None


# ---------------------------------------------------------------- probes --


@dataclass(frozen=True)
class ProbeItem:
    """One shard probe: the filtered row count and/or binned key
    distributions a base factor needs from this shard."""

    token: str
    table: str
    pred: object
    columns: tuple[str, ...] = ()
    want_total: bool = True


@dataclass(frozen=True)
class BatchProbe:
    """A batch of probes answered in one round trip.

    The driver ships one batch per worker per query — the per-query key
    groups travel once, and session probes are then answered from the
    primed driver-side factors without further RPC.
    """

    items: tuple[ProbeItem, ...]


@dataclass(frozen=True)
class ProbeResult:
    """One :class:`ProbeItem` answer."""

    total: float | None = None
    dists: dict = field(default_factory=dict)


# ------------------------------------------------------------ statistics --


@dataclass(frozen=True)
class ShardStatsRequest:
    """Fetch one version's mergeable statistics
    (:class:`~repro.shard.ensemble.ShardStats`) — what a per-shard
    hot-swap subtracts/adds from the driver's merged state."""

    token: str


@dataclass(frozen=True)
class FingerprintRequest:
    """Content hash of one version's statistics (cache snapshots)."""

    token: str


@dataclass(frozen=True)
class ModelSizeRequest:
    """Pickled size of one version's online statistics."""

    token: str


# ------------------------------------------------------------ compaction --


@dataclass(frozen=True)
class CompactToken:
    """Ledger compaction: re-save ``token``'s *current* model as a fresh
    shard sub-artifact, worker-side.

    A long-lived shard accumulates an update journal in its driver-side
    ledger; every crash reseed replays the whole journal.  Compaction
    asks the worker holding the state to persist it — to ``save_dir``
    (a driver-chosen directory; same host or shared filesystem), or,
    when ``save_dir`` is ``None``, into the worker's own artifact store
    as a content-addressed entry.  The driver then resets the token's
    ledger to the fresh artifact with an empty journal, so the next
    reseed is a single ``LoadShard``.
    """

    token: str
    save_dir: str | None = None
    summary: object | None = None
    name: str = ""
    compress: bool = False


@dataclass(frozen=True)
class CompactResult:
    """A compaction's outcome: where the fresh sub-artifact lives (a
    directory path, or a ``cas://`` reference when the worker published
    into its store) plus the manifest entry."""

    path: str
    sha256: str
    model_bytes: int


# --------------------------------------------------------- observability --


@dataclass(frozen=True)
class CollectMetrics:
    """Scrape the worker's own metrics registry.

    Answered with a :class:`MetricsSnapshot` whose payload is the
    picklable dict of :func:`repro.obs.federate.snapshot_registry`; the
    driver merges it into the federated ``/metrics`` view under
    ``worker=``/``shard_group=`` labels.  Handling this message is
    deliberately excluded from the worker's own handler timing, so the
    snapshot a scrape returns is bit-identical to the worker registry's
    state at that moment.
    """


@dataclass(frozen=True)
class MetricsSnapshot:
    """A worker's frozen registry (the :class:`CollectMetrics` answer)."""

    pid: int
    snapshot: dict


@dataclass(frozen=True)
class RecordFeedback:
    """Absorb one accuracy-feedback sample into the worker's own
    :class:`~repro.obs.drift.DriftMonitor`.

    ``sample`` is a picklable :class:`~repro.obs.drift.DriftSample`
    already stamped by the driver's clock (bucketing follows the
    stamp, so forwarding never shifts a sample between windows);
    ``scopes`` restricts attribution — the driver keeps the
    model/table/template scopes itself and forwards only the shard
    scope, so every attribution key is fed from exactly one process and
    the federated merge is lossless.
    """

    sample: object
    scopes: tuple = ("shard",)


@dataclass(frozen=True)
class CollectDrift:
    """Scrape the worker's own drift-monitor state.

    Answered with a :class:`DriftSnapshot`; the driver merges worker
    snapshots through :func:`repro.obs.drift.merge_drift_snapshot` into
    the one ``/v1/drift`` view.  Untimed for the same reason as
    :class:`CollectMetrics`: the shipped snapshot must match the
    monitor bit-for-bit at scrape time.
    """


@dataclass(frozen=True)
class DriftSnapshot:
    """A worker's frozen drift-monitor state (the :class:`CollectDrift`
    answer)."""

    pid: int
    snapshot: dict


@dataclass(frozen=True)
class Profile:
    """Sample the worker process's stacks for ``seconds`` at ``hz``
    (clamped worker-side; see :mod:`repro.obs.profile`).  The worker's
    request loop blocks for the duration — callers must use a timeout
    comfortably above ``seconds``."""

    seconds: float = 1.0
    hz: float = 99.0


@dataclass(frozen=True)
class ProfileResult:
    """A remote profiling run: sample count plus collapsed-stack text
    ready for flamegraph tooling."""

    pid: int
    seconds: float
    hz: float
    samples: int
    collapsed: str


# ----------------------------------------------------------------- fit --


@dataclass(frozen=True)
class FitShardRequest:
    """Distributed fit: fit one shard under the shared global binning
    and save the sub-artifact worker-side.

    Ships ``(config, shard_db, binnings)`` — the exact arguments of the
    pure :func:`~repro.shard.ensemble.fit_shard` — and returns a
    :class:`FitShardResult` of statistics only, so the driver assembles
    the ensemble without ever materializing a shard model.
    """

    config: object
    database: object
    binnings: dict
    save_dir: str
    name: str
    compress: bool = False


@dataclass(frozen=True)
class FitShardResult:
    """What a fit worker ships back: mergeable statistics, the shard's
    pruning summary, timing, and the saved sub-artifact's manifest
    entry."""

    stats: object
    summary: object
    fit_seconds: float
    entry: dict
