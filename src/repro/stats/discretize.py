"""Attribute discretization with exact per-code predicate weights.

The BayesCard estimator needs, for any filter predicate over an attribute,
the probability that each *code* (discretized bucket) of the attribute
satisfies the predicate.  Because the discretizer keeps the full distinct
value histogram, those weights are exact: it evaluates the predicate once on
the distinct values and aggregates satisfied counts per code.
"""

from __future__ import annotations

import numpy as np

from repro.data.column import Column
from repro.data.table import Table
from repro.data.types import DataType
from repro.engine.filter import evaluate_predicate
from repro.sql.predicates import Predicate


class Discretizer:
    """Equal-depth discretization of one column into at most ``max_codes``.

    NULLs map to a dedicated extra code (the last one).  String columns are
    supported: codes follow lexicographic order of distinct values.
    """

    def __init__(self, column: Column, max_codes: int = 32):
        self._name = column.name
        self._dtype = column.dtype
        values = column.non_null_values()
        if len(values) == 0:
            self._distinct = values
            self._counts = np.zeros(0)
            self._code_of_value = np.zeros(0, dtype=np.int64)
            n_value_codes = 1
        else:
            self._distinct, counts = np.unique(values, return_counts=True)
            self._counts = counts.astype(np.float64)
            n_value_codes = min(max_codes, len(self._distinct))
            cum = np.cumsum(self._counts)
            total = cum[-1]
            self._code_of_value = np.minimum(
                ((cum - self._counts / 2) / total * n_value_codes),
                n_value_codes - 1).astype(np.int64)
            n_value_codes = int(self._code_of_value.max()) + 1
        self.n_value_codes = n_value_codes
        self.null_code = n_value_codes
        self.n_codes = n_value_codes + 1

    # -- encoding --------------------------------------------------------------

    def encode(self, column: Column) -> np.ndarray:
        """Codes for a column's rows (unseen values snap to nearest code)."""
        out = np.full(len(column), self.null_code, dtype=np.int64)
        valid = ~column.null_mask
        if valid.any() and len(self._distinct):
            vals = column.values[valid]
            if self._dtype is DataType.STRING:
                vals = vals.astype(object)
            pos = np.searchsorted(self._distinct, vals)
            pos = np.clip(pos, 0, len(self._distinct) - 1)
            out[valid] = self._code_of_value[pos]
        return out

    # -- evidence ----------------------------------------------------------------

    def evidence_weights(self, pred: Predicate) -> np.ndarray:
        """Per-code probability that a row with that code satisfies ``pred``.

        Exact w.r.t. the training distribution: the predicate is evaluated on
        the stored distinct values, weighted by their frequencies.
        """
        weights = np.zeros(self.n_codes, dtype=np.float64)
        if len(self._distinct) == 0:
            return weights
        tiny = Table("_d", [Column(self._name, self._distinct, self._dtype)])
        satisfied = evaluate_predicate(pred, tiny)
        per_code_total = np.zeros(self.n_value_codes)
        per_code_hit = np.zeros(self.n_value_codes)
        np.add.at(per_code_total, self._code_of_value, self._counts)
        np.add.at(per_code_hit, self._code_of_value,
                  self._counts * satisfied)
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(per_code_total > 0,
                            per_code_hit / per_code_total, 0.0)
        weights[: self.n_value_codes] = frac
        # NULL rows never satisfy a value predicate (IS NULL is handled by
        # the caller flipping the null code explicitly)
        return weights

    def null_evidence(self, negated: bool) -> np.ndarray:
        """Evidence vector for IS [NOT] NULL."""
        weights = np.zeros(self.n_codes)
        if negated:
            weights[: self.n_value_codes] = 1.0
        else:
            weights[self.null_code] = 1.0
        return weights
