"""``ClusterModel``: a partitioned ensemble served by worker processes.

The sharded ensemble (PR 3) already decomposes every estimate into
per-shard probes — filtered row counts and binned key distributions —
summed under exactly-merged global statistics.  ``ClusterModel`` moves
those probes into worker processes: it *is* a
:class:`~repro.shard.ensemble.ShardedFactorJoin` whose shard slots are
:class:`RemoteShardModel` proxies, so the merged inference, sessions,
sub-plan maps, routed updates, capabilities, and the whole
:class:`~repro.api.protocol.CardinalityModel` protocol are inherited —
and answers are **bit-identical** to the in-process ensemble, because
every per-shard number is computed by the same code on the same
statistics, merely in another process, and summed in the same order.

Per-query batching
------------------
Opening a session (or any estimate) first resolves the query's key
groups and ships each worker **one** batch with every (table, filter,
key-columns) probe its shards owe the query.  The answers prime the
driver-side factor caches, so sub-plan lattice probes — the optimizer's
thousands of ``estimate_join`` calls — run incrementally in the driver
without further RPC.

Crash recovery
--------------
The driver keeps a *ledger* per shard-state token: the sub-artifact path
plus the update journal since.  When a worker dies, the pool restarts it
and replays the ledger; the request that observed the crash is answered
*in the driver* from a ledger-materialized local model — transparently,
with the same statistics the worker held.

Consistency
-----------
Updates and per-shard hot-swaps publish a new ensemble state whose slots
carry fresh tokens; in-flight estimates stay pinned to the tokens of the
state they resolved, and workers retain every token until the last
ensemble state referencing it is garbage-collected.  No estimate ever
mixes pre- and post-mutation statistics — the same contract the
in-process ensemble's atomic state swap gives, stretched across
processes.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from dataclasses import replace as _replace
from pathlib import Path

import numpy as np

from repro.cluster.messages import (
    BatchProbe,
    CloneUpdate,
    CollectDrift,
    CollectMetrics,
    CompactToken,
    FingerprintRequest,
    LoadShard,
    ModelSizeRequest,
    ProbeItem,
    ProbeResult,
    Profile,
    RecordFeedback,
    ReleaseTokens,
    ShardStatsRequest,
)
from repro.cluster.pool import DEFAULT_TIMEOUT, WorkerPool
from repro.core.key_groups import query_key_groups
from repro.obs.drift import DriftFederator, empty_drift_snapshot
from repro.obs.federate import MetricsFederator
from repro.obs.trace import capture_context, trace_span, use_context
from repro.errors import (
    ReproError,
    UnsupportedOperationError,
    WorkerError,
)
from repro.shard.artifact import (
    load_shard_artifact,
    load_shard_summary,
    read_ensemble,
)
from repro.shard.ensemble import (
    EnsembleTableEstimator,
    ShardedFactorJoin,
    _assemble_state,
    shard_stats_of,
)
from repro.shard.pruning import ShardSummary
from repro.sql.query import Query

_TOKEN_COUNTER = itertools.count()


def _new_token(shard_index: int) -> str:
    return f"s{shard_index}:v{next(_TOKEN_COUNTER)}"


@dataclass(frozen=True)
class _Ledger:
    """How to rebuild one shard-state token from durable parts: the
    sub-artifact on disk (a path, or a ``cas://`` store reference) plus
    the update journal applied since.  This is what worker reseeding
    replays and what the driver materializes for in-process crash
    retries.  ``worker_id`` records which worker currently owns the
    token — authoritative for reseeding, because re-homing moves shards
    off the pool's default modulo layout."""

    shard_index: int
    path: str
    journal: tuple = ()
    worker_id: int = -1


class _LedgerBook:
    """Thread-safe token -> :class:`_Ledger` map.

    Mutated from estimate threads (updates, hot-swaps) *and* from
    garbage-collection finalizers (token releases), and snapshotted by
    worker reseeding — plain dict iteration would race those mutations.
    The lock is re-entrant because a finalizer can fire via GC on the
    very thread that holds it; every critical section is a single small
    operation, so re-entry is harmless.

    ``store`` carries the model's artifact store (or ``None``) so every
    ledger consumer — crash-retry materialization, hot-swaps, compaction
    — resolves ``cas://`` paths the same way.
    """

    def __init__(self, store=None):
        self._lock = threading.RLock()
        self._entries: dict[str, _Ledger] = {}
        self.store = store

    def get(self, token: str) -> _Ledger | None:
        with self._lock:
            return self._entries.get(token)

    def set(self, token: str, ledger: _Ledger) -> None:
        with self._lock:
            self._entries[token] = ledger

    def pop(self, token: str) -> None:
        with self._lock:
            self._entries.pop(token, None)

    def snapshot(self) -> list[tuple[str, _Ledger]]:
        with self._lock:
            return sorted(self._entries.items())


def _materialize_ledger(ledger: _Ledger, store=None):
    """A local model holding exactly the token's statistics."""
    from repro.serve.artifact import is_store_ref

    path = ledger.path
    if is_store_ref(path):
        if store is None:
            raise ReproError(
                f"cannot materialize shard state from {path}: the driver "
                f"has no artifact store attached")
        path = store.resolve(path)
    model, _ = load_shard_artifact(path)
    for table, rows, deleted_rows in ledger.journal:
        if deleted_rows is not None:
            model.update(table, rows, deleted_rows=deleted_rows)
        else:
            model.update(table, rows)
    return model


def _reseed_token(pool: WorkerPool, worker_id: int, token: str,
                  ledger: _Ledger) -> None:
    """Rebuild ``token`` on a (re)started worker by replaying its ledger.

    Intermediate versions are released immediately; the final
    ``CloneUpdate`` binds ``token`` itself, so concurrent probes of the
    token never observe a half-replayed journal.
    """
    if not ledger.journal:
        pool.call(worker_id, LoadShard(token, ledger.path,
                                       ledger.shard_index))
        return
    prev = _new_token(ledger.shard_index)
    pool.call(worker_id, LoadShard(prev, ledger.path, ledger.shard_index))
    retire = []
    for position, (table, rows, deleted_rows) in enumerate(ledger.journal):
        last = position == len(ledger.journal) - 1
        nxt = token if last else _new_token(ledger.shard_index)
        pool.call(worker_id, CloneUpdate(prev, nxt, table, rows,
                                         deleted_rows))
        retire.append(prev)
        prev = nxt
    pool.call(worker_id, ReleaseTokens(tuple(retire)))


def _release_token(pool: WorkerPool, worker_id: int, token: str,
                   ledgers: "_LedgerBook", local_models: dict) -> None:
    """GC finalizer of a :class:`RemoteShardModel`: when no ensemble
    state references the token anymore, drop its ledger, any local
    fallback model, and queue the worker-side release."""
    ledgers.pop(token)
    local_models.pop(token, None)
    pool.schedule_release(worker_id, token)


class RemoteShardModel:
    """Driver-side handle to one shard-state version in a worker.

    Duck-types the slice of a shard :class:`~repro.core.estimator.
    FactorJoin` the ensemble layer touches — probes via
    ``table_estimator``, ``clone_for_update``/``update`` for the routed
    copy-on-write path, ``fingerprint``/``model_size_bytes`` for
    introspection — so the inherited ensemble machinery drives workers
    without knowing it.  Transport failures are absorbed here: the pool
    restarts the worker and the answer is computed in-process from the
    token's ledger.
    """

    def __init__(self, pool: WorkerPool, worker_id: int, shard_index: int,
                 token: str, ledgers: "_LedgerBook", local_models: dict,
                 base_token: str | None = None):
        self.pool = pool
        self.worker_id = worker_id
        self.shard_index = shard_index
        self.token = token
        self._ledgers = ledgers
        self._local_models = local_models
        self._base_token = base_token
        self._finalizer = weakref.finalize(
            self, _release_token, pool, worker_id, token, ledgers,
            local_models)

    # -- probes ---------------------------------------------------------------

    def probe(self, table: str, pred, columns=(),
              want_total: bool = True) -> ProbeResult:
        """One shard probe, worker-side when possible, ledger-local on
        crash (transparently, bit-identically)."""
        item = ProbeItem(self.token, table, pred, tuple(columns),
                         want_total)
        try:
            return self.pool.call(self.worker_id, BatchProbe((item,)))[0]
        except WorkerError:
            self.pool.ensure_alive(self.worker_id)
            with trace_span("probe.retry", retried=True,
                            restarted_worker=self.worker_id):
                return self.local_probe(item)

    def local_probe(self, item: ProbeItem) -> ProbeResult:
        """The in-process retry: the worker's own probe computation
        (:func:`~repro.cluster.worker.probe_model`), driver-side."""
        from repro.cluster.worker import probe_model

        return probe_model(self._local_model(), item)

    def _local_model(self):
        model = self._local_models.get(self.token)
        if model is None:
            ledger = self._ledgers.get(self.token)
            if ledger is None:
                raise WorkerError(
                    f"shard state {self.token!r} has no ledger to retry "
                    f"from (already released?)")
            model = _materialize_ledger(ledger, store=self._ledgers.store)
            self._local_models[self.token] = model
        return model

    def table_estimator(self, table_name: str) -> "_RemoteTableEstimator":
        return _RemoteTableEstimator(self, table_name)

    # -- copy-on-write update (the inherited _apply_update drives this) --------

    def clone_for_update(self) -> "RemoteShardModel":
        """A pending new version; :meth:`update` registers it worker-side
        (mirrors ``FactorJoin.clone_for_update`` + ``update``)."""
        return RemoteShardModel(self.pool, self.worker_id,
                                self.shard_index,
                                _new_token(self.shard_index),
                                self._ledgers, self._local_models,
                                base_token=self.token)

    def update(self, table_name: str, new_rows=None,
               deleted_rows=None) -> None:
        if self._base_token is None:
            raise ReproError("update a handle obtained from "
                             "clone_for_update, not a published slot")
        message = CloneUpdate(self._base_token, self.token, table_name,
                              new_rows, deleted_rows)
        try:
            self.pool.call(self.worker_id, message)
        except WorkerError:
            # crash path: restart, rebuild the base version from its
            # ledger, and retry once — validation errors (the model
            # rejecting the batch) are not WorkerErrors and propagate
            self.pool.ensure_alive(self.worker_id)
            with trace_span("update.retry", retried=True,
                            restarted_worker=self.worker_id):
                base_ledger = self._ledgers.get(self._base_token)
                if base_ledger is not None:
                    try:
                        _reseed_token(self.pool, self.worker_id,
                                      self._base_token, base_ledger)
                    except WorkerError:
                        pass
                self.pool.call(self.worker_id, message)
        base_ledger = self._ledgers.get(self._base_token)
        if base_ledger is not None:
            self._ledgers.set(self.token, _Ledger(
                self.shard_index, base_ledger.path,
                base_ledger.journal
                + ((table_name, new_rows, deleted_rows),),
                worker_id=self.worker_id))

    # -- statistics -----------------------------------------------------------

    def shard_stats(self):
        """The version's mergeable statistics (hot-swap bookkeeping)."""
        try:
            return self.pool.call(self.worker_id,
                                  ShardStatsRequest(self.token))
        except WorkerError:
            self.pool.ensure_alive(self.worker_id)
            model = self._local_model()
            return shard_stats_of(model, model.database.schema)

    def fingerprint(self) -> str:
        try:
            return self.pool.call(self.worker_id,
                                  FingerprintRequest(self.token))
        except WorkerError:
            self.pool.ensure_alive(self.worker_id)
            return self._local_model().fingerprint()

    def model_size_bytes(self) -> int:
        try:
            return self.pool.call(self.worker_id,
                                  ModelSizeRequest(self.token))
        except WorkerError:
            self.pool.ensure_alive(self.worker_id)
            return self._local_model().model_size_bytes()

    def __repr__(self) -> str:
        return (f"RemoteShardModel(shard={self.shard_index}, "
                f"worker={self.worker_id}, token={self.token!r})")


class _RemoteTableEstimator:
    """Per-table probe surface of one :class:`RemoteShardModel` (what
    the inherited update path reads for post-delete row counts)."""

    def __init__(self, remote: RemoteShardModel, table_name: str):
        self._remote = remote
        self._table_name = table_name

    def estimate_row_count(self, pred) -> float:
        return self._remote.probe(self._table_name, pred, (), True).total

    def key_distribution(self, column: str, pred) -> np.ndarray:
        return self._remote.probe(self._table_name, pred, (column,),
                                  False).dists[column]


def _probe_in_context(ctx, remote: RemoteShardModel, table: str, pred,
                      columns, want_total: bool) -> ProbeResult:
    """Executor-thread shim for one fanned-out probe: pool executor
    threads do not inherit the request thread's trace context, so the
    caller captures it and this re-activates it around the probe —
    the rpc and worker spans then nest under the request."""
    with use_context(ctx):
        return remote.probe(table, pred, columns, want_total)


def merge_probe_results(results, columns, binnings,
                        want_total: bool):
    """Sum per-shard probe answers — ``results`` ordered by shard index
    — into ``(total, dists)``.

    The single definition of the cluster's merge: a plain float sum for
    totals and a float64 zero-initialized accumulation per column,
    exactly mirroring the in-process
    :class:`~repro.shard.ensemble.EnsembleTableEstimator` loops, which
    is what makes cluster answers bit-identical.  Both the per-probe
    path and the batched prefetch call this.
    """
    total = (float(sum(result.total for result in results))
             if want_total else None)
    dists = {}
    for column in columns:
        acc = np.zeros(binnings[column].n_bins, dtype=np.float64)
        for result in results:
            acc += result.dists[column]
        dists[column] = acc
    return total, dists


class ClusterTableEstimator(EnsembleTableEstimator):
    """Ensemble-table facade whose per-shard reads go through workers.

    Overrides exactly the two probe methods; pruning, policy hints, and
    capability reporting are inherited.  Probes fan out across the
    candidate shards in parallel (one thread per worker) and merge in
    shard-index order, so sums are bit-identical to the in-process
    serial loop.  Answers are memoized per filter under the current
    ensemble state — a new state builds new estimators, so memoized
    probes can never survive an update or hot-swap.
    """

    name = "cluster"

    #: Per-estimator probe memo bound (per published ensemble state).
    MAX_PROBE_CACHE = 1024

    def __init__(self, *args):
        super().__init__(*args)
        self._probe_lock = threading.Lock()
        self._probe_cache: OrderedDict = OrderedDict()

    # -- memo -----------------------------------------------------------------

    def missing_requirements(self, pred, columns: tuple,
                             want_total: bool = True):
        """``(columns_needed, total_needed)`` not yet memoized for
        ``pred`` (the driver's batched prefetch plans with this)."""
        with self._probe_lock:
            entry = self._probe_cache.get(pred)
            if entry is None:
                return tuple(columns), want_total
            cols = tuple(c for c in columns if c not in entry["dists"])
            return cols, want_total and entry["total"] is None

    def store_probe(self, pred, total, dists: dict) -> None:
        """Memoize shard-summed probe results for ``pred``."""
        with self._probe_lock:
            entry = self._probe_cache.get(pred)
            if entry is None:
                entry = {"total": None, "dists": {}}
                self._probe_cache[pred] = entry
            if total is not None:
                entry["total"] = float(total)
            entry["dists"].update(dists)
            self._probe_cache.move_to_end(pred)
            while len(self._probe_cache) > self.MAX_PROBE_CACHE:
                self._probe_cache.popitem(last=False)

    # -- probes ---------------------------------------------------------------

    def _remotes(self, shard_ids) -> list[RemoteShardModel]:
        return [self._shard_set.model(index) for index in shard_ids]

    def fetch(self, pred, columns: tuple, want_total: bool):
        """Fan one probe out across the candidate shards and merge."""
        remotes = self._remotes(self.candidate_shards(pred))
        if len(remotes) <= 1:
            results = [remote.probe(self._table_name, pred, columns,
                                    want_total) for remote in remotes]
        else:
            pool = remotes[0].pool
            ctx = capture_context()
            futures = [pool.spawn(_probe_in_context, ctx, remote,
                                  self._table_name, pred, columns,
                                  want_total)
                       for remote in remotes]
            results = [future.result() for future in futures]
        return merge_probe_results(results, columns, self._binnings,
                                   want_total)

    def _ensure(self, pred, columns: tuple, want_total: bool):
        cols_needed, total_needed = self.missing_requirements(
            pred, columns, want_total)
        if cols_needed or total_needed:
            total, dists = self.fetch(pred, cols_needed, total_needed)
            self.store_probe(pred, total, dists)
        with self._probe_lock:
            entry = self._probe_cache.get(pred)
            if entry is not None and all(c in entry["dists"]
                                         for c in columns) and (
                    not want_total or entry["total"] is not None):
                return (entry["total"],
                        {c: entry["dists"][c] for c in columns})
        # evicted under memory pressure mid-flight: answer directly
        return self.fetch(pred, tuple(columns), want_total)

    def estimate_row_count(self, pred) -> float:
        total, _ = self._ensure(pred, (), True)
        return total

    def key_distribution(self, column: str, pred) -> np.ndarray:
        _, dists = self._ensure(pred, (column,), False)
        return dists[column].copy()


class ClusterModel(ShardedFactorJoin):
    """A served ensemble whose shards live in worker processes.

    Build with :meth:`from_artifact`; everything online — ``estimate``,
    ``estimate_subplans``, ``open_session``, routed ``update``,
    ``capabilities`` — is the inherited ensemble surface over
    worker-backed shard slots, plus :meth:`hot_swap_shard` for
    republishing one shard and :meth:`workers_health` for the pool.
    The registry, :class:`~repro.serve.service.EstimationService`, and
    the ``/v1`` routes serve it unchanged.
    """

    table_estimator_cls = ClusterTableEstimator

    def __init__(self, *args, **kwargs):
        raise TypeError(
            "ClusterModel serves a saved ensemble artifact; build one "
            "with ClusterModel.from_artifact(path, workers=N)")

    @classmethod
    def from_artifact(cls, path, *, workers: int | None = None,
                      pool: WorkerPool | None = None,
                      expected_schema=None,
                      timeout: float = DEFAULT_TIMEOUT,
                      inline: bool = False, addresses=None, store=None,
                      grace: float = 0.0,
                      compact_after: int | None = None) -> "ClusterModel":
        """Serve the ensemble artifact at ``path`` through a worker pool.

        ``workers`` defaults to one process per shard; fewer workers
        host shard groups (shard *i* on worker ``i % workers``).  Shard
        sub-artifacts are registered with the workers **lazily** — a
        worker deserializes a shard the first time a query needs it.
        Pass a shared ``pool`` to host several cluster models on one set
        of processes (the pool then outlives :meth:`close`).

        ``addresses`` serves through externally managed
        ``repro worker --listen`` servers instead of local processes.
        ``store`` attaches an artifact store
        (:class:`~repro.serve.artifact.LocalArtifactStore` on a path
        every worker can reach): shard sub-artifacts are published into
        it and registered as ``cas://`` references, which is how remote
        workers — blind to the driver's filesystem layout — resolve
        shard state.  ``grace`` is the pool's slow-vs-dead window and
        ``compact_after`` enables automatic ledger compaction once a
        shard's update journal reaches that many entries.
        """
        payload, shard_dirs, _ = read_ensemble(
            path, expected_schema=expected_schema)
        if not shard_dirs:
            raise ReproError(f"ensemble at {path} has no shards to serve")
        owns_pool = pool is None
        if pool is None:
            if addresses is not None:
                pool = WorkerPool(addresses=addresses, timeout=timeout,
                                  grace=grace, store=store)
            else:
                pool = WorkerPool(min(workers or len(shard_dirs),
                                      len(shard_dirs)),
                                  timeout=timeout, grace=grace,
                                  inline=inline, store=store)
        if store is None:
            store = getattr(pool, "store", None)
        ledgers = _LedgerBook(store=store)
        local_models: dict[str, object] = {}
        slots = []
        try:
            for index, shard_dir in enumerate(shard_dirs):
                token = _new_token(index)
                worker_id = pool.owner_of(index)
                # with a store, workers address the shard by content —
                # the only path a remote worker can resolve; without
                # one, by the driver-local directory
                ref = (store.publish(shard_dir) if store is not None
                       else str(shard_dir))
                ledgers.set(token, _Ledger(index, ref,
                                           worker_id=worker_id))
                pool.call(worker_id, LoadShard(token, ref, index))
                slots.append(RemoteShardModel(pool, worker_id, index,
                                              token, ledgers,
                                              local_models))
        except Exception:
            if owns_pool:
                pool.shutdown()
            raise
        model = cls.from_shared_state(payload, slots)
        model._pool = pool
        model._owns_pool = owns_pool
        model._ledgers = ledgers
        model._local_models = local_models
        model._artifact_path = str(path)
        model._compact_after = compact_after
        model._federator = MetricsFederator()
        model._drift_federator = DriftFederator()
        # hooks accumulate per model, so several cluster models can share
        # one pool and each reseeds its own tokens after a restart
        pool.add_restart_hook(model._reseed_worker)
        return model

    # -- worker lifecycle ------------------------------------------------------

    @property
    def pool(self) -> WorkerPool:
        return self._pool

    def workers_health(self) -> list[dict]:
        """Ping every worker (see :meth:`WorkerPool.health`)."""
        return self._pool.health()

    def collect_metrics(self, model_name: str = "") -> list:
        """Scrape-time metric families for ``GET /metrics`` (the serving
        layer calls this hook on every published model that has one):
        per-worker liveness gauges and restart counters from the pool's
        cheap :meth:`WorkerPool.describe`, plus the **federated** worker
        registries — each live worker answers a ``CollectMetrics`` RPC
        (5s timeout, like a ping) and its snapshot merges in under
        ``worker=``/``shard_group=`` labels with restart-safe monotone
        folding; a worker that fails the scrape keeps serving its
        last-known state, so one hung worker degrades the pane instead
        of killing it."""
        description = self._pool.describe()
        up, restarts = [], []
        for row in description["workers"]:
            labels = {"model": model_name, "worker": str(row["worker"])}
            up.append((labels, 1.0 if row["alive"] else 0.0))
            restarts.append((labels, float(row["restarts"])))
        transport = description.get("transport_stats") or {}
        frames = [({"model": model_name, "direction": "sent"},
                   float(transport.get("frames_sent", 0))),
                  ({"model": model_name, "direction": "recv"},
                   float(transport.get("frames_received", 0)))]
        octets = [({"model": model_name, "direction": "sent"},
                   float(transport.get("bytes_sent", 0))),
                  ({"model": model_name, "direction": "recv"},
                   float(transport.get("bytes_received", 0)))]
        families = [
            ("gauge", "repro_worker_up",
             "Shard worker liveness (1 serving, 0 awaiting restart).", up),
            ("counter", "repro_worker_restarts_total",
             "Crashed shard workers replaced by the pool.", restarts),
            ("counter", "repro_transport_frames_total",
             "RPC frames on the pool's TCP transports (pipe pools "
             "report 0).", frames),
            ("counter", "repro_transport_bytes_total",
             "Framed RPC bytes on the pool's TCP transports.", octets),
        ]
        families.extend(self._federated_families(model_name, description))
        return families

    def _shard_groups(self) -> dict[int, str]:
        """``worker id -> "0+3"``-style sorted shard-index labels, read
        from the token ledgers (re-homing moves shards off the pool's
        modulo layout, so placement must come from the ledger)."""
        groups: dict[int, set[int]] = {}
        for _token, ledger in self._ledgers.snapshot():
            owner = (ledger.worker_id if ledger.worker_id >= 0
                     else self._pool.owner_of(ledger.shard_index))
            groups.setdefault(owner, set()).add(ledger.shard_index)
        return {worker_id: "+".join(str(i) for i in sorted(indices))
                for worker_id, indices in groups.items()}

    def _federated_families(self, model_name: str,
                            description: dict) -> list:
        federator = getattr(self, "_federator", None)
        if federator is None:
            return []
        groups = self._shard_groups()
        for row in description["workers"]:
            worker_id = row["worker"]
            if row["retired"]:
                federator.forget(worker_id)
                continue
            if not row["alive"]:
                federator.mark_unreachable(worker_id)
                continue
            labels = {"model": model_name, "worker": str(worker_id),
                      "shard_group": groups.get(worker_id, "")}
            try:
                reply = self._pool.call(worker_id, CollectMetrics(),
                                        timeout=5.0)
            except WorkerError:
                federator.mark_unreachable(worker_id)
                continue
            federator.absorb(worker_id, row.get("generation", 0),
                             reply.snapshot, labels)
        return federator.families()

    def _shard_owners(self) -> dict[int, int]:
        """``shard index -> owning worker id``, read from the token
        ledgers (same re-homing caveat as :meth:`_shard_groups`)."""
        owners: dict[int, int] = {}
        for _token, ledger in self._ledgers.snapshot():
            owners[ledger.shard_index] = (
                ledger.worker_id if ledger.worker_id >= 0
                else self._pool.owner_of(ledger.shard_index))
        return owners

    def absorb_drift(self, sample) -> tuple:
        """Forward a feedback sample's shard-scope drift attribution to
        the workers owning those shards (the serving layer's hook;
        workers absorb with ``scopes=("shard",)`` so each attribution
        key lives in exactly one process).

        Returns the shard indices successfully delegated — the caller
        absorbs any remainder (unowned shards, failed workers) locally,
        so a dead worker degrades attribution locality, never loses the
        sample.  Bucketing follows ``sample.at``, the driver's stamp,
        so forwarding never shifts a sample between windows.
        """
        owners = self._shard_owners()
        by_worker: dict[int, list] = {}
        for shard in sample.shards:
            owner = owners.get(shard)
            if owner is not None:
                by_worker.setdefault(owner, []).append(shard)
        delegated: list = []
        for worker_id in sorted(by_worker):
            shards = tuple(sorted(by_worker[worker_id]))
            message = RecordFeedback(
                sample=_replace(sample, shards=shards))
            try:
                self._pool.call(worker_id, message, timeout=5.0)
            except WorkerError:
                continue
            delegated.extend(shards)
        return tuple(sorted(delegated))

    def collect_drift(self) -> dict:
        """The federated drift snapshot: every live worker answers a
        ``CollectDrift`` RPC (5s timeout, like a metrics scrape) and the
        snapshots merge under the same restart-safe semantics as
        :meth:`collect_metrics` — a failed scrape serves last-known
        state, a retired worker is forgotten.  The serving layer folds
        the result into its own monitor's report, so ``GET /v1/drift``
        is one merged view regardless of transport."""
        federator = getattr(self, "_drift_federator", None)
        if federator is None:
            return empty_drift_snapshot()
        description = self._pool.describe()
        for row in description["workers"]:
            worker_id = row["worker"]
            if row["retired"]:
                federator.forget(worker_id)
                continue
            if not row["alive"]:
                federator.mark_unreachable(worker_id)
                continue
            try:
                reply = self._pool.call(worker_id, CollectDrift(),
                                        timeout=5.0)
            except WorkerError:
                federator.mark_unreachable(worker_id)
                continue
            federator.absorb(worker_id, row.get("generation", 0),
                             reply.snapshot)
        return federator.merged()

    def profile_worker(self, worker_id: int, seconds: float = 1.0,
                       hz: float = 99.0):
        """Sample a remote worker's stacks for ``seconds`` at ``hz``
        (the ``Profile`` RPC); returns the
        :class:`~repro.cluster.messages.ProfileResult` whose
        ``collapsed`` text feeds flamegraph tooling.  The worker's
        request loop blocks for the duration, so the RPC timeout is
        held comfortably above ``seconds``."""
        return self._pool.call(worker_id, Profile(seconds=seconds, hz=hz),
                               timeout=float(seconds) + 30.0)

    def _reseed_worker(self, worker_id: int) -> None:
        """Rebuild every live shard-state token a restarted worker owns
        (the pool's ``on_restart`` hook).  Ownership is read from the
        ledger itself — re-homing moves tokens off the pool's default
        layout, so the modulo placement cannot be trusted here."""
        for token, ledger in self._ledgers.snapshot():
            owner = (ledger.worker_id if ledger.worker_id >= 0
                     else self._pool.owner_of(ledger.shard_index))
            if owner == worker_id:
                _reseed_token(self._pool, worker_id, token, ledger)

    # -- elasticity ------------------------------------------------------------

    def grow_workers(self, count: int = 1, *, addresses=None) -> list[int]:
        """Add workers to the pool (processes, or TCP addresses of
        ``repro worker`` servers); returns the new worker ids.  New
        workers start empty — move load onto them with
        :meth:`rehome_shard`."""
        return self._pool.grow(count, addresses=addresses)

    def rehome_shard(self, index: int,
                     worker_id: int | None = None) -> dict:
        """Move one shard's state to another worker, atomically.

        The target (least-loaded active worker by default, excluding the
        current owner) is seeded with the shard's ledger — artifact plus
        journal, the exact replay a crash reseed runs — under a **new**
        token, and a new ensemble state pointing the shard's slot at the
        target is published with the merged statistics carried over
        unchanged, so answers before, during, and after the move are
        bit-identical.  In-flight estimates stay pinned to the old token
        on the old worker (which keeps it until they are garbage
        collected); even if the old worker is retired mid-flight, those
        probes are answered from the ledger in the driver — no token is
        ever dropped.
        """
        with self._update_lock:
            state = self._require_state()
            if not 0 <= index < len(state.shard_set):
                raise ReproError(
                    f"shard index {index} out of range for a "
                    f"{len(state.shard_set)}-shard ensemble")
            old_slot = state.shard_set.model(index)
            active = self._pool.active_workers()
            if worker_id is None:
                load = {w: 0 for w in active if w != old_slot.worker_id}
                if not load:
                    raise ReproError(
                        "no other active worker to re-home onto "
                        "(grow the pool first)")
                for i in range(len(state.shard_set)):
                    owner = state.shard_set.model(i).worker_id
                    if owner in load:
                        load[owner] += 1
                worker_id = min(sorted(load), key=load.__getitem__)
            elif worker_id not in active:
                raise ReproError(
                    f"worker {worker_id} is retired or unknown")
            if worker_id == old_slot.worker_id:
                return {"shard": index, "worker": worker_id,
                        "moved": False}
            old_ledger = self._ledgers.get(old_slot.token)
            if old_ledger is None:
                raise ReproError(
                    f"shard state {old_slot.token!r} has no ledger to "
                    f"re-home from")
            token = _new_token(index)
            ledger = _Ledger(index, old_ledger.path, old_ledger.journal,
                             worker_id=worker_id)
            self._ledgers.set(token, ledger)
            try:
                try:
                    _reseed_token(self._pool, worker_id, token, ledger)
                except WorkerError:
                    # the target died mid-seed: replace it and try once
                    # more before giving up (leaving the shard where it
                    # was — nothing was published yet)
                    self._pool.ensure_alive(worker_id)
                    _reseed_token(self._pool, worker_id, token, ledger)
            except Exception:
                _release_token(self._pool, worker_id, token,
                               self._ledgers, self._local_models)
                raise
            slot = RemoteShardModel(self._pool, worker_id, index, token,
                                    self._ledgers, self._local_models)
            # republish with the merged statistics passed through as-is
            # (the same objects — not a -old+new float round trip, which
            # would not be bit-stable even for identical stats)
            merged = state.merged
            self._state = _assemble_state(
                self.config, merged.database, self.policy,
                state.shard_set.replace({index: slot}), state.summaries,
                merged.key_statistics(), merged.key_trees(),
                merged._key_joints, state.merged_pairs, state.supports,
                estimator_cls=type(self).table_estimator_cls)
        return {"shard": index, "worker": worker_id,
                "from_worker": old_slot.worker_id, "token": token,
                "moved": True}

    def shrink_worker(self, worker_id: int) -> dict:
        """Drain one worker and retire it from the pool.

        Every shard currently homed on the worker is re-homed (one at a
        time, re-reading the published state each move, so concurrent
        updates and swaps interleave safely), then the worker id is
        permanently retired.  Estimates that raced the retirement with
        probes still pinned to the old worker's tokens fall back to the
        driver-side ledgers, bit-identically.
        """
        moved = []
        while True:
            state = self._require_state()
            victim = None
            for index in range(len(state.shard_set)):
                if state.shard_set.model(index).worker_id == worker_id:
                    victim = index
                    break
            if victim is None:
                break
            self.rehome_shard(victim)
            moved.append(victim)
        self._pool.retire(worker_id)
        return {"worker": worker_id, "moved_shards": moved,
                "retired": True}

    # -- ledger compaction -----------------------------------------------------

    def compact_shard(self, index: int, *, save_dir=None,
                      force: bool = False) -> dict:
        """Collapse one shard's ledger: persist its *current* state as a
        fresh sub-artifact and reset the journal.

        The owning worker re-saves the model it already holds
        (:class:`~repro.cluster.messages.CompactToken`) — into
        ``save_dir`` when given, into the attached artifact store
        otherwise (a driver-chosen temporary directory if neither) —
        and the token's ledger becomes ``(fresh artifact, empty
        journal)``, so the next crash reseed is a single ``LoadShard``
        instead of a full journal replay.  Serving state is untouched:
        same token, same worker-side model, same answers.  If the worker
        crashes mid-compaction, the driver materializes the ledger and
        saves it itself.
        """
        with self._update_lock:
            state = self._require_state()
            if not 0 <= index < len(state.shard_set):
                raise ReproError(
                    f"shard index {index} out of range for a "
                    f"{len(state.shard_set)}-shard ensemble")
            slot = state.shard_set.model(index)
            ledger = self._ledgers.get(slot.token)
            if ledger is None:
                raise ReproError(
                    f"shard state {slot.token!r} has no ledger to "
                    f"compact")
            if not ledger.journal and not force:
                return {"shard": index, "token": slot.token,
                        "compacted": False, "journal_dropped": 0,
                        "path": ledger.path}
            summary = state.summaries[index]
            store = self._ledgers.store
            if save_dir is None and store is None:
                import tempfile

                save_dir = tempfile.mkdtemp(
                    prefix=f"repro-compact-s{index}-")
            message = CompactToken(
                slot.token,
                save_dir=str(save_dir) if save_dir is not None else None,
                summary=summary)
            try:
                result = self._pool.call(slot.worker_id, message)
                path = result.path
            except WorkerError:
                self._pool.ensure_alive(slot.worker_id)
                path = self._compact_locally(slot, message, store)
            dropped = len(ledger.journal)
            self._ledgers.set(slot.token,
                              _Ledger(index, str(path),
                                      worker_id=slot.worker_id))
        return {"shard": index, "token": slot.token, "compacted": True,
                "journal_dropped": dropped, "path": str(path)}

    def _compact_locally(self, slot: RemoteShardModel, message, store):
        """Driver-side compaction fallback: materialize the ledger and
        persist it here (same artifact writer the worker would run)."""
        import tempfile

        from repro.shard.artifact import save_shard_artifact

        model = slot._local_model()
        if message.save_dir is not None:
            save_shard_artifact(model, message.save_dir,
                                summary=message.summary)
            return message.save_dir
        with tempfile.TemporaryDirectory(
                prefix="repro-compact-") as staging:
            save_shard_artifact(model, staging, summary=message.summary)
            return store.publish(staging)

    def update(self, table_name: str, new_rows=None,
               deleted_rows=None) -> None:
        """Routed incremental update (inherited), plus automatic ledger
        compaction when ``compact_after`` is configured."""
        super().update(table_name, new_rows, deleted_rows=deleted_rows)
        self._auto_compact()

    def _auto_compact(self) -> None:
        limit = getattr(self, "_compact_after", None)
        if not limit:
            return
        state = self._require_state()
        for index in range(len(state.shard_set)):
            slot = state.shard_set.model(index)
            ledger = self._ledgers.get(slot.token)
            if ledger is not None and len(ledger.journal) >= limit:
                try:
                    self.compact_shard(index)
                except (WorkerError, ReproError):
                    pass  # best-effort; the next update tries again

    def close(self) -> None:
        """Detach from the pool: deregister the reseed hook, and shut
        the pool down when this model owns it (a shared pool keeps
        running for its other models)."""
        self._pool.remove_restart_hook(self._reseed_worker)
        if getattr(self, "_owns_pool", False):
            self._pool.shutdown()

    def __enter__(self) -> "ClusterModel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- estimation (batched per-query prefetch, then inherited inference) -----

    def estimate(self, query: Query) -> float:
        state = self._require_state()
        with trace_span("session.prep"):
            self._prefetch(state, query)
        with trace_span("bound.fold"):
            return state.merged.estimate(query)

    def estimate_subplans(self, query: Query, min_tables: int = 1,
                          progressive: bool = True) -> dict[frozenset, float]:
        state = self._require_state()
        with trace_span("session.prep"):
            self._prefetch(state, query)
        with trace_span("bound.fold"):
            return state.merged.estimate_subplans(
                query, min_tables=min_tables, progressive=progressive)

    def open_session(self, query: Query):
        """Prepared sub-plan probing: the query's per-alias key-group
        probes ship to the workers once (one batch per worker), and
        every session probe after that combines the primed factors in
        the driver — no further RPC."""
        state = self._require_state()
        with trace_span("session.prep"):
            self._prefetch(state, query)
        return state.merged.open_session(query)

    def base_factor(self, query: Query, alias: str, groups_q=None):
        state = self._require_state()
        with trace_span("session.prep"):
            self._prefetch(state, query)
        return state.merged.base_factor(query, alias, groups_q)

    def _prefetch(self, state, query: Query) -> None:
        """Ship every probe the query's base factors will need — one
        batch per worker, in parallel — and prime the estimators.

        Best-effort: anything this cannot plan (unsupported queries,
        exotic predicates) simply falls through to the per-probe path,
        which computes the same numbers one round trip at a time.
        """
        try:
            groups_q = query_key_groups(query)
        except ReproError:
            return
        # one requirement per (table, filter): several aliases of one
        # table with one filter share probes, exactly as the in-process
        # estimator would recompute them identically
        requirements: dict = {}
        for alias in query.aliases:
            table_name = query.table_of(alias)
            pred = query.filter_of(alias)
            columns: list[str] = []
            for var in groups_q.vars_of_alias(alias):
                for ref in groups_q.refs_of(alias, var):
                    if ref.column not in columns:
                        columns.append(ref.column)
            key = (table_name, pred)
            if key in requirements:
                merged_cols = requirements[key]
                for column in columns:
                    if column not in merged_cols:
                        merged_cols.append(column)
            else:
                requirements[key] = columns
        plan = []  # (estimator, pred, cols_needed, total_needed, shards)
        for (table_name, pred), columns in requirements.items():
            estimator = state.merged.table_estimator(table_name)
            cols_needed, total_needed = estimator.missing_requirements(
                pred, tuple(columns))
            if not cols_needed and not total_needed:
                continue
            plan.append((estimator, pred, cols_needed, total_needed,
                         estimator.candidate_shards(pred)))
        if not plan:
            return
        # group by worker: each worker answers all its shards' probes in
        # one round trip
        per_worker: dict[int, list] = {}
        for probe_id, (estimator, pred, cols, total_needed,
                       shards) in enumerate(plan):
            for shard_index in shards:
                remote = state.shard_set.model(shard_index)
                item = ProbeItem(remote.token, estimator._table_name,
                                 pred, cols, total_needed)
                per_worker.setdefault(remote.worker_id, []).append(
                    (probe_id, shard_index, remote, item))
        ctx = capture_context()
        futures = {
            worker_id: self._pool.spawn(self._batch_in_context, ctx,
                                        worker_id, entries)
            for worker_id, entries in per_worker.items()
        }
        by_probe: dict[tuple[int, int], ProbeResult] = {}
        for worker_id, future in futures.items():
            for (probe_id, shard_index, _, _), result in zip(
                    per_worker[worker_id], future.result()):
                by_probe[(probe_id, shard_index)] = result
        for probe_id, (estimator, pred, cols, total_needed,
                       shards) in enumerate(plan):
            ordered = [by_probe[(probe_id, s)] for s in shards]
            total, dists = merge_probe_results(ordered, cols,
                                               estimator._binnings,
                                               total_needed)
            estimator.store_probe(pred, total, dists)

    def _batch_in_context(self, ctx, worker_id: int, entries: list) -> list:
        """Executor-thread shim for one worker's prefetch batch:
        re-activates the request's trace context on the fan-out thread
        and wraps the batch in a per-worker span, so the rpc round trip
        and the worker's own span nest under the request."""
        with use_context(ctx):
            with trace_span("probe.fanout", worker=worker_id,
                            probes=len(entries)):
                return self._call_batch(worker_id, entries)

    def _call_batch(self, worker_id: int, entries: list) -> list:
        """One worker's batch; on a crash, restart it and answer each
        item in-process from its shard's ledger."""
        try:
            return list(self._pool.call(
                worker_id, BatchProbe(tuple(item for *_, item in entries))))
        except WorkerError:
            self._pool.ensure_alive(worker_id)
            with trace_span("probe.retry", retried=True,
                            restarted_worker=worker_id):
                return [remote.local_probe(item)
                        for _, _, remote, item in entries]

    # -- hot swap --------------------------------------------------------------

    def _swap_parts(self, state, index: int, replacement,
                    summary: ShardSummary | None):
        """Cluster resolution of a hot-swap replacement (see
        :meth:`ShardedFactorJoin.hot_swap_shard` for the shared
        skeleton): the owning worker loads the refreshed sub-artifact as
        a new token, and the new slot is a worker-backed proxy.
        In-flight estimates stay pinned to the outgoing token (the
        worker keeps it until they finish) and the other shards'
        worker-side models and driver-side probe memos are untouched.
        """
        if not isinstance(replacement, (str, Path)):
            raise UnsupportedOperationError(
                "a cluster hot-swap takes a shard artifact directory "
                "(the owning worker loads it); save the refreshed shard "
                "with repro.shard.save_shard_artifact first")
        path = Path(replacement)
        if summary is None:
            summary = load_shard_summary(path) or ShardSummary({})
        old_slot = state.shard_set.model(index)
        old_stats = old_slot.shard_stats()
        # the shard's *current* home (re-homing moves shards off the
        # pool's default layout, so owner_of(index) would be wrong)
        worker_id = old_slot.worker_id
        store = self._ledgers.store
        ref = store.publish(path) if store is not None else str(path)
        token = _new_token(index)
        ledger = _Ledger(index, ref, worker_id=worker_id)
        self._ledgers.set(token, ledger)
        try:
            try:
                self._pool.call(worker_id, LoadShard(token, ref, index))
                new_stats = self._pool.call(worker_id,
                                            ShardStatsRequest(token))
            except WorkerError:
                self._pool.ensure_alive(worker_id)
                model = _materialize_ledger(ledger, store=store)
                self._local_models[token] = model
                new_stats = shard_stats_of(model, model.database.schema)
        except Exception:
            # a bad replacement (corrupt/missing artifact) publishes
            # nothing — and must not leak its provisional token
            _release_token(self._pool, worker_id, token,
                           self._ledgers, self._local_models)
            raise
        slot = RemoteShardModel(self._pool, worker_id, index, token,
                                self._ledgers, self._local_models)
        return slot, old_stats, new_stats, summary, {"artifact": str(path)}

    # -- protocol / introspection ----------------------------------------------

    def capabilities(self):
        """The ensemble's declared capabilities under the cluster's
        family name."""
        return _replace(super().capabilities(), name="factorjoin-cluster")

    def describe(self) -> dict:
        base = super().describe()
        base.update(kind="ClusterModel", artifact=self._artifact_path,
                    cluster=self._pool.describe())
        return base

    # -- blocked persistence surface -------------------------------------------

    def fit(self, database):
        raise UnsupportedOperationError(
            "a ClusterModel serves a fitted artifact; fit with "
            "ShardedFactorJoin.fit (or repro.cluster.fit_distributed), "
            "save it, then ClusterModel.from_artifact")

    def save(self, path, name=None, compress=False):
        raise UnsupportedOperationError(
            "a ClusterModel is a serving facade over the ensemble "
            "artifact it was opened from; copy or refresh that artifact "
            "instead of saving the facade")

    def __getstate__(self):
        raise UnsupportedOperationError(
            "ClusterModel holds worker processes and cannot be pickled; "
            "reopen with ClusterModel.from_artifact")
