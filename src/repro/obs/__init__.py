"""Observability layer: metrics, tracing, profiling, SLOs — cluster-wide.

The serving and cluster stack spans five layers (model → session → cache
→ service → cluster workers); this package gives every one of them a
shared, dependency-free instrumentation surface:

- :mod:`repro.obs.metrics` — a **metrics registry** of counters, gauges,
  and histograms with exact streaming percentiles (values quantized to
  three significant figures, so percentiles are exact over the *whole*
  stream in bounded memory, not a recent window).  One registry per
  service absorbs the former ``LatencyStats``/cache-counter one-offs and
  renders itself as Prometheus text (``GET /metrics``) or JSON
  (``GET /v1/stats``).  Histogram observations can carry a trace id,
  stored as per-bucket **exemplars** linking a slow percentile bucket to
  a concrete trace.
- :mod:`repro.obs.trace` — **structured tracing**: every request gets a
  trace id and a span tree (parse → session prep → cache lookup →
  per-shard probe fan-out → bound fold).  The trace context propagates
  inside cluster RPC envelopes, so worker-side spans (artifact load,
  probe batches, journal replay, reseed) nest under the driver's request
  span.  Finished traces land in a ring-buffer
  :class:`~repro.obs.trace.TraceLog` (recent + slow queries, served at
  ``GET /v1/traces``) and optionally in a JSONL export file
  (``repro serve --trace-log FILE``, size-capped via rotation).
- :mod:`repro.obs.export` — the Prometheus text exposition renderer and
  a validating parser (the CI scrape check), plus the JSONL trace
  exporter.
- :mod:`repro.obs.federate` — **cross-process federation**: shard
  workers each run their own registry; a scrape-time ``CollectMetrics``
  RPC ships picklable snapshots to the driver, where they merge
  losslessly (quantized count-dict histograms sum exactly) under
  ``worker=``/``shard_group=`` labels, with restart-safe monotone
  folding keyed by pool-slot generation.
- :mod:`repro.obs.profile` — a stdlib **wall-clock sampling profiler**
  (``sys._current_frames`` at a configurable hz) with collapsed-stack
  export, reachable via ``GET /v1/profile``, ``repro profile``, and a
  ``Profile`` RPC against remote workers.
- :mod:`repro.obs.slo` — declared **service-level objectives**
  (availability, latency, q-error) with rolling multi-window burn-rate
  gauges (``repro_slo_burn_rate``), served at ``GET /v1/slo`` and on
  ``/metrics``.

Instrumentation is **always on and cheap**: spans are plain objects with
two clock reads, metric updates are one dict operation under a short
lock, and the no-op twins (:data:`NULL_METRICS`, :data:`NULL_TRACER`,
:data:`NULL_SLO`) exist so ``benchmarks/bench_obs_overhead.py`` can hold
the overhead under its <5% QPS gate.
"""

from repro.obs.export import (
    JsonlTraceExporter,
    parse_prometheus_text,
    render_prometheus,
)
from repro.obs.federate import (
    MetricsFederator,
    empty_snapshot,
    merge_snapshot,
    snapshot_families,
    snapshot_registry,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    percentile_from_counts,
    quantize,
)
from repro.obs.profile import ProfileReport, profile_here
from repro.obs.slo import (
    NULL_SLO,
    SLO,
    NullSloTracker,
    SloTracker,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceLog,
    Tracer,
    absorb_remote_spans,
    capture_context,
    current_trace_id,
    trace_span,
    use_context,
    wire_context,
)

__all__ = [
    "absorb_remote_spans",
    "capture_context",
    "Counter",
    "current_trace_id",
    "empty_snapshot",
    "Gauge",
    "Histogram",
    "JsonlTraceExporter",
    "merge_snapshot",
    "MetricsFederator",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_SLO",
    "NULL_TRACER",
    "NullMetrics",
    "NullSloTracker",
    "NullTracer",
    "parse_prometheus_text",
    "percentile_from_counts",
    "profile_here",
    "ProfileReport",
    "quantize",
    "render_prometheus",
    "SLO",
    "SloTracker",
    "snapshot_families",
    "snapshot_registry",
    "Span",
    "TraceLog",
    "trace_span",
    "Tracer",
    "use_context",
    "wire_context",
]
