"""Extra ablation (Section 4.2): workload-aware bin budget allocation.

With a constrained total bin budget, allocating bins proportionally to how
often each equivalent key group appears in the workload should estimate the
workload at least as tightly as a uniform split.
"""

from repro.baselines import FactorJoinMethod
from repro.core.estimator import FactorJoinConfig
from repro.eval.metrics import q_error
from repro.utils import format_table


def median_q_error(ctx, method, max_queries=60):
    errors = []
    for query in ctx.workload[:max_queries]:
        truth = ctx.benchmark.true_cardinality(query)
        if truth <= 0:
            continue
        errors.append(q_error(method.estimate(query), truth))
    errors.sort()
    return errors[len(errors) // 2]


def test_workload_aware_bin_budget(benchmark, stats_ctx):
    budget = 8  # deliberately scarce across the two key groups

    uniform = FactorJoinMethod(FactorJoinConfig(
        n_bins=budget // 2, total_bin_budget=budget,
        table_estimator="bayescard", seed=0))
    uniform.fit(stats_ctx.database)

    aware = FactorJoinMethod(FactorJoinConfig(
        n_bins=budget // 2, total_bin_budget=budget,
        table_estimator="bayescard", seed=0,
        workload=stats_ctx.workload[:40]))
    aware.fit(stats_ctx.database)

    rows = []
    results = {}
    for label, method in (("uniform split", uniform),
                          ("workload-aware", aware)):
        med = median_q_error(stats_ctx, method)
        sizes = {name: method.model.binning_for_group(name).n_bins
                 for name in method.model.group_names()}
        results[label] = med
        rows.append([label, str(sizes), f"{med:.2f}"])
    print()
    print(format_table(["Allocation", "bins per group", "median q-error"],
                       rows, title="Ablation: bin budget allocation "
                                   "(Section 4.2)"))

    assert results["workload-aware"] <= results["uniform split"] * 1.5

    benchmark(lambda: aware.estimate(stats_ctx.workload[0]))
