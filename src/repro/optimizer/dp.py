"""Dynamic-programming join ordering over connected sub-plans.

Classic DPsub restricted to connected subsets (cross products only when the
join graph itself is disconnected): for each connected alias subset, the
cheapest plan is the cheapest way of splitting it into two connected,
joinable halves.  Cardinalities come from an injected oracle — which is how
the harness feeds each CardEst method's estimates to the same optimizer,
mirroring the paper's "inject into PostgreSQL" methodology.

Determinism contract
--------------------
``optimize`` is a pure function of (query structure, oracle values, cost
model): equal-cost candidates are tie-broken by :func:`plan_order_key`,
a total order over plan trees, so the chosen plan never depends on
enumeration order, hash seeds, or dict history.  The same estimator
therefore always yields bit-identical plans — the property the plan
harness's agreement metric and the plan-identity CI gates assert.
"""

from __future__ import annotations

from typing import Callable

from repro.optimizer.cost import CostModel, C_OUT
from repro.optimizer.plans import JoinPlan
from repro.sql.query import Query

CardOracle = Callable[[frozenset], float]


def plan_order_key(plan: JoinPlan) -> tuple:
    """A total order over join trees used to tie-break equal-cost plans.

    Leaves order by alias; joins order by (left key, right key), with
    every leaf sorting before every join of the same cost.  The key is a
    pure function of the tree, so "smallest key wins" makes the DP's
    choice among equally cheap plans reproducible across runs, Python
    versions, and hash seeds — plan-identity assertions (same estimator
    twice → bit-identical plans) rely on it.
    """
    if plan.is_leaf:
        return (0, min(plan.aliases))
    return (1, plan_order_key(plan.left), plan_order_key(plan.right))


def optimize(query: Query, card: CardOracle,
             cost_model: CostModel = C_OUT) -> tuple[JoinPlan, float]:
    """Best plan and its estimated cost for ``query`` under ``card``;
    equal-cost ties resolve to the smallest :func:`plan_order_key`."""
    aliases = query.aliases
    if not aliases:
        raise ValueError("cannot optimize an empty query")
    if len(aliases) == 1:
        return JoinPlan.leaf(aliases[0]), 0.0

    adj = query.adjacency()
    best: dict[frozenset, tuple[float, JoinPlan]] = {}
    for alias in aliases:
        best[frozenset([alias])] = (0.0, JoinPlan.leaf(alias))

    subsets = query.connected_subsets(min_tables=2)
    full = frozenset(aliases)
    if full not in subsets:
        # disconnected join graph: fall back to greedy cross products
        return _greedy_disconnected(query, card, cost_model)

    for subset in subsets:
        best_cost, best_plan, best_key = float("inf"), None, None
        members = sorted(subset)
        # enumerate proper subsets via bitmask over the subset's members
        n = len(members)
        for mask in range(1, (1 << n) - 1):
            left = frozenset(members[i] for i in range(n) if mask >> i & 1)
            right = subset - left
            if left not in best or right not in best:
                continue
            if not _joinable(left, right, adj):
                continue
            plan = JoinPlan.join(best[left][1], best[right][1])
            cost = cost_model.cost(plan, card)
            if cost > best_cost:
                continue
            key = plan_order_key(plan)
            if cost < best_cost or key < best_key:
                best_cost, best_plan, best_key = cost, plan, key
        if best_plan is not None:
            best[subset] = (best_cost, best_plan)

    if full not in best:
        return _greedy_disconnected(query, card, cost_model)
    cost, plan = best[full]
    return plan, cost


def _joinable(left: frozenset, right: frozenset,
              adj: dict[str, set[str]]) -> bool:
    for alias in left:
        if adj[alias] & right:
            return True
    return False


def _greedy_disconnected(query: Query, card: CardOracle,
                         cost_model: CostModel) -> tuple[JoinPlan, float]:
    """Left-deep greedy fallback that tolerates cross products.

    Candidate pools iterate in sorted alias order and ``min`` keys carry
    the alias as final component, so equal-cardinality ties resolve to
    the lexicographically smallest alias — never to set iteration order,
    which varies with hash randomization across runs.
    """
    aliases = list(query.aliases)
    adj = query.adjacency()
    remaining = set(aliases)
    start = min(sorted(remaining),
                key=lambda a: (card(frozenset([a])), a))
    plan = JoinPlan.leaf(start)
    remaining.discard(start)
    while remaining:
        connected = [a for a in sorted(remaining) if adj[a] & plan.aliases]
        pool = connected or sorted(remaining)
        nxt = min(pool,
                  key=lambda a: (card(plan.aliases | frozenset([a])), a))
        plan = JoinPlan.join(plan, JoinPlan.leaf(nxt))
        remaining.discard(nxt)
    return plan, cost_model.cost(plan, card)


def make_oracle(cards: dict[frozenset, float],
                default: float = 1.0) -> CardOracle:
    """Oracle over a precomputed sub-plan cardinality dict."""
    def oracle(aliases: frozenset) -> float:
        return cards.get(frozenset(aliases), default)
    return oracle


def session_oracle(session) -> CardOracle:
    """Oracle probing a prepared
    :class:`~repro.api.protocol.EstimationSession` lazily.

    This is the paper's intended optimizer integration: the DP never
    materializes the whole lattice up front — each ``card(subset)``
    probe hits the session, which answers it as one incremental factor
    combination and memoizes it for the next probe.
    """
    def oracle(aliases: frozenset) -> float:
        return session.estimate_join(aliases)
    return oracle


def optimize_with_session(query: Query, session,
                          cost_model: CostModel = C_OUT
                          ) -> tuple[JoinPlan, float]:
    """Best plan under a prepared session's estimates.

    Equivalent to ``optimize(query, make_oracle(session.estimate_all()))``
    for connected queries — sessions answer probes bit-identically to
    one-shot estimates — but the lattice is computed on demand as the DP
    asks for it, amortizing per-query setup across probes.
    """
    return optimize(query, session_oracle(session), cost_model)
