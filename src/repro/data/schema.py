"""Schema metadata: column declarations, tables, and join relations.

The schema's join relations are the input to equivalent-key-group discovery
(Section 3.3 of the paper: "FactorJoin first analyzes its DB schema ... to get
all possible join relations between different join-keys").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.types import DataType
from repro.errors import SchemaError


@dataclass(frozen=True)
class ColumnSchema:
    """Declaration of one column.

    ``is_key`` marks join keys (PKs and FKs); only key columns participate in
    equivalent key groups and binning.
    """

    name: str
    dtype: DataType
    is_key: bool = False


@dataclass(frozen=True)
class JoinRelation:
    """A declared equi-join relation ``left_table.left_column = right_table.right_column``."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str

    def endpoints(self) -> tuple[tuple[str, str], tuple[str, str]]:
        return ((self.left_table, self.left_column),
                (self.right_table, self.right_column))


@dataclass
class TableSchema:
    name: str
    columns: list[ColumnSchema] = field(default_factory=list)

    def __post_init__(self):
        seen = set()
        for col in self.columns:
            if col.name in seen:
                raise SchemaError(
                    f"table schema {self.name!r}: duplicate column {col.name!r}")
            seen.add(col.name)

    def column(self, name: str) -> ColumnSchema:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(
            f"table schema {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(col.name == name for col in self.columns)

    @property
    def key_columns(self) -> list[str]:
        return [c.name for c in self.columns if c.is_key]

    @property
    def attribute_columns(self) -> list[str]:
        return [c.name for c in self.columns if not c.is_key]


class DatabaseSchema:
    """All table schemas plus the declared join relations among their keys."""

    def __init__(self, tables: list[TableSchema],
                 join_relations: list[JoinRelation] | None = None):
        self._tables: dict[str, TableSchema] = {}
        for ts in tables:
            if ts.name in self._tables:
                raise SchemaError(f"duplicate table schema {ts.name!r}")
            self._tables[ts.name] = ts
        self.join_relations: list[JoinRelation] = []
        for rel in (join_relations or []):
            self.add_join_relation(rel)

    # -- accessors --------------------------------------------------------------

    @property
    def table_names(self) -> list[str]:
        return list(self._tables)

    def table(self, name: str) -> TableSchema:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"schema has no table {name!r}; "
                              f"tables: {sorted(self._tables)}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    # -- join relations -----------------------------------------------------------

    def add_join_relation(self, rel: JoinRelation) -> None:
        for tname, cname in rel.endpoints():
            tschema = self.table(tname)
            cschema = tschema.column(cname)
            if not cschema.is_key:
                raise SchemaError(
                    f"join relation endpoint {tname}.{cname} is not declared "
                    f"as a key column")
        self.join_relations.append(rel)

    def key_endpoints(self) -> list[tuple[str, str]]:
        """All (table, column) pairs that are key columns."""
        out = []
        for ts in self._tables.values():
            for cname in ts.key_columns:
                out.append((ts.name, cname))
        return out

    def __repr__(self) -> str:
        return (f"DatabaseSchema(tables={self.table_names}, "
                f"joins={len(self.join_relations)})")
