"""Serving layer: model persistence, registry, caching, and an HTTP API.

FactorJoin's offline phase is minutes, its online phase sub-millisecond
(paper Sections 3.3, 4) — this package makes that asymmetry operational:

- :mod:`repro.serve.artifact` — fit once, save a versioned artifact with a
  manifest and integrity checks, load it anywhere;
- :mod:`repro.serve.registry` — hold many named models, hot-swap refreshed
  ones atomically under concurrent readers;
- :mod:`repro.serve.cache` — LRU estimate cache on canonical query
  fingerprints, invalidated on swap/update;
- :mod:`repro.serve.service` — single / batched / sub-plan estimation with
  latency accounting, safe under concurrent callers;
- :mod:`repro.serve.httpd` — a dependency-free JSON HTTP front end
  (``repro serve`` on the command line).
"""

from repro.serve.artifact import (
    FORMAT_VERSION,
    load_model,
    read_manifest,
    save_model,
    schema_fingerprint,
)
from repro.serve.cache import EstimateCache, query_fingerprint
from repro.serve.httpd import ServingServer, make_server, serve_in_background
from repro.serve.registry import ModelRecord, ModelRegistry
from repro.serve.service import (
    DEFAULT_MODEL,
    EstimateResult,
    EstimationService,
    LatencyStats,
)

__all__ = [
    "DEFAULT_MODEL",
    "EstimateCache",
    "EstimateResult",
    "EstimationService",
    "FORMAT_VERSION",
    "LatencyStats",
    "load_model",
    "make_server",
    "ModelRecord",
    "ModelRegistry",
    "query_fingerprint",
    "read_manifest",
    "save_model",
    "schema_fingerprint",
    "serve_in_background",
    "ServingServer",
]
