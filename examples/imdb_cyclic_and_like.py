"""IMDB-JOB walkthrough: the query classes only FactorJoin handles.

Cyclic join templates, self joins of ``title`` through ``movie_link``, and
LIKE string filters — the paper's Section 2.2 support matrix.  FactorJoin
runs them all (with the sampling single-table estimator); the learned
data-driven baseline must reject them.

Run:  python examples/imdb_cyclic_and_like.py
"""

from repro.baselines import FanoutDataDrivenMethod
from repro.core.estimator import FactorJoin, FactorJoinConfig
from repro.engine import CardinalityExecutor
from repro.sql import parse_query
from repro.workloads.imdb_job import build_imdb_database

QUERIES = {
    "LIKE filter": (
        "SELECT COUNT(*) FROM title t, movie_info mi "
        "WHERE t.id = mi.movie_id AND t.title LIKE '%The%' "
        "AND t.production_year > 1990"),
    "cyclic alias graph": (
        "SELECT COUNT(*) FROM title t, movie_info mi, movie_info_idx midx "
        "WHERE t.id = mi.movie_id AND t.id = midx.movie_id "
        "AND mi.movie_id = midx.movie_id AND t.production_year > 2000"),
    "self join via movie_link": (
        "SELECT COUNT(*) FROM title t1, title t2, movie_link ml "
        "WHERE ml.movie_id = t1.id AND ml.linked_movie_id = t2.id "
        "AND t1.production_year > 2000 AND t2.production_year < 1990"),
}


def main() -> None:
    print("building IMDB-like database (21 tables, 11 key groups)...")
    db = build_imdb_database(scale=0.1, seed=0)
    executor = CardinalityExecutor(db)

    # sampling estimator: the only single-table model that evaluates LIKE.
    # (A generous rate for the tiny demo database — single-row hot keys
    # are easy to miss at low rates, the failure mode the paper notes for
    # highly selective IMDB predicates.)
    model = FactorJoin(FactorJoinConfig(
        n_bins=16, table_estimator="sampling", sample_rate=0.5))
    model.fit(db)

    data_driven = FanoutDataDrivenMethod().fit(db)

    for label, sql in QUERIES.items():
        query = parse_query(sql)
        est = model.estimate(query)
        true = executor.cardinality(query)
        supported = data_driven.supports(query)
        print(f"\n--- {label} ---")
        print(f"  FactorJoin estimate: {est:,.0f}   true: {true:,.0f}"
              f"   est/true: {est / max(true, 1):.2f}")
        print(f"  learned data-driven supports it: {supported}"
              f"   (paper Section 2.2: {'yes' if supported else 'no'})")


if __name__ == "__main__":
    main()
