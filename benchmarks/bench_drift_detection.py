"""Drift-detection gate: fast flagging, zero false positives, <5% QPS.

The drift layer's contract has three edges, and this bench pins all of
them on the same STATS-scale serving regime the obs-overhead bench
uses:

- **Detection latency** — after an injected update-driven shift (true
  cardinalities inflate while the served model's estimates go stale),
  the monitor must flag the drifted attribution keys within
  :data:`MAX_DETECTION_SAMPLES` feedback samples.  A detector that
  needs hundreds of samples to notice a 10x accuracy collapse is not an
  alerting signal, it is a post-mortem.
- **Zero false positives on the stable prefix** — the same workload
  served accurately for :data:`STABLE_SAMPLES` samples must leave every
  attribution key ``stable``.  A drift page that cries wolf gets muted,
  at which point the whole subsystem is decorative.
- **Hot-path overhead** — the full estimate→feedback loop with a live
  :class:`~repro.obs.drift.DriftMonitor` (plus alert engine and flight
  recorder) must retain ≥95% of the QPS of the same service with the
  null twins, measured with the obs bench's interleaved per-query-
  minima discipline.  Like that bench, the gate runs on the inference
  path (LRU-1 cache, no sub-plan reuse): a ratio against a ~20us cache
  hit would only measure the Python interpreter's floor, not whether
  drift attribution fits the serving budget of the regime the paper's
  system actually operates in (millisecond inferences).

All numbers land in ``BENCH_drift.json`` (override with
``BENCH_DRIFT_JSON``) for CI to upload and trend.
"""

import json
import os
import time

import pytest

from repro.api import FeedbackRequest
from repro.core.estimator import FactorJoin, FactorJoinConfig
from repro.eval.harness import make_context
from repro.obs import (
    NULL_ALERTS,
    NULL_DRIFT,
    NULL_FLIGHT,
    AlertEngine,
    DriftMonitor,
    FlightRecorder,
    default_alert_rules,
)
from repro.serve import EstimationService
from repro.utils import format_table

#: Instrumented feedback must retain this fraction of null-build QPS.
MIN_QPS_RATIO = 0.95

#: A shifted key must be flagged (non-stable) within this many
#: post-shift feedback samples on that key.
MAX_DETECTION_SAMPLES = 40

#: Stable-prefix length over which no key may leave ``stable``.
STABLE_SAMPLES = 200

#: Error inflation applied by the injected shift — the regime of a
#: model gone stale after unabsorbed updates (10x, well past the
#: q-error SLO threshold).
SHIFT_FACTOR = 10.0

ROUNDS = 8
N_QUERIES = 20

#: Gate measurements accumulated across tests, flushed to
#: ``BENCH_drift.json`` by the module-scoped reporter fixture.
RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Write whatever gates ran to the machine-readable report, even on
    partial failure — CI uploads the file as an artifact either way."""
    yield
    path = os.environ.get("BENCH_DRIFT_JSON", "BENCH_drift.json")
    payload = {"generated_by": "benchmarks/bench_drift_detection.py",
               **RESULTS}
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.fixture(scope="module")
def drift_ctx():
    return make_context("stats", scale=0.2, seed=0, max_tables=6)


@pytest.fixture(scope="module")
def fitted(drift_ctx):
    model = FactorJoin(FactorJoinConfig(
        n_bins=8, table_estimator="truescan", seed=0))
    return model.fit(drift_ctx.database)


class FakeClock:
    def __init__(self, at=0.0):
        self.at = at

    def __call__(self):
        return self.at

    def advance(self, seconds):
        self.at += seconds


def _service(fitted, monitored: bool) -> EstimationService:
    # LRU-1 + no sub-plan reuse: every estimate in the loop is a
    # genuine inference (see module docstring)
    kwargs = dict(cache_size=1, subplan_reuse=False)
    if monitored:
        service = EstimationService(
            drift=DriftMonitor(),
            alerts=AlertEngine(rules=default_alert_rules()),
            flight=FlightRecorder(), **kwargs)
    else:
        service = EstimationService(drift=NULL_DRIFT, alerts=NULL_ALERTS,
                                    flight=NULL_FLIGHT, **kwargs)
    service.register("default", fitted)
    return service


class TestDetectionLatency:
    def test_shift_flagged_fast_with_no_false_positives(self, fitted,
                                                        drift_ctx):
        clock = FakeClock()
        service = EstimationService(drift=DriftMonitor(clock=clock))
        service.register("default", fitted)
        queries = drift_ctx.workload[:N_QUERIES]
        estimates = [service.estimate(q).estimate for q in queries]

        # stable prefix: truth == estimate, round-robin over the
        # workload so every attribution key builds a baseline
        for i in range(STABLE_SAMPLES):
            clock.advance(1.0)
            query, est = queries[i % N_QUERIES], estimates[i % N_QUERIES]
            service.record_feedback(FeedbackRequest(
                query=query, true_cardinality=max(est, 1.0),
                estimate=est))
        report = service.drift_report()
        false_positives = [e for e in report.entries
                           if e["status"] != "stable"]
        RESULTS["stable_prefix"] = {
            "samples": STABLE_SAMPLES,
            "keys_tracked": len(report.entries),
            "false_positives": len(false_positives),
        }
        assert not false_positives, (
            f"{len(false_positives)} keys left 'stable' on an "
            f"accurately-served prefix: "
            f"{[(e['scope'], e['key']) for e in false_positives]}")

        # injected shift on one query: its truth inflates SHIFT_FACTOR-x
        drifted, est = queries[0], estimates[0]
        detected_after = None
        for n in range(1, MAX_DETECTION_SAMPLES + 1):
            clock.advance(1.0)
            service.record_feedback(FeedbackRequest(
                query=drifted,
                true_cardinality=max(est, 1.0) * SHIFT_FACTOR,
                estimate=est))
            flagged = {(e["scope"], e["key"])
                       for e in service.drift_report().entries
                       if e["status"] != "stable"}
            if flagged:
                detected_after = n
                break
        RESULTS["detection"] = {
            "shift_factor": SHIFT_FACTOR,
            "max_samples": MAX_DETECTION_SAMPLES,
            "detected_after_samples": detected_after,
        }
        print(f"\nshift of {SHIFT_FACTOR:.0f}x flagged after "
              f"{detected_after} samples "
              f"(gate: <={MAX_DETECTION_SAMPLES})")
        assert detected_after is not None, (
            f"a {SHIFT_FACTOR:.0f}x error shift went unflagged for "
            f"{MAX_DETECTION_SAMPLES} samples")
        # the flagged set names the drifted key, not an innocent one
        report = service.drift_report()
        flagged = {(e["scope"], e["key"]) for e in report.entries
                   if e["status"] != "stable"}
        drifted_tables = {drifted.table_of(a) for a in drifted.aliases}
        assert all(scope == "model" or key in drifted_tables
                   or scope in ("template", "shard")
                   for scope, key in flagged)


class TestOverheadGate:
    def test_feedback_loop_qps_within_five_percent_of_null(self, fitted,
                                                           drift_ctx):
        queries = drift_ctx.workload[:N_QUERIES]
        services = {
            "null": _service(fitted, monitored=False),
            "monitored": _service(fitted, monitored=True),
        }
        estimates = {
            name: [service.estimate(q).estimate for q in queries]
            for name, service in services.items()}
        # interleaved rounds, per-query minima (see bench_obs_overhead)
        best = {name: [float("inf")] * len(queries) for name in services}
        for _ in range(ROUNDS):
            for name, service in services.items():
                per_query = best[name]
                ests = estimates[name]
                for i, query in enumerate(queries):
                    start = time.perf_counter()
                    service.estimate(query)
                    service.record_feedback(FeedbackRequest(
                        query=query,
                        true_cardinality=max(ests[i], 1.0),
                        estimate=ests[i]))
                    elapsed = time.perf_counter() - start
                    if elapsed < per_query[i]:
                        per_query[i] = elapsed
        mean = {name: sum(per_query) / len(per_query)
                for name, per_query in best.items()}
        ratio = mean["null"] / mean["monitored"]
        RESULTS["overhead"] = {
            "null_qps": 1.0 / mean["null"],
            "monitored_qps": 1.0 / mean["monitored"],
            "qps_ratio": ratio,
            "overhead_pct": (1.0 - ratio) * 100.0,
        }
        print()
        print(format_table(
            ["build", "estimate+feedback QPS", "ratio vs null"],
            [["null (NULL_DRIFT/NULL_ALERTS/NULL_FLIGHT)",
              f"{1.0 / mean['null']:.0f}", "1.000"],
             ["monitored (drift+alerts+flight)",
              f"{1.0 / mean['monitored']:.0f}", f"{ratio:.3f}"]]))
        assert ratio >= MIN_QPS_RATIO, (
            f"drift monitoring costs {(1 - ratio) * 100:.1f}% QPS "
            f"(gate: <{(1 - MIN_QPS_RATIO) * 100:.0f}%)")
        # the monitored build actually tracked the traffic
        report = services["monitored"].drift_report()
        assert report.entries
        assert services["null"].drift.snapshot()["keys"] == {}
