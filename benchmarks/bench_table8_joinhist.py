"""Table 8: improvement over the classical join-histogram method by
removing its simplifying assumptions one at a time (STATS-CEB).

Paper: JoinHist +6.1% -> with Bound +17.5% -> with Conditional +31.7%
-> with Both (= FactorJoin on tree templates) +45.9%.

Shape checks: each removed assumption helps, and "with Both" is best.
"""

from repro.baselines import JoinHistMethod
from repro.utils import format_table

VARIANTS = (
    ("JoinHist", dict()),
    ("with Bound", dict(with_bound=True)),
    ("with Conditional", dict(with_conditional=True)),
    ("with Both (FactorJoin)", dict(with_bound=True, with_conditional=True)),
)


def test_table8_joinhist_ablation(benchmark, stats_ctx, stats_results):
    base = stats_results["Postgres"]
    rows, series = [], {}
    for label, kwargs in VARIANTS:
        method = JoinHistMethod(n_bins=8, seed=0, **kwargs)
        method.fit(stats_ctx.database)
        result = stats_ctx.runner.run(method, stats_ctx.workload)
        series[label] = result.improvement_over(base)
        rows.append([
            label,
            f"{result.total_end_to_end:.3f}s",
            f"{result.total_execution:.3f}s + "
            f"{result.total_planning:.3f}s",
            f"{series[label] * 100:+.1f}%",
        ])
    print()
    print(format_table(
        ["Variant", "End-to-end", "Exec + plan", "Improvement"], rows,
        title="Table 8: removing JoinHist's simplifying assumptions "
              "(STATS-CEB)"))

    # both techniques combined beat the plain join-histogram clearly
    assert series["with Both (FactorJoin)"] > series["JoinHist"]
    # and each individual technique is at least not harmful vs JoinHist
    assert series["with Bound"] >= series["JoinHist"] - 0.05
    assert series["with Conditional"] >= series["JoinHist"] - 0.05

    method = JoinHistMethod(n_bins=8, with_bound=True,
                            with_conditional=True, seed=0)
    method.fit(stats_ctx.database)
    benchmark(lambda: method.estimate(stats_ctx.workload[0]))
