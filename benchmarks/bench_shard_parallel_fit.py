"""Sharded ensembles: parallel fit scaling and merge fidelity.

The sharding layer's two claims, measured on STATS-CEB data:

- **fidelity** — a hash-partitioned :class:`ShardedFactorJoin` with an
  exact single-table estimator answers the bench_table2 workload
  *identically* to the unsharded model (the statistic merge is lossless,
  see :mod:`repro.shard.ensemble`), and a 4-shard bayescard ensemble
  stays within the bound semantics;
- **parallel fit** — fitting one model per shard through a process pool
  overlaps the per-shard offline phases.  The wall-clock win is
  hardware-bound: the speedup assertion only arms on machines with >= 4
  CPUs and enough per-shard work for the pool overhead to amortize
  (single-core runners still check that the parallel path is not
  pathologically slower and that results are identical).
"""

import os

import pytest

from repro.core.estimator import FactorJoin, FactorJoinConfig
from repro.eval.harness import make_context
from repro.shard import ShardedFactorJoin
from repro.utils import Timer, format_table

N_SHARDS = 4

# heavier than the shared test config so per-shard fit work is visible
# against executor overhead
HEAVY = dict(n_bins=64, table_estimator="bayescard", seed=0,
             fit_sample_rows=500_000, attribute_codes=64)


@pytest.fixture(scope="module")
def heavy_stats_ctx():
    return make_context("stats", scale=4.0, seed=0, max_tables=6)


def test_sharded_estimates_match_unsharded(stats_ctx):
    """bench_table2-scale fidelity: lossless merge with an exact
    single-table estimator, bit-for-bit across the whole workload."""
    config = FactorJoinConfig(n_bins=16, table_estimator="truescan", seed=0)
    flat = FactorJoin(config).fit(stats_ctx.database)
    sharded = ShardedFactorJoin(
        FactorJoinConfig(n_bins=16, table_estimator="truescan", seed=0),
        n_shards=N_SHARDS, parallel="serial").fit(stats_ctx.database)
    worst = 0.0
    for query in stats_ctx.workload:
        reference = flat.estimate(query)
        estimate = sharded.estimate(query)
        if reference > 0:
            worst = max(worst, abs(estimate - reference) / reference)
        assert estimate == pytest.approx(reference, rel=1e-9)
    print(f"\nsharded-vs-flat worst relative difference over "
          f"{len(stats_ctx.workload)} queries: {worst:.2e}")


def test_parallel_fit_scaling(benchmark, heavy_stats_ctx, stats_ctx):
    database = heavy_stats_ctx.database

    def config():
        return FactorJoinConfig(**HEAVY)

    with Timer() as flat_timer:
        FactorJoin(config()).fit(database)

    serial = ShardedFactorJoin(config(), n_shards=N_SHARDS,
                               parallel="serial").fit(database)
    parallel = ShardedFactorJoin(config(), n_shards=N_SHARDS,
                                 parallel="process").fit(database)

    shard_work = sum(parallel.shard_fit_seconds)
    effective = shard_work / max(parallel.fit_seconds, 1e-9)
    rows = [
        ["unsharded fit", f"{flat_timer.elapsed:.3f}s", "-"],
        ["sharded fit (serial)", f"{serial.fit_seconds:.3f}s",
         f"{sum(serial.shard_fit_seconds):.3f}s"],
        [f"sharded fit (process x{N_SHARDS})",
         f"{parallel.fit_seconds:.3f}s", f"{shard_work:.3f}s"],
    ]
    print()
    print(format_table(
        ["Path", "Wall clock", "Per-shard work"], rows,
        title=f"Parallel fit on {database.total_rows():,} rows "
              f"({os.cpu_count()} CPUs; effective parallelism "
              f"{effective:.2f}x)"))
    if parallel.parallel_fallback:
        print(f"process pool unavailable, fell back to serial: "
              f"{parallel.parallel_fallback}")

    # both executors must produce the same ensemble
    probe = heavy_stats_ctx.workload[0]
    assert parallel.estimate(probe) == pytest.approx(
        serial.estimate(probe), rel=1e-9)
    # the pool must never be pathologically slower than the serial path
    assert parallel.fit_seconds <= serial.fit_seconds * 2 + 1.0

    cpus = os.cpu_count() or 1
    enough_work = sum(serial.shard_fit_seconds) >= 0.5
    if cpus >= N_SHARDS and enough_work and not parallel.parallel_fallback:
        # the acceptance claim: with >= 4 cores, a 4-shard parallel fit
        # beats the single-process fit of the same data
        assert parallel.fit_seconds < flat_timer.elapsed
    else:
        print(f"speedup assertion skipped (cpus={cpus}, per-shard "
              f"work={sum(serial.shard_fit_seconds):.3f}s)")

    benchmark(lambda: ShardedFactorJoin(
        FactorJoinConfig(n_bins=8, table_estimator="truescan", seed=0),
        n_shards=2, parallel="serial").fit(stats_ctx.database))


def test_pruned_queries_touch_few_shards(stats_ctx):
    """Predicate pruning: an equality filter on the hash key reads one
    shard; whole-table scans read all of them."""
    sharded = ShardedFactorJoin(
        FactorJoinConfig(n_bins=8, table_estimator="truescan", seed=0),
        n_shards=N_SHARDS, parallel="serial").fit(stats_ctx.database)
    from repro.sql import parse_query

    pruned = parse_query("SELECT COUNT(*) FROM users u WHERE u.id = 11")
    full = parse_query("SELECT COUNT(*) FROM users u")
    assert len(sharded.candidate_shards(pruned, "u")) == 1
    assert len(sharded.candidate_shards(full, "u")) == N_SHARDS
