"""Injecting cardinalities into a query optimizer (the paper's end-to-end
methodology, Section 6.1).

Every estimator family implements the ``repro.api.CardinalityModel``
protocol, so the optimizer holds one prepared ``EstimationSession`` per
query and probes the sub-plan lattice through it — per-query setup (key
groups, base factors) is paid once, and the DP asks for cardinalities
lazily via ``optimize_with_session``.  The chosen plans are then costed
under the *true* cardinalities, so plan-quality differences are exactly
attributable to estimation quality.

Run:  python examples/optimizer_integration.py
"""

from repro.baselines import FactorJoinMethod, PostgresMethod, TrueCardMethod
from repro.core.estimator import FactorJoinConfig
from repro.optimizer.dp import optimize_with_session
from repro.optimizer.endtoend import EndToEndRunner
from repro.workloads import build_stats_ceb


def main() -> None:
    bench = build_stats_ceb(scale=0.1, seed=5, n_queries=40,
                            n_templates=20, max_tables=6)
    runner = EndToEndRunner(bench.database)

    # the widest query: the most join orders to get right or wrong
    query = max(bench.workload, key=lambda q: q.num_tables())
    print("query:", query.to_sql()[:100], "...\n")

    methods = [
        PostgresMethod(),
        FactorJoinMethod(FactorJoinConfig(n_bins=8,
                                          table_estimator="bayescard")),
        TrueCardMethod(),
    ]
    for method in methods:
        method.fit(bench.database)
        # one prepared session per planning task: the DP probes it
        # lazily, each probe one incremental factor combination
        with method.open_session(query) as session:
            plan, believed_cost = optimize_with_session(query, session)
        actual_cost = runner.true_cost_of_plan(query, plan)
        print(f"=== {method.name} ===")
        print(plan.render(indent=1))
        print(f"  believed cost: {believed_cost:,.0f}   "
              f"actual cost: {actual_cost:,.0f}\n")

    result = runner.run(methods[1], bench.workload)
    base = runner.run(methods[0], bench.workload)
    print(f"workload end-to-end: FactorJoin {result.total_end_to_end:.3f}s "
          f"vs Postgres {base.total_end_to_end:.3f}s "
          f"({result.improvement_over(base) * 100:+.1f}%)")


if __name__ == "__main__":
    main()
