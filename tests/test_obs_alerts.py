"""Alert engine: rule validation, the pending → firing → resolved
state machine under a fake clock, JSONL event export, metric families,
and the stock rule set."""

import json

import pytest

from repro.obs import JsonlEventExporter
from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    NullAlertEngine,
    default_alert_rules,
)


class FakeClock:
    def __init__(self, at=0.0):
        self.at = at

    def __call__(self):
        return self.at

    def advance(self, seconds):
        self.at += seconds


def engine(*rules, exporter=None):
    clock = FakeClock()
    return AlertEngine(rules=rules, clock=clock, exporter=exporter), clock


RULE = AlertRule(name="r", signal="sig", threshold=5.0,
                 for_seconds=60.0, severity="page")


class TestAlertRule:
    def test_comparisons(self):
        assert RULE.breached(5.1) and not RULE.breached(5.0)
        below = AlertRule(name="b", signal="s", threshold=0.9,
                          comparison="<")
        assert below.breached(0.5) and not below.breached(0.9)

    def test_unknown_comparison_rejected(self):
        with pytest.raises(ValueError, match="comparison"):
            AlertRule(name="x", signal="s", threshold=1.0,
                      comparison="!=")

    def test_describe_is_json_ready(self):
        body = RULE.describe()
        assert body["name"] == "r"
        assert body["for_seconds"] == 60.0
        json.dumps(body)


class TestStateMachine:
    def test_breach_must_hold_before_firing(self):
        eng, clock = engine(RULE)
        assert eng.evaluate(lambda s: 10.0) == []  # breach → pending
        assert eng.snapshot()["alerts"][0]["state"] == "pending"
        clock.advance(59.0)
        assert eng.evaluate(lambda s: 10.0) == []  # still held
        clock.advance(1.0)
        events = eng.evaluate(lambda s: 10.0)
        assert [e["event"] for e in events] == ["firing"]
        assert events[0]["rule"] == "r"
        assert events[0]["value"] == 10.0
        snap = eng.snapshot()
        assert snap["firing"] == 1
        assert snap["alerts"][0]["state"] == "firing"
        assert snap["alerts"][0]["firing_count"] == 1

    def test_recovery_mid_hold_resets_the_clock(self):
        eng, clock = engine(RULE)
        eng.evaluate(lambda s: 10.0)
        clock.advance(59.0)
        eng.evaluate(lambda s: 1.0)  # recovered: back to ok
        assert eng.snapshot()["alerts"][0]["state"] == "ok"
        clock.advance(1.0)
        eng.evaluate(lambda s: 10.0)  # a fresh hold starts
        clock.advance(59.0)
        assert eng.evaluate(lambda s: 10.0) == []
        clock.advance(1.0)
        assert [e["event"] for e in eng.evaluate(lambda s: 10.0)] == \
            ["firing"]

    def test_firing_resolves_when_signal_recovers(self):
        eng, clock = engine(RULE)
        eng.evaluate(lambda s: 10.0)
        clock.advance(60.0)
        eng.evaluate(lambda s: 10.0)
        clock.advance(5.0)
        events = eng.evaluate(lambda s: 0.0)
        assert [e["event"] for e in events] == ["resolved"]
        snap = eng.snapshot()["alerts"][0]
        assert snap["state"] == "ok"
        assert snap["firing_count"] == snap["resolved_count"] == 1

    def test_unavailable_or_raising_signal_never_breaches(self):
        eng, clock = engine(RULE)
        eng.evaluate(lambda s: None)
        assert eng.snapshot()["alerts"][0]["state"] == "ok"

        def boom(spec):
            raise RuntimeError("scrape failed")

        eng.evaluate(lambda s: 10.0)
        clock.advance(60.0)
        eng.evaluate(boom)  # exception → not breaching → back to ok
        assert eng.snapshot()["alerts"][0]["state"] == "ok"

    def test_zero_hold_fires_immediately(self):
        instant = AlertRule(name="i", signal="s", threshold=1.0,
                            for_seconds=0.0)
        eng, _ = engine(instant)
        assert [e["event"] for e in eng.evaluate(lambda s: 2.0)] == \
            ["firing"]

    def test_add_rule_replaces_by_name_keeping_state(self):
        eng, clock = engine(RULE)
        eng.evaluate(lambda s: 10.0)
        clock.advance(60.0)
        eng.evaluate(lambda s: 10.0)
        eng.add_rule(AlertRule(name="r", signal="sig", threshold=50.0,
                               for_seconds=60.0))
        assert len(eng.rules()) == 1
        events = eng.evaluate(lambda s: 10.0)  # under the new threshold
        assert [e["event"] for e in events] == ["resolved"]


class TestExportAndFamilies:
    def test_events_land_in_the_jsonl_log(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        exporter = JsonlEventExporter(str(path))
        eng, clock = engine(RULE, exporter=exporter)
        eng.evaluate(lambda s: 10.0)
        clock.advance(60.0)
        eng.evaluate(lambda s: 10.0)
        eng.evaluate(lambda s: 0.0)
        exporter.close()
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [line["event"] for line in lines] == ["firing", "resolved"]
        assert lines[0]["rule"] == "r"
        assert lines[0]["severity"] == "page"

    def test_broken_exporter_never_breaks_evaluation(self):
        class Broken:
            def export(self, event):
                raise OSError("disk full")

        eng, clock = engine(RULE, exporter=Broken())
        eng.evaluate(lambda s: 10.0)
        clock.advance(60.0)
        events = eng.evaluate(lambda s: 10.0)
        assert [e["event"] for e in events] == ["firing"]

    def test_collect_families(self):
        eng, clock = engine(RULE)
        eng.evaluate(lambda s: 10.0)
        clock.advance(60.0)
        eng.evaluate(lambda s: 10.0)
        families = {name: (kind, samples) for kind, name, _h, samples
                    in eng.collect()}
        kind, samples = families["repro_alert_state"]
        assert kind == "gauge"
        assert samples == [({"rule": "r", "severity": "page"}, 2.0)]
        kind, samples = families["repro_alert_transitions_total"]
        assert kind == "counter"
        assert samples == [({"rule": "r", "event": "firing"}, 1.0)]

    def test_empty_engine_collects_nothing(self):
        eng = AlertEngine()
        assert eng.collect() == []
        assert eng.snapshot() == {"alerts": [], "firing": 0}


class TestDefaults:
    def test_stock_rules_cover_the_slos_and_drift(self):
        rules = {rule.name: rule for rule in default_alert_rules()}
        assert set(rules) == {"availability-fast-burn",
                              "latency-fast-burn", "qerror-fast-burn",
                              "drift-critical"}
        for name in ("availability", "latency", "qerror"):
            rule = rules[f"{name}-fast-burn"]
            assert rule.signal == f"slo_burn:{name}:5m"
            assert rule.threshold == 10.0
        assert rules["drift-critical"].signal == "drift:critical"
        assert rules["drift-critical"].severity == "page"

    def test_null_engine_is_inert(self):
        null = NullAlertEngine()
        assert null.evaluate(lambda s: 100.0) == []
        assert null.snapshot()["firing"] == 0
        assert null.collect() == []
