"""End-to-end plan-quality gate: FactorJoin plans vs truecard plans.

The paper's end-to-end claim (Section 6) is that FactorJoin's estimates
produce query plans close to what a perfectly-informed optimizer would
pick.  This bench replays a STATS workload through the plan layer twice:

- **estimator plans**: DPsub join ordering under FactorJoin's injected
  sub-plan cardinalities (:class:`~repro.plan.LocalCardinalityGenerator`
  feeding :func:`~repro.plan.plan_query`);
- **oracle plans**: the same DP under *true* sub-plan cardinalities.

Both plans are then costed under TRUE cardinalities, so the ratio
(P-error) isolates planning damage from estimation error — an estimate
can be off by 10x and still pick the optimal order.

Gates, and why these bounds
---------------------------
Everything here is seeded (workload synthesis, FactorJoin binning), so
the measured numbers are exact across runs — the margins below exist to
absorb intentional estimator changes, not noise.  Measured at the gated
configuration (seed 0): mean 2.24, p90 3.63, agreement 0.72, while the
attribute-independence baseline scores mean 14.4.  The gates assert the
paper's qualitative claims with ~2x headroom:

- **suboptimality**: mean P-error <= 4.5 and p90 <= 7.0 — FactorJoin
  plans stay within a small constant factor of truecard plans;
- **ordering**: FactorJoin's mean P-error beats the independence
  baseline's — the estimator must pay for its complexity in plan
  quality, not just q-error;
- **determinism**: planning the workload twice with the same fitted
  model yields bit-identical plans and hint text — the contract that
  makes ``/v1/plan`` cacheable and A/B comparisons meaningful.

Every gate records its numbers into ``BENCH_plan.json`` (override the
path with ``BENCH_PLAN_JSON``) so CI uploads the measurements as an
artifact and trends them across commits.
"""

import json
import os

import pytest

from repro.baselines import PostgresMethod
from repro.core.estimator import FactorJoin, FactorJoinConfig
from repro.eval.harness import make_context
from repro.plan import LocalCardinalityGenerator, PlanHarness, plan_query
from repro.utils import format_table

#: Mean P-error bound for FactorJoin plans (measured 2.24 at seed 0).
MAX_MEAN_P_ERROR = 4.5

#: Tail bound: 90th-percentile P-error (measured 3.63 at seed 0).
MAX_P90_P_ERROR = 7.0

#: FactorJoin must agree with the truecard oracle on at least this
#: fraction of plans outright (measured 0.72 at seed 0).
MIN_AGREEMENT = 0.55

N_QUERIES = 60
SCALE = 0.1
SEED = 0

#: Gate measurements accumulated across tests, flushed to
#: ``BENCH_plan.json`` (override with ``BENCH_PLAN_JSON``) by the
#: module-scoped reporter fixture below.
RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Write whatever gates ran to the machine-readable report, even on
    partial failure — CI uploads the file as an artifact either way."""
    yield
    path = os.environ.get("BENCH_PLAN_JSON", "BENCH_plan.json")
    payload = {"generated_by": "benchmarks/bench_plan_quality.py",
               **RESULTS}
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.fixture(scope="module")
def plan_ctx():
    return make_context("stats", scale=SCALE, seed=SEED, max_tables=6)


@pytest.fixture(scope="module")
def fitted(plan_ctx):
    return FactorJoin(FactorJoinConfig(n_bins=8, seed=0)).fit(
        plan_ctx.database)


@pytest.fixture(scope="module")
def harness(plan_ctx):
    # shared across gates: per-query truth and oracle plans are cached,
    # so the baseline comparison reuses the FactorJoin run's ground work
    return PlanHarness(plan_ctx.database)


class TestPlanQualityGate:
    def test_factorjoin_plans_near_truecard_plans(self, plan_ctx, fitted,
                                                  harness):
        queries = plan_ctx.workload[:N_QUERIES]
        report = harness.run(LocalCardinalityGenerator(model=fitted),
                             queries, name="factorjoin")
        summary = report.p_error_summary()
        RESULTS["factorjoin"] = report.to_json(worst=5)
        print()
        print(format_table(
            ["metric", "value", "gate"],
            [["mean P-error", f"{summary['mean']:.3f}",
              f"<= {MAX_MEAN_P_ERROR}"],
             ["p90 P-error", f"{summary['p90']:.3f}",
              f"<= {MAX_P90_P_ERROR}"],
             ["max P-error", f"{summary['max']:.3f}", "(reported)"],
             ["plan agreement", f"{report.agreement_rate:.3f}",
              f">= {MIN_AGREEMENT}"]]))
        assert report.num_unsupported == 0
        assert summary["mean"] <= MAX_MEAN_P_ERROR, (
            f"FactorJoin plans average {summary['mean']:.2f}x the "
            f"truecard plan cost (gate: {MAX_MEAN_P_ERROR}x)")
        assert summary["p90"] <= MAX_P90_P_ERROR, (
            f"p90 plan suboptimality {summary['p90']:.2f}x exceeds "
            f"{MAX_P90_P_ERROR}x")
        assert report.agreement_rate >= MIN_AGREEMENT, (
            f"FactorJoin agrees with the oracle on only "
            f"{report.agreement_rate:.0%} of plans")

    def test_factorjoin_beats_independence_baseline(self, plan_ctx,
                                                    fitted, harness):
        """The estimator must buy plan quality, not just q-error: its
        mean P-error must not exceed the attribute-independence
        baseline's (measured 2.24 vs 14.41 at seed 0)."""
        queries = plan_ctx.workload[:N_QUERIES]
        baseline = PostgresMethod().fit(plan_ctx.database)
        fj = harness.run(LocalCardinalityGenerator(model=fitted),
                         queries, name="factorjoin")
        pg = harness.run(LocalCardinalityGenerator(model=baseline),
                         queries, name="independence")
        RESULTS["independence_baseline"] = pg.to_json(worst=3)
        print()
        print(format_table(
            ["estimator", "mean P-error", "agreement"],
            [["factorjoin", f"{fj.p_error_summary()['mean']:.3f}",
              f"{fj.agreement_rate:.3f}"],
             ["independence", f"{pg.p_error_summary()['mean']:.3f}",
              f"{pg.agreement_rate:.3f}"]]))
        assert fj.p_error_summary()["mean"] <= \
            pg.p_error_summary()["mean"], (
                "FactorJoin plans are worse than the independence "
                "baseline's")


class TestPlanDeterminismGate:
    def test_same_estimator_twice_is_bit_identical(self, plan_ctx,
                                                   fitted):
        """Replanning the workload with the same fitted model must
        reproduce every plan and hint text bit-for-bit."""
        queries = plan_ctx.workload[:N_QUERIES]
        mismatches = 0
        for query in queries:
            first = plan_query(query,
                               LocalCardinalityGenerator(model=fitted))
            second = plan_query(query,
                                LocalCardinalityGenerator(model=fitted))
            if (first.plan != second.plan
                    or first.hint_text() != second.hint_text()
                    or first.hint_text("json") != second.hint_text(
                        "json")):
                mismatches += 1
        RESULTS["determinism"] = {"queries": len(queries),
                                  "mismatches": mismatches}
        assert mismatches == 0, (
            f"{mismatches}/{len(queries)} queries replanned "
            f"differently with the identical estimator")
