"""Round-trip tests for CSV persistence (repro.data.loader)."""

import numpy as np
import pytest

from repro.data import Column, Table
from repro.data.loader import (
    load_database,
    load_table,
    save_database,
    save_table,
)
from repro.errors import DataError
from tests.conftest import build_toy_db


class TestTableRoundTrip:
    def test_int_and_null_round_trip(self, tmp_path):
        db = build_toy_db(seed=1, with_nulls=True)
        schema = db.schema.table("B")
        path = tmp_path / "B.csv"
        original = db.table("B")
        save_table(original, str(path))
        loaded = load_table(str(path), schema)
        assert len(loaded) == len(original)
        for name in original.column_names:
            assert np.array_equal(loaded[name].null_mask,
                                  original[name].null_mask)
            valid = ~original[name].null_mask
            assert np.array_equal(loaded[name].values[valid],
                                  original[name].values[valid])

    def test_string_round_trip(self, tmp_path):
        from repro.data import ColumnSchema, DataType, TableSchema
        table = Table("s", [
            Column("name", np.array(["a,b", "with \"quote\"", "plain"],
                                    dtype=object)),
        ])
        schema = TableSchema("s", [ColumnSchema("name", DataType.STRING)])
        path = tmp_path / "s.csv"
        save_table(table, str(path))
        loaded = load_table(str(path), schema)
        assert list(loaded["name"].values) == ["a,b", 'with "quote"',
                                               "plain"]

    def test_header_mismatch_raises(self, tmp_path):
        db = build_toy_db(seed=2)
        path = tmp_path / "A.csv"
        save_table(db.table("A"), str(path))
        with pytest.raises(DataError):
            load_table(str(path), db.schema.table("B"))

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        db = build_toy_db(seed=3)
        with pytest.raises(DataError):
            load_table(str(path), db.schema.table("A"))


class TestDatabaseRoundTrip:
    def test_full_database(self, tmp_path):
        db = build_toy_db(seed=4, with_nulls=True)
        save_database(db, str(tmp_path / "db"))
        loaded = load_database(str(tmp_path / "db"), db.schema)
        assert loaded.total_rows() == db.total_rows()
        # estimates over the loaded database are identical
        from repro.engine import CardinalityExecutor
        from repro.sql import parse_query
        q = parse_query(
            "SELECT COUNT(*) FROM A a, B b WHERE a.id = b.aid AND a.x > 1")
        assert CardinalityExecutor(loaded).cardinality(q) == \
            CardinalityExecutor(db).cardinality(q)

    def test_missing_table_raises(self, tmp_path):
        db = build_toy_db(seed=5)
        save_database(db, str(tmp_path / "db"))
        (tmp_path / "db" / "A.csv").unlink()
        with pytest.raises(DataError):
            load_database(str(tmp_path / "db"), db.schema)
