"""Cross-process trace propagation: worker spans nest under the driver
span of one trace, inline fallbacks trace identically, and a crash plus
ledger-replay retry stays a single trace with a marked retry span."""

import time

import pytest

from repro.api import EstimateRequest
from repro.cluster import ClusterModel
from repro.core.estimator import FactorJoinConfig
from repro.serve import EstimationService
from repro.shard import ShardedFactorJoin
from repro.sql import parse_query

N_SHARDS = 3
N_WORKERS = 2

SQL = ("SELECT COUNT(*) FROM A a, B b "
       "WHERE a.id = b.aid AND a.x > 1")
SQL_FRESH = ("SELECT COUNT(*) FROM A a, B b, C c "
             "WHERE a.id = b.aid AND b.cid = c.id AND c.z = 1")


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    from tests.conftest import build_toy_db

    db = build_toy_db(seed=3)
    config = FactorJoinConfig(n_bins=4, table_estimator="truescan", seed=0)
    path = tmp_path_factory.mktemp("cluster-trace") / "ensemble"
    ShardedFactorJoin(config, n_shards=N_SHARDS,
                      parallel="serial").fit(db).save(path)
    return str(path)


def _traced_estimate(service, sql):
    response = service.serve_estimate(EstimateRequest(
        query=sql, model="cluster", explain=True, trace=True))
    assert response.trace is not None
    return response


def _flatten(span, depth=0, out=None):
    out = [] if out is None else out
    out.append((depth, span))
    for child in span["children"]:
        _flatten(child, depth + 1, out)
    return out


class TestWorkerSpanNesting:
    def test_cluster_query_yields_one_tree_with_worker_spans(self,
                                                             artifact):
        with ClusterModel.from_artifact(artifact,
                                        workers=N_WORKERS) as cluster:
            service = EstimationService()
            service.register("cluster", cluster)
            response = _traced_estimate(service, SQL)
            tree = response.trace
            assert tree["trace_id"] == response.explain.trace_id
            spans = _flatten(tree["root"])
            # one consistent trace id across driver and worker spans
            assert all(span["trace_id"] == tree["trace_id"]
                       for _, span in spans)
            workers = [(depth, span) for depth, span in spans
                       if span["name"].startswith("worker.")]
            assert workers, "no worker-side spans in the trace"
            assert all(span.get("remote") for _, span in workers)
            by_id = {span["span_id"]: span for _, span in spans}
            for _, span in workers:
                parent = by_id[span["parent_id"]]
                assert parent["name"].startswith("rpc.")
            # the driver stages of the tentpole's span tree are present
            names = [span["name"] for _, span in spans]
            for stage in ("parse", "cache.lookup", "model.estimate",
                          "session.prep", "probe.fanout", "bound.fold"):
                assert stage in names, f"missing {stage} in {names}"

    def test_untraced_cluster_requests_ship_no_context(self, artifact):
        with ClusterModel.from_artifact(artifact,
                                        workers=N_WORKERS) as cluster:
            # no active trace: probes answer with no span machinery
            estimate = cluster.estimate(parse_query(SQL))
            assert estimate > 0

    def test_inline_fallback_traces_identically(self, artifact):
        with ClusterModel.from_artifact(artifact, workers=N_WORKERS,
                                        inline=True) as cluster:
            service = EstimationService()
            service.register("cluster", cluster)
            tree = _traced_estimate(service, SQL).trace
            spans = _flatten(tree["root"])
            workers = [span for _, span in spans
                       if span["name"].startswith("worker.")]
            assert workers and all(span.get("remote") for span in workers)
            assert all(span["trace_id"] == tree["trace_id"]
                       for _, span in spans)


class TestCrashRetryTracing:
    def test_crash_and_ledger_retry_stay_one_trace(self, artifact):
        with ClusterModel.from_artifact(artifact,
                                        workers=N_WORKERS) as cluster:
            service = EstimationService()
            service.register("cluster", cluster)
            _traced_estimate(service, SQL)
            for victim in cluster.pool.workers:
                victim.transport.process.kill()
            time.sleep(0.2)
            # a fresh query (not answerable from probe memos) observes
            # the crash and retries from the shard ledgers
            response = _traced_estimate(service, SQL_FRESH)
            tree = response.trace
            spans = _flatten(tree["root"])
            assert all(span["trace_id"] == tree["trace_id"]
                       for _, span in spans)
            retries = [span for _, span in spans
                       if span["name"] in ("probe.retry", "update.retry")]
            assert retries, "crash retry left no marked span"
            for span in retries:
                attrs = span["attributes"]
                assert attrs["retried"] is True
                assert attrs["restarted_worker"] in range(N_WORKERS)
            # the crashed request is still exactly one trace: the ring
            # gained one entry for it, not one per retry
            recent = service.tracer.traces(limit=10)
            assert [t["trace_id"] for t in recent].count(
                tree["trace_id"]) == 1

    def test_retry_answers_match_and_qerror_files_per_shard(self,
                                                            artifact):
        from tests.conftest import build_toy_db

        db = build_toy_db(seed=3)
        config = FactorJoinConfig(n_bins=4, table_estimator="truescan",
                                  seed=0)
        reference = ShardedFactorJoin(config, n_shards=N_SHARDS,
                                      parallel="serial").fit(db)
        with ClusterModel.from_artifact(artifact,
                                        workers=N_WORKERS) as cluster:
            service = EstimationService()
            service.register("cluster", cluster)
            response = _traced_estimate(service, SQL_FRESH)
            assert response.estimate == reference.estimate(
                parse_query(SQL_FRESH))
            feedback = service.record_truth(SQL_FRESH, model="cluster")
            assert feedback.shards  # filed per shard the estimate read
            shard_hist = service.metrics.histogram("repro_shard_qerror")
            for shard in feedback.shards:
                count, *_ = shard_hist.snapshot(
                    {"model": "cluster", "shard": shard})
                assert count == 1
