"""Minimal neural-network library in pure numpy (powers the MSCN baseline).

Implements exactly what a multi-set convolutional network needs: dense
layers, ReLU, mean-pooling over masked sets, the Adam optimizer, and MSE
training on mini-batches.  Gradients are hand-derived per layer.
"""

from __future__ import annotations

import numpy as np

from repro.utils import resolve_rng


class Dense:
    """Fully connected layer with ReLU option; stores grads for Adam."""

    def __init__(self, n_in: int, n_out: int, rng, relu: bool = True):
        limit = np.sqrt(6.0 / (n_in + n_out))
        self.w = rng.uniform(-limit, limit, size=(n_in, n_out))
        self.b = np.zeros(n_out)
        self.relu = relu
        self._adam_state = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        z = x @ self.w + self.b
        if self.relu:
            self._mask = z > 0
            return z * self._mask
        return z

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self.relu:
            grad = grad * self._mask
        self.gw = self._x.reshape(-1, self._x.shape[-1]).T @ grad.reshape(
            -1, grad.shape[-1])
        self.gb = grad.reshape(-1, grad.shape[-1]).sum(axis=0)
        return grad @ self.w.T

    def adam_step(self, lr: float, beta1=0.9, beta2=0.999, eps=1e-8):
        if self._adam_state is None:
            self._adam_state = {
                "t": 0,
                "mw": np.zeros_like(self.w), "vw": np.zeros_like(self.w),
                "mb": np.zeros_like(self.b), "vb": np.zeros_like(self.b),
            }
        s = self._adam_state
        s["t"] += 1
        for param, grad, m_key, v_key in ((self.w, self.gw, "mw", "vw"),
                                          (self.b, self.gb, "mb", "vb")):
            s[m_key] = beta1 * s[m_key] + (1 - beta1) * grad
            s[v_key] = beta2 * s[v_key] + (1 - beta2) * grad ** 2
            m_hat = s[m_key] / (1 - beta1 ** s["t"])
            v_hat = s[v_key] / (1 - beta2 ** s["t"])
            param -= lr * m_hat / (np.sqrt(v_hat) + eps)


class SetEncoder:
    """Two-layer MLP applied per set element, then masked mean pooling.

    Input shape (batch, max_set, n_features) with boolean mask
    (batch, max_set); output (batch, hidden).
    """

    def __init__(self, n_features: int, hidden: int, rng):
        self.l1 = Dense(n_features, hidden, rng)
        self.l2 = Dense(hidden, hidden, rng)

    def forward(self, x: np.ndarray, mask: np.ndarray) -> np.ndarray:
        self._mask = mask
        h = self.l2.forward(self.l1.forward(x))
        m = mask[..., None].astype(float)
        denom = np.maximum(m.sum(axis=1), 1.0)
        self._denom = denom
        return (h * m).sum(axis=1) / denom

    def backward(self, grad: np.ndarray) -> None:
        m = self._mask[..., None].astype(float)
        g = grad[:, None, :] * m / self._denom[:, None, :]
        self.l1.backward(self.l2.backward(g))

    def layers(self):
        return [self.l1, self.l2]


class MSCNNetwork:
    """Three set encoders (tables, joins, predicates) + output MLP."""

    def __init__(self, n_table_feats: int, n_join_feats: int,
                 n_pred_feats: int, hidden: int = 64, seed: int = 0):
        rng = resolve_rng(seed)
        self.tables = SetEncoder(n_table_feats, hidden, rng)
        self.joins = SetEncoder(n_join_feats, hidden, rng)
        self.preds = SetEncoder(n_pred_feats, hidden, rng)
        self.out1 = Dense(hidden * 3, hidden, rng)
        self.out2 = Dense(hidden, 1, rng, relu=False)

    def forward(self, batch: dict) -> np.ndarray:
        t = self.tables.forward(batch["tables"], batch["tables_mask"])
        j = self.joins.forward(batch["joins"], batch["joins_mask"])
        p = self.preds.forward(batch["preds"], batch["preds_mask"])
        self._concat = np.concatenate([t, j, p], axis=1)
        h = self.out1.forward(self._concat)
        return self.out2.forward(h)[:, 0]

    def backward(self, grad_out: np.ndarray) -> None:
        grad = self.out1.backward(self.out2.backward(grad_out[:, None]))
        hidden = grad.shape[1] // 3
        self.tables.backward(grad[:, :hidden])
        self.joins.backward(grad[:, hidden:2 * hidden])
        self.preds.backward(grad[:, 2 * hidden:])

    def layers(self):
        return (self.tables.layers() + self.joins.layers()
                + self.preds.layers() + [self.out1, self.out2])

    def train_epoch(self, batches: list[dict], targets: list[np.ndarray],
                    lr: float = 1e-3) -> float:
        """One pass of Adam/MSE over pre-built batches; returns mean loss."""
        total, count = 0.0, 0
        for batch, y in zip(batches, targets):
            pred = self.forward(batch)
            err = pred - y
            loss = float((err ** 2).mean())
            self.backward(2 * err / len(err))
            for layer in self.layers():
                layer.adam_step(lr)
            total += loss * len(err)
            count += len(err)
        return total / max(count, 1)

    def predict(self, batch: dict) -> np.ndarray:
        return self.forward(batch)
