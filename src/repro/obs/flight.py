"""Flight recorder: bounded worst-offender debug bundles.

Histograms say the p99 q-error is bad; the flight recorder keeps the
actual requests that made it bad.  A :class:`FlightRecorder` maintains
one bounded ring per offense *kind* (``qerror`` and ``latency`` in the
serving layer), each a min-heap keyed by score, so only the worst
``capacity`` bundles per kind survive and memory stays O(capacity).

Bundles are whatever dict the host assembles — the service captures the
request SQL, model/version, estimate vs truth, per-shard attribution,
the span tree, and cache counters.  Because assembling that is not
free, callers should gate on :meth:`FlightRecorder.admits` first and
only build the bundle for a keeper.

Served via ``GET /v1/debug/bundles`` and the ``repro debug-bundle``
CLI.
"""

from __future__ import annotations

import heapq
import itertools
import threading

#: Worst offenders kept per kind.
DEFAULT_CAPACITY = 16


class FlightRecorder:
    """Bounded per-kind rings of the worst-scoring debug bundles."""

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._heaps: dict[str, list] = {}
        self._seen: dict[str, int] = {}
        self._seq = itertools.count()

    def admits(self, kind: str, score: float) -> bool:
        """Whether a bundle scoring ``score`` would be kept right now —
        the cheap pre-check before assembling an expensive bundle."""
        with self._lock:
            heap = self._heaps.get(kind)
            if heap is None or len(heap) < self.capacity:
                return True
            return float(score) > heap[0][0]

    def record(self, kind: str, score: float, bundle: dict) -> bool:
        """Offer one bundle; returns whether it displaced into the
        ring (the lowest-scoring entry falls out at capacity)."""
        score = float(score)
        entry = (score, next(self._seq), dict(bundle))
        with self._lock:
            heap = self._heaps.setdefault(kind, [])
            self._seen[kind] = self._seen.get(kind, 0) + 1
            if len(heap) < self.capacity:
                heapq.heappush(heap, entry)
                return True
            if score <= heap[0][0]:
                return False
            heapq.heapreplace(heap, entry)
            return True

    def bundles(self, kind: str | None = None,
                limit: int | None = None) -> list[dict]:
        """Kept bundles, worst first; ``kind=None`` spans all kinds."""
        with self._lock:
            kinds = ([kind] if kind is not None
                     else sorted(self._heaps))
            entries = []
            for k in kinds:
                entries.extend((score, seq, k, bundle)
                               for score, seq, bundle
                               in self._heaps.get(k, ()))
        entries.sort(key=lambda e: (-e[0], e[1]))
        if limit is not None:
            entries = entries[:limit]
        return [{"kind": k, "score": score, "bundle": dict(bundle)}
                for score, _seq, k, bundle in entries]

    def describe(self) -> dict:
        """Per-kind kept/offered counts and the admission floor."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "kinds": {
                    k: {
                        "kept": len(heap),
                        "offered": self._seen.get(k, 0),
                        "floor": (heap[0][0]
                                  if len(heap) >= self.capacity
                                  else None),
                    }
                    for k, heap in sorted(self._heaps.items())
                },
            }


class NullFlightRecorder:
    """No-op twin of :class:`FlightRecorder` (telemetry disabled)."""

    enabled = False
    capacity = 0

    def admits(self, kind: str, score: float) -> bool:
        return False

    def record(self, kind: str, score: float, bundle: dict) -> bool:
        return False

    def bundles(self, kind=None, limit=None) -> list:
        return []

    def describe(self) -> dict:
        return {"capacity": 0, "kinds": {}}


NULL_FLIGHT = NullFlightRecorder()
