"""Shared experiment harness driving the paper's tables and figures.

One :class:`ExperimentContext` per benchmark caches the database, the
workload, true sub-plan cardinalities, and the end-to-end runner, so every
bench file (benchmarks/bench_*.py) stays a thin declaration of which methods
to compare and which numbers to print.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import (
    CardEstMethod,
    FactorJoinMethod,
    FanoutDataDrivenMethod,
    JoinHistMethod,
    MSCNMethod,
    PessEstMethod,
    PostgresMethod,
    TrueCardMethod,
    UBlockMethod,
    WJSampleMethod,
)
from repro.core.estimator import FactorJoinConfig
from repro.optimizer.endtoend import EndToEndResult, EndToEndRunner
from repro.utils import format_table
from repro.workloads import Benchmark, build_imdb_job, build_stats_ceb


@dataclass
class ExperimentContext:
    benchmark: Benchmark
    runner: EndToEndRunner
    results: dict[str, EndToEndResult] = field(default_factory=dict)
    methods: dict[str, CardEstMethod] = field(default_factory=dict)

    @property
    def workload(self):
        return self.benchmark.workload

    @property
    def database(self):
        return self.benchmark.database

    def run_method(self, method: CardEstMethod,
                   refresh: bool = False) -> EndToEndResult:
        if method.name in self.results and not refresh:
            return self.results[method.name]
        result = self.runner.run(method, self.workload)
        self.results[method.name] = result
        self.methods[method.name] = method
        return result

    def run_optimal(self) -> EndToEndResult:
        if "TrueCard" not in self.results:
            self.results["TrueCard"] = self.runner.run_optimal(self.workload)
        return self.results["TrueCard"]


_CONTEXT_CACHE: dict[tuple, ExperimentContext] = {}


def make_context(benchmark_name: str = "stats", scale: float = 0.15,
                 seed: int = 0, n_queries: int | None = None,
                 max_tables: int | None = None) -> ExperimentContext:
    """Build (and memoize) an experiment context for one benchmark."""
    key = (benchmark_name, scale, seed, n_queries, max_tables)
    if key in _CONTEXT_CACHE:
        return _CONTEXT_CACHE[key]
    kwargs = {}
    if n_queries is not None:
        kwargs["n_queries"] = n_queries
    if max_tables is not None:
        kwargs["max_tables"] = max_tables
    if benchmark_name == "stats":
        benchmark = build_stats_ceb(scale=scale, seed=seed, **kwargs)
    elif benchmark_name == "imdb":
        benchmark = build_imdb_job(scale=scale, seed=seed, **kwargs)
    else:
        raise ValueError(f"unknown benchmark {benchmark_name!r}")
    runner = EndToEndRunner(benchmark.database)
    context = ExperimentContext(benchmark, runner)
    _CONTEXT_CACHE[key] = context
    return context


# The paper uses k=100 bins over join-key domains of 1e5..1e7 values
# (roughly 1e3+ values per bin); the laptop-scale instances have domains of
# ~1e3 values, so the equivalent regime is k ~ 8.  Figure 9 sweeps k.
DEFAULT_BINS = 8


def default_methods(benchmark_name: str, seed: int = 0,
                    fast: bool = True,
                    n_bins: int = DEFAULT_BINS) -> list[CardEstMethod]:
    """The method line-up of Table 3 (STATS) / Table 4 (IMDB).

    On IMDB, FactorJoin uses the sampling single-table estimator (LIKE
    predicates, Section 6.1) and JoinHist + the data-driven method drop out
    (cyclic joins / LIKE), matching the paper's support matrix.
    """
    walks = 100 if fast else 400
    mscn_budget = 2000 if fast else 8000
    if benchmark_name == "stats":
        factorjoin = FactorJoinMethod(FactorJoinConfig(
            n_bins=n_bins, table_estimator="bayescard", seed=seed))
        return [
            PostgresMethod(),
            JoinHistMethod(n_bins=n_bins, seed=seed),
            WJSampleMethod(walks_per_query=walks, seed=seed),
            MSCNMethod(epochs=30, max_training_queries=mscn_budget,
                       seed=seed),
            FanoutDataDrivenMethod(),
            PessEstMethod(n_partitions=n_bins),
            UBlockMethod(),
            factorjoin,
        ]
    # the paper samples 1% of IMDB's ~5e7 rows; at laptop scale the
    # equivalent statistical power needs a much higher rate
    factorjoin = FactorJoinMethod(FactorJoinConfig(
        n_bins=n_bins, table_estimator="sampling", sample_rate=0.3,
        seed=seed))
    return [
        PostgresMethod(),
        WJSampleMethod(walks_per_query=walks, seed=seed),
        MSCNMethod(epochs=30, max_training_queries=mscn_budget, seed=seed),
        PessEstMethod(n_partitions=n_bins),
        UBlockMethod(),
        factorjoin,
    ]


def run_end_to_end(context: ExperimentContext,
                   methods: list[CardEstMethod],
                   train_fraction: float = 0.5) -> dict[str, EndToEndResult]:
    """Fit each method (query-driven ones get half the workload as training
    queries, mirroring the paper's train/test distinction) and run the full
    end-to-end evaluation."""
    n_train = max(1, int(len(context.workload) * train_fraction))
    training = context.workload[:n_train]
    out: dict[str, EndToEndResult] = {}
    out["TrueCard"] = context.run_optimal()
    for method in methods:
        method.fit(context.database, training)
        out[method.name] = context.run_method(method)
    return out


def end_to_end_table(results: dict[str, EndToEndResult],
                     baseline: str = "Postgres",
                     title: str = "") -> str:
    """Render a Table 3 / Table 4 style comparison."""
    base = results[baseline]
    rows = []
    for name, result in results.items():
        supported = [r for r in result.per_query if r.supported]
        note = ("" if len(supported) == len(result.per_query)
                else f" ({len(result.per_query) - len(supported)} unsupported)")
        rows.append([
            name + note,
            f"{result.total_end_to_end:.3f}s",
            f"{result.total_execution:.3f}s + {result.total_planning:.3f}s",
            f"{result.improvement_over(base) * 100:+.1f}%",
        ])
    return format_table(
        ["Method", "End-to-end", "Exec + plan", "Improvement"], rows,
        title=title)
