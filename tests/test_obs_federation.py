"""Federated worker metrics: lossless-merge properties and the
end-to-end TCP acceptance path (driver /metrics fronting real workers).
"""

import json
import urllib.parse
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import parse_prometheus_text
from repro.obs.federate import (
    MetricsFederator,
    empty_snapshot,
    merge_snapshot,
    snapshot_families,
    snapshot_registry,
)
from repro.obs.metrics import (
    MetricsRegistry,
    _label_key,
    percentile_from_counts,
)
from repro.serve import EstimationService, serve_in_background
from tests.test_cluster_model import QUERIES, _fit_sharded
from tests.test_cluster_tcp import tcp_cluster

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnraisableExceptionWarning")

HIST = "h_seconds"
CTR = "c_total"
KEY = _label_key({"op": "x"})

observations = st.lists(
    st.floats(min_value=1e-6, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=0, max_size=20)


def _worker_registry(values):
    registry = MetricsRegistry()
    hist = registry.histogram(HIST, "test histogram", buckets=(0.1, 1.0))
    ctr = registry.counter(CTR, "test counter")
    for value in values:
        hist.observe(value, op="x")
        ctr.inc(op="x")
    return registry


def _merge_in_order(snapshots, order):
    acc = empty_snapshot()
    for index in order:
        merge_snapshot(acc, snapshots[index])
    return acc


class TestMergeProperties:
    @settings(deadline=None, max_examples=50)
    @given(data=st.data())
    def test_any_merge_order_equals_single_registry(self, data):
        """Merging N worker snapshots in any order reproduces the
        single-registry observation exactly: same quantized count maps,
        hence bit-identical nearest-rank quantiles."""
        per_worker = data.draw(
            st.lists(observations, min_size=1, max_size=5))
        snapshots = [snapshot_registry(_worker_registry(values))
                     for values in per_worker]
        combined = _worker_registry(
            [v for values in per_worker for v in values])
        expected = snapshot_registry(combined)

        order = data.draw(st.permutations(range(len(snapshots))))
        merged = _merge_in_order(snapshots, order)

        assert (merged["counters"][CTR]["samples"]
                == expected["counters"][CTR]["samples"])
        merged_children = merged["histograms"][HIST]["children"]
        expected_children = expected["histograms"][HIST]["children"]
        assert merged_children.keys() == expected_children.keys()
        for key, (count, total, low, high, counts) in (
                expected_children.items()):
            m_count, m_total, m_low, m_high, m_counts = merged_children[key]
            assert m_counts == counts          # exact quantized map
            assert m_count == count
            assert (m_low, m_high) == (low, high)
            assert m_total == pytest.approx(total, rel=1e-9)
            for q in (0.5, 0.95, 0.99):
                assert (percentile_from_counts(m_counts, q)
                        == percentile_from_counts(counts, q))

    @settings(deadline=None, max_examples=30)
    @given(data=st.data())
    def test_merge_is_order_independent(self, data):
        per_worker = data.draw(
            st.lists(observations, min_size=2, max_size=4))
        snapshots = [snapshot_registry(_worker_registry(values))
                     for values in per_worker]
        order_a = data.draw(st.permutations(range(len(snapshots))))
        order_b = data.draw(st.permutations(range(len(snapshots))))
        a = _merge_in_order(snapshots, order_a)
        b = _merge_in_order(snapshots, order_b)
        assert (a["counters"][CTR]["samples"].keys()
                == b["counters"][CTR]["samples"].keys())
        for key, value in a["counters"][CTR]["samples"].items():
            assert b["counters"][CTR]["samples"][key] == (
                pytest.approx(value, rel=1e-9))
        a_children = a["histograms"][HIST]["children"]
        b_children = b["histograms"][HIST]["children"]
        assert a_children.keys() == b_children.keys()
        for key in a_children:
            assert a_children[key][4] == b_children[key][4]
            assert a_children[key][0] == b_children[key][0]

    @settings(deadline=None, max_examples=30)
    @given(rounds=st.lists(observations, min_size=1, max_size=4))
    def test_restart_folding_keeps_counters_monotone(self, rounds):
        """Each generation starts a fresh registry (counts from zero);
        the federator's view must never go backwards and must end at the
        sum over all incarnations."""
        federator = MetricsFederator()
        seen = 0.0
        total_events = 0
        for generation, values in enumerate(rounds, start=1):
            snapshot = snapshot_registry(_worker_registry(values))
            federator.absorb(0, generation, snapshot, {"worker": "0"})
            view = federator.worker_view(0)
            now = view["counters"][CTR]["samples"].get(KEY, 0.0)
            assert now >= seen
            seen = now
            total_events += len(values)
        assert seen == float(total_events)
        view = federator.worker_view(0)
        child = view["histograms"][HIST]["children"].get(
            KEY, (0, 0.0, 0.0, 0.0, {}))
        assert child[0] == total_events
        assert sum(child[4].values()) == total_events


class TestFederatorLedger:
    def test_unreachable_worker_keeps_last_known_state(self):
        federator = MetricsFederator()
        snapshot = snapshot_registry(_worker_registry([0.2, 0.4]))
        federator.absorb(1, 1, snapshot, {"worker": "1"})
        federator.mark_unreachable(1)
        families = dict(
            (name, samples)
            for _kind, name, _help, samples in federator.families())
        fresh = families["repro_worker_metrics_fresh"]
        assert fresh == [({"worker": "1"}, 0.0)]
        assert CTR in families and families[CTR]
        federator.forget(1)
        assert federator.worker_view(1) is None
        assert not federator.families()

    def test_families_stamp_extra_labels_on_every_sample(self):
        snapshot = snapshot_registry(_worker_registry([0.3]))
        families = snapshot_families(snapshot, {"worker": "7",
                                                "shard_group": "0+1"})
        for _kind, _name, _help, samples in families:
            for labels, *_rest in samples:
                assert labels["worker"] == "7"
                assert labels["shard_group"] == "0+1"


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    from tests.conftest import build_toy_db

    db = build_toy_db(seed=3)
    path = tmp_path_factory.mktemp("obs-fed") / "ensemble"
    _fit_sharded(db).save(path)
    return str(path)


def _get(server, path):
    host, port = server.server_address[:2]
    with urllib.request.urlopen(f"http://{host}:{port}{path}",
                                timeout=30) as resp:
        return resp.read().decode()


def _post(server, path, payload):
    host, port = server.server_address[:2]
    req = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.loads(resp.read())


class TestFederatedScrapeAcceptance:
    def test_driver_scrape_is_bit_identical_to_worker_registries(
            self, artifact, tmp_path):
        """The acceptance path: a /metrics scrape from a driver fronting
        two TCP workers carries worker-labeled histograms whose merged
        quantiles equal the workers' own registries bit for bit, and a
        /v1/profile against a remote worker yields collapsed stacks."""
        with tcp_cluster(artifact, tmp_path / "store") as (model, _, servers):
            service = EstimationService()
            service.register("cluster", model)
            httpd, _ = serve_in_background(service, port=0)
            try:
                for sql in QUERIES:
                    body = _post(httpd, "/v1/estimate",
                                 {"sql": sql, "model": "cluster"})
                    assert body["estimate"] >= 0

                text = _get(httpd, "/metrics")
                families = parse_prometheus_text(text)

                handler = families["repro_worker_handler_seconds"]
                assert handler["type"] == "histogram"
                workers_seen = {labels["worker"]
                                for _name, labels, _v in handler["samples"]}
                assert workers_seen == {"0", "1"}
                for _name, labels, _value in handler["samples"]:
                    assert labels["shard_group"]
                    assert labels["model"] == "cluster"
                assert "repro_worker_metrics_fresh" in families

                for worker_id, server in enumerate(servers):
                    view = model._federator.worker_view(worker_id)
                    assert view is not None
                    own = snapshot_registry(server.worker.metrics)
                    fed_children = view["histograms"][
                        "repro_worker_handler_seconds"]["children"]
                    own_children = own["histograms"][
                        "repro_worker_handler_seconds"]["children"]
                    assert fed_children.keys() == own_children.keys()
                    for key, own_child in own_children.items():
                        fed_child = fed_children[key]
                        assert fed_child[4] == own_child[4]
                        for q in (0.5, 0.95, 0.99):
                            assert (percentile_from_counts(fed_child[4], q)
                                    == percentile_from_counts(
                                        own_child[4], q))

                collapsed = _get(
                    httpd, "/v1/profile?" + urllib.parse.urlencode(
                        {"seconds": 0.2, "hz": 50, "worker": 0,
                         "model": "cluster", "format": "collapsed"}))
                lines = [l for l in collapsed.splitlines() if l.strip()]
                assert lines
                for line in lines:
                    stack, count = line.rsplit(" ", 1)
                    assert stack and int(count) >= 1

                stats = json.loads(_get(httpd, "/v1/stats"))
                rows = stats["workers"]["cluster"]["workers"]
                assert len(rows) == 2
                for row in rows:
                    assert "generation" in row
                    assert "transport_stats" in row

                slo = json.loads(_get(httpd, "/v1/slo"))
                availability = next(s for s in slo["slos"]
                                    if s["name"] == "availability")
                assert availability["good_total"] >= len(QUERIES)
            finally:
                httpd.shutdown()
                httpd.server_close()
