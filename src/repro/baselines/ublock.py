"""U-Block: top-k statistics cardinality bound (paper [22], baseline 9).

Per join key the offline phase keeps the ``k`` heaviest value counts and a
uniform tail summary.  A join's bound combines matched top values exactly and
bounds the tails by the heaviest remaining multiplicity; filters scale the
bound by independence selectivities (U-Block has no conditional statistics —
that is exactly the weakness the paper's comparison exposes).
"""

from __future__ import annotations

from repro.baselines.base import CardEstMethod, MethodCharacteristics
from repro.data.database import Database
from repro.estimators.histogram1d import Histogram1DEstimator
from repro.sql.query import Query
from repro.stats.topk import TopKStatistics


class UBlockMethod(CardEstMethod):
    name = "U-Block"
    characteristics = MethodCharacteristics(
        uses_bound=True, efficient=True, small_model_size=True,
        fast_training=True, scalable_with_joins=True,
        generalizes_to_new_queries=True, supports_cyclic_join=True)

    def __init__(self, top_k: int = 64):
        super().__init__()
        self._k = top_k

    def _fit(self, database: Database, workload=None) -> None:
        self._db = database
        self._topk: dict[tuple[str, str], TopKStatistics] = {}
        self._filters: dict[str, Histogram1DEstimator] = {}
        for name in database.table_names:
            table = database.table(name)
            tschema = database.schema.table(name)
            est = Histogram1DEstimator()
            est.fit(table, tschema, {})
            self._filters[name] = est
            for key in tschema.key_columns:
                col = table[key]
                self._topk[(name, key)] = TopKStatistics(
                    col.non_null_values().astype("int64"), self._k)

    def estimate(self, query: Query) -> float:
        """Fold the join graph: each new edge multiplies the running bound
        by the edge's top-k join bound normalized by the side already
        counted; filters scale by independence selectivity."""
        aliases = list(query.aliases)
        if not aliases:
            return 0.0
        selectivities = {}
        rows = {}
        for alias in aliases:
            table = query.table_of(alias)
            rows[alias] = float(len(self._db.table(table)))
            selectivities[alias] = self._filters[table].selectivity(
                query.filter_of(alias))
        if len(aliases) == 1:
            return rows[aliases[0]] * selectivities[aliases[0]]

        joined = {aliases[0]}
        bound = rows[aliases[0]]
        pending = list(query.joins)
        while pending:
            usable = [j for j in pending if j.aliases() & joined]
            if not usable:  # disconnected: cartesian step
                alias = next(a for a in aliases if a not in joined)
                bound *= rows[alias]
                joined.add(alias)
                continue
            join = usable[0]
            pending.remove(join)
            new_aliases = join.aliases() - joined
            stats_l = self._topk[(query.table_of(join.left.alias),
                                  join.left.column)]
            stats_r = self._topk[(query.table_of(join.right.alias),
                                  join.right.column)]
            edge_bound = stats_l.join_upper_bound(stats_r)
            if not new_aliases:
                # closing a cycle: joining on one more condition can only
                # shrink; keep the current bound (no tightening statistics)
                continue
            new_alias = next(iter(new_aliases))
            if new_alias == join.left.alias:
                existing_total = max(stats_r.total, 1.0)
            else:
                existing_total = max(stats_l.total, 1.0)
            bound *= edge_bound / existing_total
            joined.add(new_alias)
        for alias in aliases:
            bound *= selectivities[alias]
        return max(bound, 0.0)
