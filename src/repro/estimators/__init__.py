"""Pluggable single-table estimators (paper Section 3.3).

FactorJoin requires only that a single-table model can provide conditional
distributions of join keys given filter predicates; any of these estimators
can be plugged in, trading accuracy against predicate coverage and speed.
"""

from repro.estimators.base import (
    ESTIMATOR_REGISTRY,
    BaseTableEstimator,
    make_table_estimator,
)
from repro.estimators.bayescard import BayesCardEstimator
from repro.estimators.histogram1d import Histogram1DEstimator
from repro.estimators.sampling import SamplingEstimator
from repro.estimators.truescan import TrueScanEstimator

__all__ = [
    "BaseTableEstimator",
    "BayesCardEstimator",
    "ESTIMATOR_REGISTRY",
    "Histogram1DEstimator",
    "make_table_estimator",
    "SamplingEstimator",
    "TrueScanEstimator",
]
