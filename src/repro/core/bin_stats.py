"""Per-bin statistics of join keys (paper Section 4.1 and Figure 5).

For every join key and every bin the offline phase records:

- ``totals``: how many rows fall in the bin,
- ``mfv``: the most-frequent-value count ``V*`` (the quantity the
  probabilistic bound divides by),
- ``ndv``: distinct values in the bin (used by the JoinHist per-bin
  distinct-value formula, the paper's "with Conditional" ablation).

Exact per-value counts are retained so incremental updates (Section 4.3)
keep the MFV exact: inserting rows only touches the affected values' counts
and their bins' summaries, never the binning itself.
"""

from __future__ import annotations

import numpy as np

from repro.core.binning import Binning
from repro.errors import ReproError


class BinStats:
    """Summaries of one join key column under a fixed group binning."""

    def __init__(self, binning: Binning, values: np.ndarray):
        self._binning = binning
        values = np.asarray(values, dtype=np.int64)
        self._values, self._counts = np.unique(values, return_counts=True)
        self._counts = self._counts.astype(np.float64)
        self._rebuild()

    def _rebuild(self) -> None:
        k = self._binning.n_bins
        bins = self._binning.assign(self._values)
        self.totals = np.zeros(k, dtype=np.float64)
        self.mfv = np.zeros(k, dtype=np.float64)
        self.ndv = np.zeros(k, dtype=np.float64)
        np.add.at(self.totals, bins, self._counts)
        np.add.at(self.ndv, bins, 1.0)
        np.maximum.at(self.mfv, bins, self._counts)

    @classmethod
    def from_value_counts(cls, binning: Binning, values: np.ndarray,
                          counts: np.ndarray) -> "BinStats":
        """Build directly from exact per-value counts (merge fast path)."""
        out = cls.__new__(cls)
        out._binning = binning
        out._values = np.asarray(values, dtype=np.int64)
        out._counts = np.asarray(counts, dtype=np.float64)
        out._rebuild()
        return out

    @classmethod
    def merged(cls, parts: list["BinStats"]) -> "BinStats":
        """Exact union of per-partition statistics.

        All parts must share one :class:`Binning`.  Because every part
        retains exact per-value counts, the merge is *lossless*: the
        result's totals, MFV, and NDV are bit-identical to fitting one
        ``BinStats`` on the concatenated data — the property that lets a
        sharded ensemble reproduce the unsharded model's join bounds.
        """
        if not parts:
            raise ReproError("cannot merge zero BinStats parts")
        binning = parts[0]._binning
        for part in parts[1:]:
            if part._binning is not binning and (
                    part._binning.n_bins != binning.n_bins
                    or not np.array_equal(part._binning.domain,
                                          binning.domain)
                    or not np.array_equal(part._binning.bin_ids,
                                          binning.bin_ids)):
                raise ReproError(
                    "BinStats.merged requires all parts to share one "
                    "binning; fit shards with a shared global binning")
        merged_vals = parts[0]._values
        for part in parts[1:]:
            merged_vals = np.union1d(merged_vals, part._values)
        merged_counts = np.zeros(len(merged_vals), dtype=np.float64)
        for part in parts:
            merged_counts[np.searchsorted(merged_vals,
                                          part._values)] += part._counts
        return cls.from_value_counts(binning, merged_vals, merged_counts)

    @classmethod
    def replaced(cls, base: "BinStats", old: "BinStats",
                 new: "BinStats") -> "BinStats":
        """``base - old + new``: exact merged statistics after one
        partition's contribution is swapped out.

        ``base`` is a merged statistic that *contains* ``old`` as one of
        its parts (the invariant per-shard hot-swap maintains); counts are
        exact integers in float64, so the subtraction reproduces bit for
        bit what merging the surviving parts with ``new`` would produce.
        """
        for part in (old, new):
            if part._binning is not base._binning and (
                    part._binning.n_bins != base._binning.n_bins
                    or not np.array_equal(part._binning.domain,
                                          base._binning.domain)
                    or not np.array_equal(part._binning.bin_ids,
                                          base._binning.bin_ids)):
                raise ReproError(
                    "BinStats.replaced requires all parts to share one "
                    "binning; refit the replacement shard under the "
                    "ensemble's global binning")
        vals = np.union1d(base._values, np.union1d(old._values, new._values))
        counts = np.zeros(len(vals), dtype=np.float64)
        counts[np.searchsorted(vals, base._values)] += base._counts
        counts[np.searchsorted(vals, old._values)] -= old._counts
        counts[np.searchsorted(vals, new._values)] += new._counts
        keep = counts > 0
        return cls.from_value_counts(base._binning, vals[keep], counts[keep])

    def copy(self) -> "BinStats":
        """Independent copy (copy-on-write updates in ensembles)."""
        return BinStats.from_value_counts(self._binning, self._values.copy(),
                                          self._counts.copy())

    def value_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """The exact per-value counts ``(values, counts)`` (read-only
        views; the full information content of this statistic)."""
        return self._values, self._counts

    # -- accessors -------------------------------------------------------------

    @property
    def n_bins(self) -> int:
        return self._binning.n_bins

    @property
    def binning(self) -> Binning:
        return self._binning

    @property
    def total_rows(self) -> float:
        return float(self.totals.sum())

    def distribution(self) -> np.ndarray:
        """Unconditional per-bin row counts (copy)."""
        return self.totals.copy()

    # -- incremental maintenance (Section 4.3) ------------------------------------

    def insert(self, values: np.ndarray) -> None:
        """Add rows; bins stay fixed, per-value counts updated exactly."""
        values = np.asarray(values, dtype=np.int64)
        if len(values) == 0:
            return
        new_vals, new_cnts = np.unique(values, return_counts=True)
        self._merge(new_vals, new_cnts.astype(np.float64))

    def delete(self, values: np.ndarray) -> None:
        """Remove rows (counts floor at zero)."""
        values = np.asarray(values, dtype=np.int64)
        if len(values) == 0:
            return
        del_vals, del_cnts = np.unique(values, return_counts=True)
        self._merge(del_vals, -del_cnts.astype(np.float64))

    def _merge(self, vals: np.ndarray, deltas: np.ndarray) -> None:
        merged_vals = np.union1d(self._values, vals)
        merged_counts = np.zeros(len(merged_vals), dtype=np.float64)
        merged_counts[np.searchsorted(merged_vals, self._values)] = self._counts
        merged_counts[np.searchsorted(merged_vals, vals)] += deltas
        keep = merged_counts > 0
        self._values = merged_vals[keep]
        self._counts = merged_counts[keep]
        self._rebuild()


class KeyStatistics:
    """All bin statistics for one equivalent key group.

    Holds the shared :class:`Binning` plus one :class:`BinStats` per member
    key ``(table, column)``.
    """

    def __init__(self, group_name: str, binning: Binning):
        self.group_name = group_name
        self.binning = binning
        self._per_key: dict[tuple[str, str], BinStats] = {}

    def add_key(self, table: str, column: str, values: np.ndarray) -> None:
        self._per_key[(table, column)] = BinStats(self.binning, values)

    @classmethod
    def merged(cls, parts: list["KeyStatistics"]) -> "KeyStatistics":
        """Exact union of per-partition group statistics (see
        :meth:`BinStats.merged`).  Keys present in only some parts are
        merged from the parts that have them."""
        if not parts:
            raise ReproError("cannot merge zero KeyStatistics parts")
        out = cls(parts[0].group_name, parts[0].binning)
        keys: list[tuple[str, str]] = []
        for part in parts:
            for key in part.keys:
                if key not in keys:
                    keys.append(key)
        for table, column in keys:
            per_part = [part.stats_of(table, column) for part in parts
                        if part.has_key(table, column)]
            out._per_key[(table, column)] = BinStats.merged(per_part)
        return out

    @classmethod
    def replaced(cls, base: "KeyStatistics", old: "KeyStatistics",
                 new: "KeyStatistics") -> "KeyStatistics":
        """``base - old + new`` per member key (see
        :meth:`BinStats.replaced`): the merged group statistics after one
        partition's contribution is hot-swapped.  Keys absent from a part
        contribute nothing for that part."""
        out = cls(base.group_name, base.binning)
        empty = None
        for table, column in base.keys:
            old_part = (old.stats_of(table, column)
                        if old.has_key(table, column) else None)
            new_part = (new.stats_of(table, column)
                        if new.has_key(table, column) else None)
            if old_part is None and new_part is None:
                out._per_key[(table, column)] = base.stats_of(table, column)
                continue
            if old_part is None or new_part is None:
                if empty is None:
                    empty = BinStats(base.binning,
                                     np.zeros(0, dtype=np.int64))
                old_part = old_part if old_part is not None else empty
                new_part = new_part if new_part is not None else empty
            out._per_key[(table, column)] = BinStats.replaced(
                base.stats_of(table, column), old_part, new_part)
        return out

    def shallow_copy(self) -> "KeyStatistics":
        """Copy sharing the per-key :class:`BinStats` objects; replace
        individual entries (via :meth:`BinStats.copy`) before mutating —
        the copy-on-write discipline atomic ensemble updates rely on."""
        out = KeyStatistics(self.group_name, self.binning)
        out._per_key = dict(self._per_key)
        return out

    def stats_of(self, table: str, column: str) -> BinStats:
        try:
            return self._per_key[(table, column)]
        except KeyError:
            raise ReproError(
                f"no bin statistics for key {table}.{column} in group "
                f"{self.group_name!r}") from None

    def has_key(self, table: str, column: str) -> bool:
        return (table, column) in self._per_key

    def insert(self, table: str, column: str, values: np.ndarray) -> None:
        self.stats_of(table, column).insert(values)

    def delete(self, table: str, column: str, values: np.ndarray) -> None:
        self.stats_of(table, column).delete(values)

    @property
    def keys(self) -> list[tuple[str, str]]:
        return list(self._per_key)
