"""ClusterModel: bit-identity, routed updates, hot-swap, crash retries,
and serving integration (HTTP update routing, per-shard cache eviction)."""

import threading
import time

import numpy as np
import pytest

from repro.api import CardinalityModel
from repro.cluster import ClusterModel
from repro.core.estimator import FactorJoin, FactorJoinConfig
from repro.data import Column, Table
from repro.shard import (
    ShardedFactorJoin,
    fit_shard,
    partition_database,
    save_shard_artifact,
)
from repro.sql import parse_query

N_SHARDS = 3
N_WORKERS = 2

QUERIES = [
    "SELECT COUNT(*) FROM A a, B b WHERE a.id = b.aid",
    "SELECT COUNT(*) FROM A a, B b WHERE a.id = b.aid AND a.x > 1",
    ("SELECT COUNT(*) FROM A a, B b, C c "
     "WHERE a.id = b.aid AND b.cid = c.id AND c.z = 1"),
    "SELECT COUNT(*) FROM B b WHERE b.y >= 2",
    "SELECT COUNT(*) FROM A a WHERE a.id = 4",
]


def _config():
    return FactorJoinConfig(n_bins=4, table_estimator="truescan", seed=0)


def _fit_sharded(db):
    return ShardedFactorJoin(_config(), n_shards=N_SHARDS,
                             parallel="serial").fit(db)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    from tests.conftest import build_toy_db

    db = build_toy_db(seed=3)
    path = tmp_path_factory.mktemp("cluster") / "ensemble"
    _fit_sharded(db).save(path)
    return str(path), db


@pytest.fixture(scope="module")
def served_cluster(artifact):
    """A read-only cluster over the shared artifact (mutation tests open
    their own)."""
    path, db = artifact
    with ClusterModel.from_artifact(path, workers=N_WORKERS) as cluster:
        yield cluster, _fit_sharded(db), db


@pytest.fixture
def fresh_cluster(artifact):
    path, db = artifact
    with ClusterModel.from_artifact(path, workers=N_WORKERS) as cluster:
        yield cluster, _fit_sharded(db), db


def _insert_batch(n=4, start=700):
    ids = np.arange(start, start + n)
    return Table("C", [Column("id", ids),
                       Column("z", np.ones(n, dtype=ids.dtype))])


class TestBitIdentity:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_estimates_match_in_process_ensemble(self, served_cluster,
                                                 sql):
        cluster, sharded, _ = served_cluster
        query = parse_query(sql)
        assert cluster.estimate(query) == sharded.estimate(query)

    def test_subplan_maps_match(self, served_cluster):
        cluster, sharded, _ = served_cluster
        query = parse_query(QUERIES[2])
        assert cluster.estimate_subplans(query) == \
            sharded.estimate_subplans(query)

    def test_sessions_match_probe_by_probe(self, served_cluster):
        cluster, sharded, _ = served_cluster
        query = parse_query(QUERIES[2])
        with cluster.open_session(query) as remote, \
                sharded.open_session(query) as local:
            for subset in local.estimate_all():
                assert remote.estimate_join(subset) == \
                    local.estimate_join(subset)

    def test_shard_pruning_matches(self, served_cluster):
        cluster, sharded, _ = served_cluster
        query = parse_query(QUERIES[4])
        assert cluster.candidate_shards(query, "a") == \
            sharded.candidate_shards(query, "a")
        assert len(cluster.candidate_shards(query, "a")) == 1

    def test_protocol_conformance(self, served_cluster):
        cluster, _, _ = served_cluster
        assert isinstance(cluster, CardinalityModel)
        caps = cluster.capabilities()
        assert caps.name == "factorjoin-cluster"
        assert caps.supports_update and caps.supports_delete


class TestStatsWorkload:
    def test_bit_identity_across_the_stats_workload(self, tmp_path):
        """The acceptance gate: the full STATS workload answers
        identically through worker processes."""
        from repro.eval.harness import make_context

        ctx = make_context("stats", scale=0.1, seed=0, max_tables=4)
        sharded = ShardedFactorJoin(
            FactorJoinConfig(n_bins=8, table_estimator="truescan", seed=0),
            n_shards=4, parallel="serial").fit(ctx.database)
        path = tmp_path / "stats-ensemble"
        sharded.save(path)
        with ClusterModel.from_artifact(path, workers=4) as cluster:
            for query in ctx.workload:
                assert cluster.estimate(query) == sharded.estimate(query)


class TestRoutedUpdates:
    def test_insert_routes_to_owning_worker(self, fresh_cluster):
        cluster, sharded, _ = fresh_cluster
        # hash policy on C.id with 3 shards: ids 700..703 land on shards
        # 1, 2, 0, 1 -> both workers of a 2-worker pool see updates
        batch = _insert_batch()
        before = {row["worker"]: row["updates"]
                  for row in cluster.workers_health()}
        cluster.update("C", batch)
        sharded.update("C", batch)
        after = {row["worker"]: row["updates"]
                 for row in cluster.workers_health()}
        assert sum(after.values()) - sum(before.values()) == 3  # 3 shards
        for sql in QUERIES:
            assert cluster.estimate(parse_query(sql)) == \
                sharded.estimate(parse_query(sql))

    def test_single_shard_update_touches_one_worker(self, fresh_cluster):
        cluster, _, _ = fresh_cluster
        ids = np.array([900])  # 900 % 3 == 0 -> shard 0 -> worker 0
        batch = Table("C", [Column("id", ids),
                            Column("z", np.ones(1, dtype=ids.dtype))])
        before = {row["worker"]: row["updates"]
                  for row in cluster.workers_health()}
        cluster.update("C", batch)
        after = {row["worker"]: row["updates"]
                 for row in cluster.workers_health()}
        assert after[0] - before[0] == 1
        assert after[1] - before[1] == 0

    def test_delete_round_trips(self, fresh_cluster):
        cluster, sharded, _ = fresh_cluster
        probe = parse_query(QUERIES[2])
        before = cluster.estimate(probe)
        batch = _insert_batch()
        cluster.update("C", batch)
        cluster.update("C", deleted_rows=batch)
        assert cluster.estimate(probe) == pytest.approx(before, rel=1e-9)

    def test_update_validation_failure_mutates_nothing(self, fresh_cluster):
        from repro.errors import ReproError

        cluster, _, _ = fresh_cluster
        probe = parse_query(QUERIES[0])
        before = cluster.estimate(probe)
        bad = Table("C", [Column("id", np.arange(3))])  # missing column z
        with pytest.raises(ReproError):
            cluster.update("C", bad)
        assert cluster.estimate(probe) == before


class TestCrashRecovery:
    def test_estimates_survive_a_worker_killed_mid_batch(self,
                                                         fresh_cluster):
        cluster, sharded, _ = fresh_cluster
        queries = [parse_query(sql) for sql in QUERIES]
        assert cluster.estimate(queries[0]) == sharded.estimate(queries[0])
        victim = cluster.pool.workers[1]
        old_pid = victim.transport.pid
        victim.transport.process.kill()
        time.sleep(0.2)
        # the batch keeps answering, bit-identically, through the
        # in-driver retry while the worker restarts
        for query in queries:
            assert cluster.estimate(query) == sharded.estimate(query)
        health = cluster.workers_health()
        assert health[1]["alive"] and health[1]["pid"] != old_pid
        assert health[1]["restarts"] == 1
        # the reseeded worker holds its shard tokens again and answers
        assert health[1]["tokens"]

    def test_journal_replay_after_crash_preserves_updates(self,
                                                          fresh_cluster):
        cluster, sharded, _ = fresh_cluster
        batch = _insert_batch()
        cluster.update("C", batch)
        sharded.update("C", batch)
        for victim in cluster.pool.workers:
            victim.transport.process.kill()
        time.sleep(0.2)
        probe = parse_query(QUERIES[2])
        assert cluster.estimate(probe) == sharded.estimate(probe)
        # the restarted workers answer probes again (not just fallbacks)
        health = cluster.workers_health()
        assert all(row["alive"] and row["tokens"] for row in health)
        assert cluster.estimate(probe) == sharded.estimate(probe)


class TestSharedPool:
    def test_two_models_share_a_pool_and_reseed_independently(self,
                                                              artifact):
        from repro.cluster import WorkerPool

        path, db = artifact
        reference = _fit_sharded(db)
        queries = [parse_query(sql) for sql in QUERIES[:3]]
        want = [reference.estimate(q) for q in queries]
        with WorkerPool(2, timeout=60.0) as pool:
            model_a = ClusterModel.from_artifact(path, pool=pool)
            model_b = ClusterModel.from_artifact(path, pool=pool)
            assert model_a.estimate(queries[0]) == want[0]
            assert model_b.estimate(queries[0]) == want[0]
            # a crash must reseed BOTH models' tokens, not just the
            # last-attached one (fresh queries force real probes — a
            # repeated query would answer from the probe memo without
            # touching the dead worker)
            pool.workers[0].transport.process.kill()
            time.sleep(0.2)
            assert model_a.estimate(queries[1]) == want[1]
            assert model_b.estimate(queries[1]) == want[1]
            health = pool.health()
            assert health[0]["alive"] and health[0]["restarts"] == 1
            assert health[0]["tokens"]  # both models' tokens reseeded
            # closing one model detaches only its reseed hook; the pool
            # and the other model keep serving
            model_a.close()
            pool.workers[1].transport.process.kill()
            time.sleep(0.2)
            assert model_b.estimate(queries[2]) == want[2]


def _refit_shard(db, index, rows_factor=1.0):
    """Refit shard ``index`` of the toy ensemble's partitioning; with
    ``rows_factor < 1`` the refreshed shard holds fewer rows (merged
    statistics change)."""
    from dataclasses import replace

    policy = ShardedFactorJoin(_config(), n_shards=N_SHARDS,
                               parallel="serial").policy
    shard_db = partition_database(db, policy)[index]
    if rows_factor < 1.0:
        tables = []
        for name in shard_db.table_names:
            table = shard_db.table(name)
            keep = max(1, int(len(table) * rows_factor))
            tables.append(table.head(keep))
        from repro.data import Database

        shard_db = Database(shard_db.schema, tables)
    binnings = FactorJoin(replace(_config())).build_binnings(db)
    return fit_shard(replace(_config(), keep_pairwise_joints=True),
                     shard_db, binnings)


class TestHotSwap:
    def test_same_data_swap_changes_nothing(self, fresh_cluster, tmp_path):
        cluster, sharded, db = fresh_cluster
        refit = _refit_shard(db, 1)
        shard_path = tmp_path / "refresh1"
        save_shard_artifact(refit.model, shard_path, summary=refit.summary)
        before = {sql: cluster.estimate(parse_query(sql))
                  for sql in QUERIES}
        info = cluster.hot_swap_shard(1, shard_path)
        assert info["stats_changed"] is False
        for sql, value in before.items():
            assert cluster.estimate(parse_query(sql)) == value

    def test_changed_data_swap_matches_in_process_swap(self, fresh_cluster,
                                                       tmp_path):
        cluster, sharded, db = fresh_cluster
        refit = _refit_shard(db, 1, rows_factor=0.5)
        shard_path = tmp_path / "refresh1-smaller"
        save_shard_artifact(refit.model, shard_path, summary=refit.summary)
        cluster_info = cluster.hot_swap_shard(1, shard_path)
        sharded_info = sharded.hot_swap_shard(1, refit.model,
                                              summary=refit.summary)
        assert cluster_info["stats_changed"] is True
        assert sharded_info["stats_changed"] is True
        for sql in QUERIES:
            assert cluster.estimate(parse_query(sql)) == \
                sharded.estimate(parse_query(sql))

    def test_failed_swap_releases_its_provisional_token(self,
                                                        fresh_cluster,
                                                        tmp_path):
        from repro.errors import ArtifactError

        cluster, sharded, _ = fresh_cluster
        bad = tmp_path / "bad-shard"
        bad.mkdir()
        (bad / "manifest.json").write_text("{}")
        before = len(cluster._ledgers.snapshot())
        with pytest.raises(ArtifactError):
            cluster.hot_swap_shard(1, bad)
        assert len(cluster._ledgers.snapshot()) == before
        query = parse_query(QUERIES[0])
        assert cluster.estimate(query) == sharded.estimate(query)

    def test_swap_requires_an_artifact_path(self, fresh_cluster):
        from repro.errors import UnsupportedOperationError

        cluster, _, db = fresh_cluster
        with pytest.raises(UnsupportedOperationError, match="artifact"):
            cluster.hot_swap_shard(0, _refit_shard(db, 0).model)

    def test_racing_estimates_never_mix_states(self, fresh_cluster,
                                               tmp_path):
        """Estimates concurrent with update + hot-swap always equal one
        of the published states' answers — never a blend."""
        cluster, sharded, db = fresh_cluster
        probe = parse_query(QUERIES[2])
        batch = _insert_batch()
        v0 = sharded.estimate(probe)
        sharded.update("C", batch)
        v1 = sharded.estimate(probe)
        refit = _refit_shard(db, 1, rows_factor=0.5)
        shard_path = tmp_path / "refresh-race"
        save_shard_artifact(refit.model, shard_path, summary=refit.summary)
        sharded.hot_swap_shard(1, refit.model, summary=refit.summary)
        v2 = sharded.estimate(probe)
        allowed = {v0, v1, v2}
        assert len(allowed) == 3  # the race is observable

        seen, errors = [], []

        def hammer():
            try:
                for _ in range(30):
                    seen.append(cluster.estimate(probe))
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        cluster.update("C", batch)
        cluster.hot_swap_shard(1, shard_path)
        for thread in threads:
            thread.join()
        assert not errors
        assert set(seen) <= allowed
        assert cluster.estimate(probe) == v2


class TestServingIntegration:
    @pytest.fixture
    def served(self, fresh_cluster, tmp_path):
        from repro.serve import EstimationService, serve_in_background

        cluster, sharded, db = fresh_cluster
        service = EstimationService()
        service.register("default", cluster)
        server, _ = serve_in_background(service, port=0,
                                        swap_dir=str(tmp_path))
        yield server, service, cluster, sharded, db, tmp_path
        server.shutdown()
        server.server_close()

    def _post(self, server, path, payload):
        import json
        import urllib.request

        host, port = server.server_address[:2]
        req = urllib.request.Request(
            f"http://{host}:{port}{path}",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(req, timeout=30) as resp:
            return json.loads(resp.read())

    def test_v1_estimate_serves_the_cluster(self, served):
        server, _, cluster, sharded, _, _ = served
        body = self._post(server, "/v1/estimate", {"sql": QUERIES[2]})
        assert body["estimate"] == sharded.estimate(parse_query(QUERIES[2]))

    def test_v1_update_routes_to_the_owning_worker(self, served):
        server, _, cluster, sharded, _, _ = served
        before = {row["worker"]: row["updates"]
                  for row in cluster.workers_health()}
        body = self._post(server, "/v1/update", {
            "table": "C", "rows": {"id": [900], "z": [1]}})  # shard 0
        assert body["rows"] == 1
        after = {row["worker"]: row["updates"]
                 for row in cluster.workers_health()}
        assert after[0] - before[0] == 1 and after[1] == before[1]
        sharded.update("C", Table("C", [
            Column("id", np.array([900])),
            Column("z", np.ones(1, dtype=np.int64))]))
        body = self._post(server, "/v1/estimate", {"sql": QUERIES[2]})
        assert body["estimate"] == sharded.estimate(parse_query(QUERIES[2]))

    def test_v1_swap_endpoint_swaps_and_is_confined(self, served):
        import urllib.error

        server, service, cluster, _, db, swap_dir = served
        refit = _refit_shard(db, 1)
        save_shard_artifact(refit.model, swap_dir / "refresh1",
                            summary=refit.summary)
        body = self._post(server, "/v1/swap",
                          {"shard": 1, "artifact": "refresh1"})
        assert body["stats_changed"] is False
        assert body["shard"] == 1
        with pytest.raises(urllib.error.HTTPError) as info:
            self._post(server, "/v1/swap",
                       {"shard": 1, "artifact": "../outside"})
        assert info.value.code == 400

    def test_hot_swap_evicts_only_touched_entries(self, served):
        """The per-shard invalidation satellite: after a same-statistics
        swap of shard 1, a query pruned to shard 0 keeps its cache entry
        while a query that probed shard 1 is evicted."""
        server, service, cluster, _, db, swap_dir = served
        touched = "SELECT COUNT(*) FROM A a WHERE a.id = 4"   # 4 % 3 -> 1
        untouched = "SELECT COUNT(*) FROM A a WHERE a.id = 3"  # 3 % 3 -> 0
        assert cluster.candidate_shards(parse_query(touched), "a") == [1]
        assert cluster.candidate_shards(parse_query(untouched), "a") == [0]
        service.estimate(touched)
        service.estimate(untouched)
        refit = _refit_shard(db, 1)
        save_shard_artifact(refit.model, swap_dir / "refresh-cache",
                            summary=refit.summary)
        summary = service.hot_swap_shard(
            1, str(swap_dir / "refresh-cache"))
        assert summary["full_invalidation"] is False
        assert summary["evicted"]["entries"] >= 1
        assert summary["evicted"]["kept_entries"] >= 1
        assert service.estimate(untouched).cached
        assert not service.estimate(touched).cached

    def test_failed_swap_keeps_the_cache_warm(self, served):
        """A swap that fails validation publishes nothing, so it must
        not cost the warmed cache either."""
        from repro.errors import ReproError

        server, service, cluster, _, db, swap_dir = served
        query = "SELECT COUNT(*) FROM A a WHERE a.id = 3"
        service.estimate(query)
        with pytest.raises(ReproError):
            service.hot_swap_shard(99, str(swap_dir / "does-not-exist"))
        assert service.estimate(query).cached

    def test_changed_stats_swap_clears_the_whole_cache(self, served):
        server, service, cluster, _, db, swap_dir = served
        untouched = "SELECT COUNT(*) FROM A a WHERE a.id = 3"
        service.estimate(untouched)
        refit = _refit_shard(db, 1, rows_factor=0.5)
        save_shard_artifact(refit.model, swap_dir / "refresh-changed",
                            summary=refit.summary)
        summary = service.hot_swap_shard(
            1, str(swap_dir / "refresh-changed"))
        assert summary["full_invalidation"] is True
        assert not service.estimate(untouched).cached
