"""Template-based random query generation (CEB/JOB workload style).

Templates are connected join sub-graphs of the schema (optionally with
redundant edges making the alias graph cyclic, or repeated tables making
self joins); queries instantiate a template with randomized filter
predicates whose literals are drawn from the actual column data, so
selectivities span a wide range like the paper's workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.key_groups import schema_key_groups
from repro.data.database import Database
from repro.data.types import DataType
from repro.sql.predicates import (
    Between,
    Comparison,
    In,
    Like,
    Predicate,
    conjoin,
)
from repro.sql.query import ColumnRef, JoinCondition, Query, TableRef
from repro.utils import resolve_rng


@dataclass
class Template:
    tables: list[TableRef]
    joins: list[JoinCondition]
    cyclic: bool = False
    self_join: bool = False

    def signature(self) -> tuple:
        return Query(self.tables, self.joins).join_template()


class QueryGenerator:
    """Random template and query generation against one database."""

    def __init__(self, database: Database, seed: int = 0,
                 like_fraction: float = 0.0):
        self._db = database
        self._rng = resolve_rng(seed)
        self._like_fraction = like_fraction
        self._relations = list(database.schema.join_relations)
        self._groups = schema_key_groups(database.schema)
        self._group_of = {}
        for group in self._groups:
            for member in group.members:
                self._group_of[member] = group.name

    # -- templates ---------------------------------------------------------------

    def sample_templates(self, n: int, max_tables: int = 5,
                         min_tables: int = 2,
                         cyclic_fraction: float = 0.0,
                         self_join_fraction: float = 0.0) -> list[Template]:
        """Distinct random templates; sizes uniform in [min, max] tables."""
        templates: list[Template] = []
        seen: set = set()
        attempts = 0
        while len(templates) < n and attempts < n * 60:
            attempts += 1
            size = int(self._rng.integers(min_tables, max_tables + 1))
            allow_self = self._rng.random() < self_join_fraction
            template = self._random_template(size, allow_self)
            if template is None:
                continue
            if self._rng.random() < cyclic_fraction:
                self._add_cycle_edge(template)
            sig = template.signature()
            if sig in seen:
                continue
            seen.add(sig)
            templates.append(template)
        return templates

    def _random_template(self, size: int, allow_self: bool
                         ) -> Template | None:
        rng = self._rng
        rel = self._relations[rng.integers(0, len(self._relations))]
        alias_count: dict[str, int] = {}

        def fresh_alias(table: str) -> str:
            alias_count[table] = alias_count.get(table, 0) + 1
            if alias_count[table] == 1:
                return table
            return f"{table}_{alias_count[table]}"

        tables = [TableRef(rel.left_table, fresh_alias(rel.left_table)),
                  TableRef(rel.right_table, fresh_alias(rel.right_table))]
        joins = [JoinCondition(
            ColumnRef(tables[0].alias, rel.left_column),
            ColumnRef(tables[1].alias, rel.right_column))]
        is_self = False

        for _ in range(size - 2):
            present = {t.table for t in tables}
            grow = []
            for relation in self._relations:
                lt, rt = relation.left_table, relation.right_table
                if (lt in present) != (rt in present):
                    grow.append(relation)
                elif allow_self and lt in present and rt in present:
                    grow.append(relation)
            if not grow:
                break
            relation = grow[rng.integers(0, len(grow))]
            lt, rt = relation.left_table, relation.right_table
            if lt in present and rt in present:
                # duplicate one endpoint under a fresh alias (self join)
                new_table, new_col = rt, relation.right_column
                old_table, old_col = lt, relation.left_column
                is_self = True
            elif lt in present:
                new_table, new_col = rt, relation.right_column
                old_table, old_col = lt, relation.left_column
            else:
                new_table, new_col = lt, relation.left_column
                old_table, old_col = rt, relation.right_column
            old_aliases = [t.alias for t in tables if t.table == old_table]
            old_alias = old_aliases[rng.integers(0, len(old_aliases))]
            new_alias = fresh_alias(new_table)
            tables.append(TableRef(new_table, new_alias))
            joins.append(JoinCondition(ColumnRef(old_alias, old_col),
                                       ColumnRef(new_alias, new_col)))
        if len(tables) < 2:
            return None
        return Template(tables, joins, self_join=is_self)

    def _add_cycle_edge(self, template: Template) -> None:
        """Add a redundant equi-join edge between two aliases whose keys
        share an equivalence group (makes the alias graph cyclic, like
        JOB's ``mi.movie_id = mi_idx.movie_id`` clauses)."""
        query = Query(template.tables, template.joins)
        refs_by_group: dict[str, list[ColumnRef]] = {}
        for join in template.joins:
            for ref in (join.left, join.right):
                table = query.table_of(ref.alias)
                group = self._group_of.get((table, ref.column))
                if group:
                    refs_by_group.setdefault(group, []).append(ref)
        direct = {frozenset((j.left.alias, j.right.alias))
                  for j in template.joins}
        for refs in refs_by_group.values():
            for i in range(len(refs)):
                for j in range(i + 1, len(refs)):
                    a, b = refs[i], refs[j]
                    if a.alias == b.alias:
                        continue
                    if frozenset((a.alias, b.alias)) in direct:
                        continue
                    template.joins.append(JoinCondition(a, b))
                    template.cyclic = True
                    return

    # -- filters ------------------------------------------------------------------

    def generate_workload(self, templates: list[Template], n_queries: int,
                          max_predicates: int = 16,
                          filter_probability: float = 0.6,
                          ensure_nonzero: bool = True,
                          max_retries: int = 8) -> list[Query]:
        """Instantiate templates round-robin.

        With ``ensure_nonzero`` (default) each query is rejection-sampled
        until its true cardinality is positive — the paper's workloads are
        real queries with non-empty results.
        """
        queries: list[Query] = []
        if not templates:
            return queries
        executor = None
        if ensure_nonzero:
            from repro.engine.executor import CardinalityExecutor
            executor = CardinalityExecutor(self._db)
        for i in range(n_queries):
            template = templates[i % len(templates)]
            query = self._instantiate(template, max_predicates,
                                      filter_probability)
            if executor is not None:
                for _ in range(max_retries):
                    if executor.cardinality(query) > 0:
                        break
                    query = self._instantiate(template, max_predicates,
                                              filter_probability)
            queries.append(query)
        return queries

    def _instantiate(self, template: Template, max_predicates: int,
                     filter_probability: float) -> Query:
        rng = self._rng
        filters: dict[str, Predicate] = {}
        budget = max_predicates
        aliases = list(template.tables)
        rng.shuffle(aliases)
        for tref in aliases:
            if budget <= 0:
                break
            if rng.random() > filter_probability:
                continue
            tschema = self._db.schema.table(tref.table)
            attrs = tschema.attribute_columns
            if not attrs:
                continue
            n_preds = int(rng.integers(1, min(3, len(attrs), budget) + 1))
            chosen = rng.choice(len(attrs), size=n_preds, replace=False)
            preds = []
            for idx in chosen:
                pred = self._random_predicate(tref.table, attrs[idx])
                if pred is not None:
                    preds.append(pred)
            if preds:
                filters[tref.alias] = conjoin(preds)
                budget -= len(preds)
        query = Query(template.tables, template.joins, filters)
        if not query.filters:  # guarantee at least one predicate
            tref = template.tables[0]
            attrs = self._db.schema.table(tref.table).attribute_columns
            if attrs:
                pred = self._random_predicate(tref.table, attrs[0])
                if pred is not None:
                    query = Query(template.tables, template.joins,
                                  {tref.alias: pred})
        return query

    def _random_predicate(self, table: str, column: str) -> Predicate | None:
        rng = self._rng
        col = self._db.table(table)[column]
        values = col.non_null_values()
        if len(values) == 0:
            return None
        if col.dtype is DataType.STRING:
            return self._string_predicate(column, values)
        distinct = np.unique(values)
        if len(distinct) <= 15:
            if rng.random() < 0.5:
                # frequency-weighted: pick the value of a random row so
                # common categories are filtered on most often
                value = values[rng.integers(0, len(values))]
                return Comparison(column, "=", int(value))
            size = int(rng.integers(2, min(6, len(distinct)) + 1))
            picks = rng.choice(distinct, size=size, replace=False)
            return In(column, [int(v) for v in sorted(picks)])
        # wide numeric domain: range predicates at random quantiles,
        # biased toward keeping a substantial fraction of rows
        kind = rng.random()
        if kind < 0.45:
            if rng.random() < 0.5:
                q = rng.uniform(0.3, 0.95)
                return Comparison(column, "<=",
                                  int(np.quantile(values, q)))
            q = rng.uniform(0.05, 0.7)
            return Comparison(column, ">=", int(np.quantile(values, q)))
        if kind < 0.75:
            lo_q = rng.uniform(0.0, 0.5)
            hi_q = rng.uniform(lo_q + 0.25, 1.0)
            return Between(column, int(np.quantile(values, lo_q)),
                           int(np.quantile(values, hi_q)))
        if rng.random() < 0.5:
            q = rng.uniform(0.3, 0.95)
            return Comparison(column, "<", int(np.quantile(values, q)))
        q = rng.uniform(0.05, 0.7)
        return Comparison(column, ">", int(np.quantile(values, q)))

    def _string_predicate(self, column: str, values: np.ndarray) -> Predicate:
        rng = self._rng
        sample = str(values[rng.integers(0, len(values))])
        if rng.random() < max(self._like_fraction, 0.5):
            # LIKE with a substring of a real value (always matches >= 1 row)
            if len(sample) <= 2:
                sub = sample
            else:
                length = int(rng.integers(2, min(5, len(sample)) + 1))
                start = int(rng.integers(0, len(sample) - length + 1))
                sub = sample[start:start + length]
            if rng.random() < 0.15:
                return Like(column, f"%{sub}%", negated=True)
            return Like(column, f"%{sub}%")
        return Comparison(column, "=", sample)
