"""Serving-layer planning: ``serve_plan`` / ``POST /v1/plan`` and the
plan-quality feedback path (``p_error`` on ``/v1/feedback``)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.estimator import FactorJoin, FactorJoinConfig
from repro.plan import (
    LocalCardinalityGenerator,
    PlanRequest,
    parse_hints,
    plan_query,
)
from repro.serve import EstimationService, serve_in_background
from repro.sql import parse_query

SQL = ("SELECT COUNT(*) FROM A a, B b, C c "
       "WHERE a.id = b.aid AND b.cid = c.id AND a.x > 1")
TWO_TABLE = "SELECT COUNT(*) FROM A a, B b WHERE a.id = b.aid"
ONE_TABLE = "SELECT COUNT(*) FROM A a WHERE a.x > 1"


@pytest.fixture
def served(toy_db):
    model = FactorJoin(FactorJoinConfig(n_bins=4)).fit(toy_db)
    service = EstimationService()
    service.register("default", model)
    server, _ = serve_in_background(service, port=0)
    yield server, service, model
    server.shutdown()
    server.server_close()


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _post(server, path, payload):
    req = urllib.request.Request(
        _url(server, path), data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=10) as resp:
        return json.loads(resp.read())


def _error_of(server, path, payload):
    with pytest.raises(urllib.error.HTTPError) as info:
        _post(server, path, payload)
    return info.value.code, json.loads(info.value.read())


class TestServePlan:
    def test_matches_local_generator(self, served):
        """The service plan is bit-identical to planning directly
        against the model — serving adds caching, not drift."""
        server, service, model = served
        response = service.serve_plan(PlanRequest(query=SQL))
        decision = plan_query(SQL, LocalCardinalityGenerator(model=model))
        assert response.join_order == decision.plan.render()
        assert response.hint_text == decision.hint_text()
        assert response.estimated_cost == decision.estimated_cost
        # the response carries the hinted (multi-table) sub-plans
        assert response.cardinalities == {
            s: v for s, v in decision.cardinalities.items() if len(s) > 1}

    def test_repeat_requests_are_bit_identical(self, served):
        server, service, _ = served
        first = service.serve_plan(PlanRequest(query=SQL))
        second = service.serve_plan(PlanRequest(query=SQL))
        assert first.join_order == second.join_order
        assert first.hint_text == second.hint_text
        assert first.leading == second.leading
        assert first.estimated_cost == second.estimated_cost

    def test_single_table_plan(self, served):
        _, service, _ = served
        response = service.serve_plan(PlanRequest(query=ONE_TABLE))
        assert response.estimated_cost == 0.0
        assert response.leading == "a"

    def test_json_dialect(self, served):
        _, service, _ = served
        response = service.serve_plan(
            PlanRequest(query=SQL, dialect="json"))
        hints = parse_hints(response.hint_text, "json")
        assert hints.plan().aliases == frozenset(
            parse_query(SQL).aliases)

    def test_bad_dialect_rejected_at_request(self):
        with pytest.raises(ValueError):
            PlanRequest(query=SQL, dialect="oracle")


class TestPlanRoute:
    def test_post_v1_plan(self, served):
        server, service, model = served
        body = _post(server, "/v1/plan", {"sql": SQL})
        decision = plan_query(SQL, LocalCardinalityGenerator(model=model))
        assert body["hint_text"] == decision.hint_text()
        assert body["join_order"] == decision.plan.render()
        assert body["dialect"] == "pg_hint_plan"
        assert body["model"] == "default"
        assert body["api_version"]
        # cardinalities come back keyed by canonical sub-plan alias sets
        parsed = {frozenset(k.split(",")): v
                  for k, v in body["cardinalities"].items()}
        assert parsed == {s: v for s, v in decision.cardinalities.items()
                          if len(s) > 1}

    def test_plan_hints_parse_back(self, served):
        server, _, _ = served
        body = _post(server, "/v1/plan", {"sql": SQL, "dialect": "json"})
        hints = parse_hints(body["hint_text"])
        assert hints.plan().render() in body["join_order"]

    def test_trace_param(self, served):
        server, _, _ = served
        body = _post(server, "/v1/plan?trace=true", {"sql": TWO_TABLE})
        assert body["trace"]["name"] == "request.plan"
        assert "trace" not in _post(server, "/v1/plan",
                                    {"sql": TWO_TABLE})

    def test_parse_error_taxonomy(self, served):
        server, _, _ = served
        code, payload = _error_of(server, "/v1/plan",
                                  {"sql": "not sql at all"})
        assert code == 400
        assert payload["error"]["code"] == "parse_error"

    def test_unknown_model_taxonomy(self, served):
        server, _, _ = served
        code, payload = _error_of(server, "/v1/plan",
                                  {"sql": SQL, "model": "missing"})
        assert code == 404
        assert payload["error"]["code"] == "model_not_found"

    def test_bad_dialect_taxonomy(self, served):
        server, _, _ = served
        code, payload = _error_of(server, "/v1/plan",
                                  {"sql": SQL, "dialect": "oracle"})
        assert code == 400

    def test_plan_latency_is_metered(self, served):
        server, service, _ = served
        _post(server, "/v1/plan", {"sql": SQL})
        summary = service.metrics.histogram(
            "repro_request_seconds").summary(
                {"endpoint": "plan", "model": "default"})
        assert summary["count"] == 1


class TestPlanFeedback:
    def test_plan_costs_record_p_error(self, served):
        server, service, _ = served
        body = _post(server, "/v1/feedback",
                     {"sql": TWO_TABLE, "true_cardinality": 10.0,
                      "plan_cost": 30.0, "optimal_cost": 10.0})
        assert body["p_error"] == pytest.approx(3.0)
        summary = service.metrics.histogram("repro_perror").summary()
        assert summary["count"] == 1
        snapshot = service.slo.snapshot()
        names = {entry["name"] for entry in snapshot["slos"]}
        assert "plan_quality" in names

    def test_feedback_without_plan_costs_has_no_p_error(self, served):
        server, service, _ = served
        body = _post(server, "/v1/feedback",
                     {"sql": TWO_TABLE, "true_cardinality": 10.0})
        assert "p_error" not in body
        assert service.metrics.histogram("repro_perror").summary()[
            "count"] == 0

    def test_plan_cost_pair_enforced(self, served):
        server, _, _ = served
        code, _ = _error_of(server, "/v1/feedback",
                            {"sql": TWO_TABLE, "true_cardinality": 10.0,
                             "plan_cost": 30.0})
        assert code == 400
        code, _ = _error_of(server, "/v1/feedback",
                            {"sql": TWO_TABLE, "true_cardinality": 10.0,
                             "plan_cost": -1.0, "optimal_cost": 2.0})
        assert code == 400

    def test_p_error_clamped_to_one(self, served):
        server, _, _ = served
        body = _post(server, "/v1/feedback",
                     {"sql": TWO_TABLE, "true_cardinality": 10.0,
                      "plan_cost": 5.0, "optimal_cost": 50.0})
        assert body["p_error"] == 1.0
