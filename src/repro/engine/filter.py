"""Vectorized predicate evaluation over tables.

NULL semantics: a NULL value fails every leaf predicate except the matching
``IS NULL``; ``NOT p`` additionally excludes rows that are NULL in any column
``p`` references (simplified SQL three-valued logic).
"""

from __future__ import annotations

import re

import numpy as np

from repro.data.table import Table
from repro.errors import UnsupportedQueryError
from repro.sql.predicates import (
    And,
    Between,
    Comparison,
    In,
    IsNull,
    Like,
    Not,
    Or,
    Predicate,
    TruePredicate,
)

_OP_FUNCS = {
    "=": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def like_pattern_to_regex(pattern: str) -> re.Pattern:
    """Translate a SQL LIKE pattern (``%``, ``_``) to an anchored regex."""
    out = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def _null_mask_of(pred: Predicate, table: Table) -> np.ndarray:
    """Rows NULL in any column referenced by ``pred``."""
    mask = np.zeros(len(table), dtype=bool)
    for col in pred.columns():
        mask |= table[col].null_mask
    return mask


def evaluate_predicate(pred: Predicate, table: Table) -> np.ndarray:
    """Boolean mask of rows in ``table`` satisfying ``pred``."""
    if isinstance(pred, TruePredicate):
        return np.ones(len(table), dtype=bool)

    if isinstance(pred, Comparison):
        col = table[pred.column]
        if col.dtype.is_numeric:
            values = col.values
            target = pred.value
        else:
            if pred.op not in ("=", "!=", "<", "<=", ">", ">="):
                raise UnsupportedQueryError(
                    f"operator {pred.op} unsupported on strings")
            values = col.values.astype(str)
            target = str(pred.value)
        mask = _OP_FUNCS[pred.op](values, target)
        return np.asarray(mask, dtype=bool) & ~col.null_mask

    if isinstance(pred, Between):
        col = table[pred.column]
        mask = (col.values >= pred.low) & (col.values <= pred.high)
        return np.asarray(mask, dtype=bool) & ~col.null_mask

    if isinstance(pred, In):
        col = table[pred.column]
        mask = np.isin(col.values, np.asarray(list(pred.values),
                                              dtype=col.values.dtype))
        return np.asarray(mask, dtype=bool) & ~col.null_mask

    if isinstance(pred, Like):
        col = table[pred.column]
        regex = like_pattern_to_regex(pred.pattern)
        matches = np.fromiter(
            (bool(regex.match(str(v))) for v in col.values),
            dtype=bool, count=len(table))
        matches &= ~col.null_mask
        if pred.negated:
            matches = ~matches & ~col.null_mask
        return matches

    if isinstance(pred, IsNull):
        col = table[pred.column]
        if pred.negated:
            return ~col.null_mask
        return col.null_mask.copy()

    if isinstance(pred, And):
        mask = np.ones(len(table), dtype=bool)
        for child in pred.children:
            mask &= evaluate_predicate(child, table)
        return mask

    if isinstance(pred, Or):
        mask = np.zeros(len(table), dtype=bool)
        for child in pred.children:
            mask |= evaluate_predicate(child, table)
        return mask

    if isinstance(pred, Not):
        inner = evaluate_predicate(pred.child, table)
        return ~inner & ~_null_mask_of(pred.child, table)

    raise UnsupportedQueryError(f"unknown predicate node {type(pred).__name__}")


def filter_table(table: Table, pred: Predicate) -> Table:
    """Rows of ``table`` satisfying ``pred`` as a new table."""
    if isinstance(pred, TruePredicate):
        return table
    return table.take(evaluate_predicate(pred, table))
