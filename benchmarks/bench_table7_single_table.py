"""Table 7: FactorJoin with different single-table estimators (STATS-CEB).

Paper: BayesCard 19,116s (+45.9%), Sampling 20,633s (+41.6%), TrueScan
19,334s (+45.3%) but with 16x the planning latency (578s vs 36s).

Shape checks: all three beat Postgres; TrueScan has by far the largest
planning time; BayesCard is at least as good as Sampling end-to-end.
"""

from repro.baselines import FactorJoinMethod
from repro.core.estimator import FactorJoinConfig
from repro.utils import format_table

ESTIMATORS = ("bayescard", "sampling", "truescan")


def test_table7_single_table_estimators(benchmark, stats_ctx,
                                        stats_results):
    base = stats_results["Postgres"]
    rows, series = [], {}
    for estimator in ESTIMATORS:
        method = FactorJoinMethod(FactorJoinConfig(
            n_bins=8, table_estimator=estimator, sample_rate=0.05,
            seed=0))
        method.fit(stats_ctx.database)
        result = stats_ctx.runner.run(method, stats_ctx.workload)
        series[estimator] = result
        rows.append([
            estimator,
            f"{result.total_end_to_end:.3f}s",
            f"{result.total_execution:.3f}s + "
            f"{result.total_planning:.3f}s",
            f"{result.improvement_over(base) * 100:+.1f}%",
        ])
    print()
    print(format_table(
        ["Single-table estimator", "End-to-end", "Exec + plan",
         "Improvement"], rows,
        title="Table 7: varying single-table CardEst methods (STATS-CEB)"))

    for estimator in ESTIMATORS:
        assert series[estimator].improvement_over(base) > 0, estimator
    # TrueScan's exact single-table statistics give plans at least as good
    # as the approximate estimators (its latency penalty — 16x in the
    # paper — only materializes at paper-scale table sizes)
    assert series["truescan"].total_execution <= \
        series["bayescard"].total_execution * 1.1
    assert series["truescan"].total_execution <= \
        series["sampling"].total_execution * 1.1

    method = FactorJoinMethod(FactorJoinConfig(
        n_bins=8, table_estimator="bayescard", seed=0))
    method.fit(stats_ctx.database)
    benchmark(lambda: method.estimate(stats_ctx.workload[0]))
