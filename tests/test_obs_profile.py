"""The stdlib sampling profiler: collapsed-stack reports, request
clamping, and the worker-side ``Profile`` RPC handler."""

import os
import threading
import time

from repro.cluster.messages import CollectMetrics, Profile, ProfileResult
from repro.cluster.worker import ShardWorker
from repro.obs.profile import (
    MAX_HZ,
    MAX_SECONDS,
    MIN_HZ,
    ProfileReport,
    clamp_request,
    profile_here,
)


def _busy_until(stop):
    while not stop.is_set():
        sum(i * i for i in range(200))


class TestProfileHere:
    def test_samples_every_thread_including_the_caller(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy_until, args=(stop,),
                                  name="busy-loop", daemon=True)
        worker.start()
        try:
            report = profile_here(seconds=0.3, hz=200)
        finally:
            stop.set()
            worker.join()
        assert report.samples > 0
        collapsed = report.collapsed()
        assert collapsed
        lines = collapsed.splitlines()
        # Heaviest-first, "frame;frame;... count" per line.
        counts = []
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert stack
            counts.append(int(count))
        assert counts == sorted(counts, reverse=True)
        # The busy thread's stack is rooted at its thread name and
        # includes the hot function.
        assert any(line.startswith("busy-loop;") and "_busy_until" in line
                   for line in lines)
        # The caller's own (blocked) thread shows up too.
        roots = {line.split(";", 1)[0] for line in lines}
        assert len(roots) >= 2

    def test_sampler_thread_excludes_itself(self):
        report = profile_here(seconds=0.1, hz=100)
        assert not any("repro-profile-sampler" in line
                       for line in report.collapsed().splitlines())

    def test_to_json_shape(self):
        report = profile_here(seconds=0.05, hz=100)
        payload = report.to_json()
        assert payload["seconds"] == 0.05
        assert payload["hz"] == 100.0
        assert payload["samples"] == report.samples
        assert payload["distinct_stacks"] == len(report.stacks)
        assert isinstance(payload["collapsed"], str)


class TestClamping:
    def test_bounds(self):
        assert clamp_request(1e6, 1e6) == (MAX_SECONDS, MAX_HZ)
        assert clamp_request(-5, 0) == (0.01, MIN_HZ)
        assert clamp_request(1.5, 99.0) == (1.5, 99.0)

    def test_profile_here_applies_the_clamp(self):
        report = profile_here(seconds=-1, hz=10 ** 9)
        assert report.seconds == 0.01
        assert report.hz == MAX_HZ


class TestEmptyReport:
    def test_collapsed_of_empty_report_is_empty(self):
        report = ProfileReport(seconds=1.0, hz=10.0, samples=0, stacks={})
        assert report.collapsed() == ""
        assert report.to_json()["distinct_stacks"] == 0


class TestWorkerProfileRpc:
    def test_handle_profile_returns_collapsed_stacks(self):
        worker = ShardWorker()
        result = worker.handle(Profile(seconds=0.1, hz=100))
        assert isinstance(result, ProfileResult)
        assert result.pid == os.getpid()
        assert result.samples > 0
        assert result.collapsed
        for line in result.collapsed.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert stack and int(count) >= 1

    def test_profile_and_collect_metrics_are_untimed(self):
        """Scrape- and profile-plane RPCs must not perturb the handler
        histogram, or a scrape's snapshot would differ from the registry
        it just froze."""
        worker = ShardWorker()
        worker.handle(Profile(seconds=0.02, hz=50))
        worker.handle(CollectMetrics())
        reply = worker.handle(CollectMetrics())
        children = reply.snapshot["histograms"][
            "repro_worker_handler_seconds"]["children"]
        messages = {dict(key).get("message") for key in children}
        assert "Profile" not in messages
        assert "CollectMetrics" not in messages
