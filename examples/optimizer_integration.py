"""Injecting cardinalities into a query optimizer (the paper's end-to-end
methodology, Section 6.1).

The plan layer packages the paper's optimizer-injection loop behind a
single seam: a ``CardinalityGenerator`` answers sub-plan cardinality
probes (from a local fitted model here; ``RemoteCardinalityGenerator``
speaks to a ``repro serve`` endpoint with the same interface), and
``plan_query`` runs the DPsub join ordering under those answers.  The
decision carries the chosen order *and* every injected cardinality as
optimizer hint text — the pg_hint_plan dialect pastes straight into a
PostgreSQL session with the extension loaded, the JSON dialect feeds
engines with a structured hint interface.

The chosen plans are then costed under the *true* cardinalities, so
plan-quality differences are exactly attributable to estimation quality.

Run:  python examples/optimizer_integration.py
Against a live server instead:
      python -m repro serve --benchmark stats --scale 0.1 --port 8787 &
      python examples/optimizer_integration.py http://127.0.0.1:8787
"""

import sys

from repro.baselines import PostgresMethod, TrueCardMethod
from repro.core.estimator import FactorJoin, FactorJoinConfig
from repro.optimizer.endtoend import EndToEndRunner
from repro.plan import (
    LocalCardinalityGenerator,
    RemoteCardinalityGenerator,
    plan_query,
)
from repro.workloads import build_stats_ceb


def main() -> None:
    bench = build_stats_ceb(scale=0.1, seed=5, n_queries=40,
                            n_templates=20, max_tables=6)
    runner = EndToEndRunner(bench.database)

    # the widest query: the most join orders to get right or wrong
    query = max(bench.workload, key=lambda q: q.num_tables())
    print("query:", query.to_sql()[:100], "...\n")

    # one generator per estimator: it memoizes sub-plan estimates across
    # queries, so replanning a workload never recomputes a lattice
    generators = {
        "postgres": LocalCardinalityGenerator(
            model=PostgresMethod().fit(bench.database)),
        "factorjoin": LocalCardinalityGenerator(
            model=FactorJoin(FactorJoinConfig(
                n_bins=8, table_estimator="bayescard")).fit(
                    bench.database)),
        "truecard": LocalCardinalityGenerator(
            model=TrueCardMethod().fit(bench.database)),
    }
    if len(sys.argv) > 1:  # plan against a live /v1/subplans endpoint
        generators["remote"] = RemoteCardinalityGenerator(sys.argv[1])

    for name, generator in generators.items():
        decision = plan_query(query, generator)
        actual_cost = runner.true_cost_of_plan(query, decision.plan)
        print(f"=== {name} ===")
        print(decision.plan.render(indent=1))
        print(f"  believed cost: {decision.estimated_cost:,.0f}   "
              f"actual cost: {actual_cost:,.0f}")
        # the hint text an engine-side executor would consume
        print(decision.hint_text())
        print()

    # the same decision as neutral JSON, for non-PostgreSQL consumers
    decision = plan_query(query, generators["factorjoin"])
    print("JSON dialect:", decision.hint_text("json")[:120], "...")


if __name__ == "__main__":
    main()
