"""Tests for model artifact persistence (save/load, manifest, integrity)."""

import json

import pytest

from repro.core.estimator import FactorJoin, FactorJoinConfig
from repro.errors import ArtifactError
from repro.serve.artifact import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    MODEL_NAME,
    load_model,
    read_manifest,
    save_model,
    schema_fingerprint,
)
from repro.sql import parse_query

QUERY = parse_query(
    "SELECT COUNT(*) FROM A a, B b WHERE a.id = b.aid AND a.x > 1")


@pytest.fixture
def fitted(toy_db):
    return FactorJoin(FactorJoinConfig(n_bins=4)).fit(toy_db)


class TestSaveLoad:
    def test_round_trip_identical_estimate(self, fitted, tmp_path):
        want = fitted.estimate(QUERY)
        save_model(fitted, tmp_path / "m.fj")
        loaded = load_model(tmp_path / "m.fj")
        assert loaded.estimate(QUERY) == want


class TestCompression:
    """Artifact v2: gzip-compressed pickles, transparent on load."""

    def test_compressed_round_trip_identical_estimate(self, fitted,
                                                      tmp_path):
        want = fitted.estimate(QUERY)
        save_model(fitted, tmp_path / "m.gz", compress=True)
        assert load_model(tmp_path / "m.gz").estimate(QUERY) == want

    def test_compressed_artifact_is_smaller_on_disk(self, fitted,
                                                    tmp_path):
        save_model(fitted, tmp_path / "plain")
        save_model(fitted, tmp_path / "packed", compress=True)
        plain = (tmp_path / "plain" / MODEL_NAME).stat().st_size
        packed = (tmp_path / "packed" / MODEL_NAME).stat().st_size
        assert packed < plain

    def test_manifest_records_encoding_and_on_disk_hash(self, fitted,
                                                        tmp_path):
        save_model(fitted, tmp_path / "m.gz", compress=True)
        manifest = read_manifest(tmp_path / "m.gz")
        assert manifest["encoding"] == "gzip"
        assert manifest["format_version"] == FORMAT_VERSION
        # sha / size describe the bytes on disk (integrity checks never
        # decompress)
        blob = (tmp_path / "m.gz" / MODEL_NAME).read_bytes()
        assert manifest["model_bytes"] == len(blob)
        import hashlib

        assert manifest["sha256"] == hashlib.sha256(blob).hexdigest()

    def test_corrupt_compressed_payload_refused(self, fitted, tmp_path):
        save_model(fitted, tmp_path / "m.gz", compress=True)
        manifest_path = tmp_path / "m.gz" / MANIFEST_NAME
        model_path = tmp_path / "m.gz" / MODEL_NAME
        # valid checksum over bytes that are not gzip
        import hashlib

        model_path.write_bytes(b"not gzip at all")
        manifest = json.loads(manifest_path.read_text())
        manifest["sha256"] = hashlib.sha256(b"not gzip at all").hexdigest()
        manifest["model_bytes"] = len(b"not gzip at all")
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="decompress"):
            load_model(tmp_path / "m.gz")

    def test_unknown_encoding_refused(self, fitted, tmp_path):
        save_model(fitted, tmp_path / "m.gz", compress=True)
        manifest_path = tmp_path / "m.gz" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["encoding"] = "zstd"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="unknown encoding"):
            load_model(tmp_path / "m.gz")

    def test_version_1_artifacts_still_load(self, fitted, tmp_path):
        save_model(fitted, tmp_path / "m.v1")
        manifest_path = tmp_path / "m.v1" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 1
        manifest_path.write_text(json.dumps(manifest))
        assert load_model(tmp_path / "m.v1").estimate(QUERY) == \
            fitted.estimate(QUERY)

    def test_compressed_ensemble_shards(self, toy_db, tmp_path):
        from repro.shard import ShardedFactorJoin, load_ensemble

        config = FactorJoinConfig(n_bins=4, table_estimator="truescan",
                                  seed=0)
        model = ShardedFactorJoin(config, n_shards=2,
                                  parallel="serial").fit(toy_db)
        model.save(tmp_path / "plain")
        model.save(tmp_path / "packed", compress=True)

        def shard_bytes(root):
            return sum(p.stat().st_size
                       for p in root.glob("shards/*/" + MODEL_NAME))

        assert shard_bytes(tmp_path / "packed") < shard_bytes(
            tmp_path / "plain")
        assert load_ensemble(tmp_path / "packed").estimate(QUERY) == \
            model.estimate(QUERY)

    def test_method_hooks(self, fitted, tmp_path):
        fitted.save(tmp_path / "m.fj")
        loaded = FactorJoin.load(tmp_path / "m.fj")
        assert loaded.estimate(QUERY) == fitted.estimate(QUERY)

    def test_load_verifies_expected_schema(self, fitted, tmp_path, toy_db):
        save_model(fitted, tmp_path / "m.fj")
        load_model(tmp_path / "m.fj", expected_schema=toy_db.schema)

    def test_loaded_model_still_updates(self, fitted, tmp_path, toy_db):
        save_model(fitted, tmp_path / "m.fj")
        loaded = load_model(tmp_path / "m.fj")
        loaded.update("C", toy_db.table("C").head(5))
        assert loaded.estimate(QUERY) > 0

    def test_save_unfitted_via_hook_raises(self, tmp_path):
        from repro.errors import NotFittedError
        with pytest.raises(NotFittedError):
            FactorJoin(FactorJoinConfig(n_bins=4)).save(tmp_path / "m.fj")


class TestManifest:
    def test_manifest_fields(self, fitted, tmp_path, toy_db):
        save_model(fitted, tmp_path / "m.fj", name="toy",
                   extra_metadata={"note": "test"})
        manifest = read_manifest(tmp_path / "m.fj")
        assert manifest["format_version"] == FORMAT_VERSION
        assert manifest["kind"].endswith("FactorJoin")
        assert manifest["name"] == "toy"
        assert manifest["schema_hash"] == schema_fingerprint(toy_db.schema)
        assert manifest["model_bytes"] == (
            tmp_path / "m.fj" / MODEL_NAME).stat().st_size
        assert manifest["config"]["n_bins"] == 4
        assert manifest["extra"] == {"note": "test"}

    def test_missing_artifact(self, tmp_path):
        with pytest.raises(ArtifactError, match="missing"):
            load_model(tmp_path / "nope")

    def test_future_format_version_rejected(self, fitted, tmp_path):
        path = save_model(fitted, tmp_path / "m.fj")
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="format version"):
            load_model(path)


class TestIntegrity:
    def test_corrupt_pickle_detected(self, fitted, tmp_path):
        path = save_model(fitted, tmp_path / "m.fj")
        blob = bytearray((path / MODEL_NAME).read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        (path / MODEL_NAME).write_bytes(bytes(blob))
        with pytest.raises(ArtifactError, match="integrity"):
            load_model(path)

    def test_schema_drift_detected(self, fitted, tmp_path, toy_db_nulls):
        # same schema object shape — build a genuinely different schema
        from repro.data import ColumnSchema, DatabaseSchema, DataType, \
            TableSchema
        other = DatabaseSchema(
            [TableSchema("X", [ColumnSchema("id", DataType.INT, True)])], [])
        path = save_model(fitted, tmp_path / "m.fj")
        with pytest.raises(ArtifactError, match="different schema"):
            load_model(path, expected_schema=other)

    def test_fingerprint_stable_under_data_growth(self, toy_db, toy_db_nulls):
        # fingerprints hash declarations, not rows
        assert schema_fingerprint(toy_db.schema) == schema_fingerprint(
            toy_db_nulls.schema)
