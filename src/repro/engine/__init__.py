"""Query execution substrate: filters, counted joins, true cardinalities."""

from repro.engine.filter import evaluate_predicate, filter_table
from repro.engine.executor import CardinalityExecutor
from repro.engine.relations import CountedRelation

__all__ = [
    "CardinalityExecutor",
    "CountedRelation",
    "evaluate_predicate",
    "filter_table",
]
