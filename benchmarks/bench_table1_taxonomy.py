"""Table 1: taxonomy of CardEst methods.

Each method class declares its techniques and qualitative properties
(`MethodCharacteristics`); this bench renders the table and checks the rows
the paper emphasizes.
"""

from dataclasses import fields

from repro.baselines import (
    FactorJoinMethod,
    FanoutDataDrivenMethod,
    JoinHistMethod,
    MSCNMethod,
    PessEstMethod,
    PostgresMethod,
    UBlockMethod,
    WJSampleMethod,
)
from repro.utils import format_table

METHODS = [PostgresMethod, JoinHistMethod, WJSampleMethod, MSCNMethod,
           FanoutDataDrivenMethod, PessEstMethod, UBlockMethod,
           FactorJoinMethod]


def render_table1() -> str:
    names = [m.name for m in METHODS]
    rows = []
    for f in fields(METHODS[0].characteristics):
        row = [f.name.replace("_", " ")]
        for m in METHODS:
            row.append("Y" if getattr(m.characteristics, f.name) else "-")
        rows.append(row)
    return format_table(["characteristic"] + names, rows,
                        title="Table 1: summary of CardEst methods")


def test_table1_taxonomy(benchmark):
    table = benchmark(render_table1)
    print()
    print(table)
    # the paper's claim: FactorJoin alone combines binning + bound +
    # learning without denormalizing or adding columns
    fj = FactorJoinMethod.characteristics
    assert fj.uses_binning and fj.uses_bound and fj.uses_machine_learning
    assert not fj.denormalizes_join_tables
    dd = FanoutDataDrivenMethod.characteristics
    assert dd.denormalizes_join_tables and dd.adds_extra_columns
    assert not dd.supports_cyclic_join
