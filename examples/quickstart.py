"""Quickstart: build a tiny database, train FactorJoin, estimate joins.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CardinalityExecutor,
    Column,
    ColumnSchema,
    Database,
    DatabaseSchema,
    DataType,
    FactorJoin,
    FactorJoinConfig,
    JoinRelation,
    Table,
    TableSchema,
    parse_query,
)


def build_database() -> Database:
    """Two tables: users and orders, orders.user_id -> users.id (skewed)."""
    rng = np.random.default_rng(7)
    n_users, n_orders = 1000, 20_000

    schema = DatabaseSchema(
        [
            TableSchema("users", [
                ColumnSchema("id", DataType.INT, is_key=True),
                ColumnSchema("age", DataType.INT),
                ColumnSchema("country", DataType.INT),
            ]),
            TableSchema("orders", [
                ColumnSchema("user_id", DataType.INT, is_key=True),
                ColumnSchema("amount", DataType.INT),
            ]),
        ],
        [JoinRelation("users", "id", "orders", "user_id")],
    )

    age = rng.integers(18, 80, n_users)
    users = Table("users", [
        Column("id", np.arange(n_users)),
        Column("age", age),
        Column("country", rng.integers(0, 20, n_users)),
    ])
    # Zipf-skewed purchasers: a few users place most orders
    user_id = np.minimum(rng.zipf(1.3, n_orders), n_users) - 1
    orders = Table("orders", [
        Column("user_id", user_id),
        Column("amount", rng.integers(1, 500, n_orders)),
    ])
    return Database(schema, [users, orders])


def main() -> None:
    db = build_database()

    # Offline phase: bin the join-key domains (GBSA), record per-bin MFV
    # statistics, train a Bayesian-network estimator per table.
    model = FactorJoin(FactorJoinConfig(n_bins=128,
                                        table_estimator="bayescard"))
    model.fit(db)
    print(f"trained in {model.fit_seconds * 1e3:.1f} ms, "
          f"model size {model.model_size_bytes() / 1024:.1f} KiB")

    executor = CardinalityExecutor(db)  # ground truth for comparison
    queries = [
        "SELECT COUNT(*) FROM users u, orders o WHERE u.id = o.user_id",
        "SELECT COUNT(*) FROM users u, orders o "
        "WHERE u.id = o.user_id AND u.age < 30",
        "SELECT COUNT(*) FROM users u, orders o "
        "WHERE u.id = o.user_id AND u.age < 30 AND o.amount > 250",
    ]
    print(f"\n{'query':>5} {'estimate':>12} {'true':>12} {'est/true':>9}")
    for i, sql in enumerate(queries):
        query = parse_query(sql)
        est = model.estimate(query)
        true = executor.cardinality(query)
        print(f"{i:>5} {est:>12.0f} {true:>12.0f} {est / true:>9.2f}")

    # Sub-plan estimation: what a query optimizer actually asks for.
    query = parse_query(queries[2])
    subplans = model.estimate_subplans(query)
    print(f"\nestimated {len(subplans)} sub-plans of query 2 progressively")


if __name__ == "__main__":
    main()
