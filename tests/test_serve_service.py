"""Tests for the EstimationService: caching, updates, hot-swap, concurrency."""

import threading

import pytest

from repro.core.estimator import FactorJoin, FactorJoinConfig
from repro.errors import ModelNotFoundError
from repro.serve import EstimationService
from repro.sql import parse_query

SQL = "SELECT COUNT(*) FROM A a, B b WHERE a.id = b.aid AND a.x > 1"


@pytest.fixture
def fitted(toy_db):
    return FactorJoin(FactorJoinConfig(n_bins=4)).fit(toy_db)


@pytest.fixture
def service(fitted):
    svc = EstimationService(cache_size=64)
    svc.register("default", fitted)
    return svc


class TestEstimate:
    def test_matches_direct_model_call(self, service, fitted):
        result = service.estimate(SQL)
        assert result.estimate == fitted.estimate(parse_query(SQL))
        assert result.model == "default"
        assert result.version == 1
        assert not result.cached
        assert result.seconds >= 0

    def test_repeat_is_cached_and_identical(self, service):
        first = service.estimate(SQL)
        second = service.estimate(SQL)
        assert second.cached and not first.cached
        assert second.estimate == first.estimate

    def test_accepts_parsed_queries(self, service):
        assert service.estimate(parse_query(SQL)).estimate > 0

    def test_single_model_is_implicit_default(self, fitted):
        svc = EstimationService()
        svc.register("toy", fitted)
        assert svc.estimate(SQL).model == "toy"

    def test_ambiguous_default_raises(self, fitted):
        svc = EstimationService()
        svc.register("a", fitted)
        svc.register("b", fitted)
        with pytest.raises(ModelNotFoundError):
            svc.estimate(SQL)
        assert svc.estimate(SQL, model="a").estimate > 0

    def test_estimate_many(self, service, fitted):
        other = "SELECT COUNT(*) FROM B b, C c WHERE b.cid = c.id"
        results = service.estimate_many([SQL, other, SQL])
        assert len(results) == 3
        assert results[2].cached
        assert results[0].estimate == results[2].estimate

    def test_estimate_subplans(self, service, fitted):
        got = service.estimate_subplans(SQL)
        want = fitted.estimate_subplans(parse_query(SQL))
        assert got == want
        # second call is served from cache (same object is fine here)
        assert service.estimate_subplans(SQL) == want
        assert service._cache_of("default").stats()["hits"] >= 1


class TestSubplanReuse:
    BIG = ("SELECT COUNT(*) FROM A a, B b, C c "
           "WHERE a.id = b.aid AND b.cid = c.id AND a.x > 1")
    # the {a, b} sub-plan of BIG, spelled with different aliases
    SMALL = "SELECT COUNT(*) FROM A q, B r WHERE q.id = r.aid AND q.x > 1"

    def test_plain_estimate_served_from_subplan_table(self, service,
                                                      fitted):
        service.estimate_subplans(self.BIG)
        result = service.estimate(self.SMALL)
        assert result.cached and result.cache_level == "subplan"
        direct = fitted.estimate(parse_query(self.SMALL))
        assert result.estimate == pytest.approx(direct, rel=1e-9)

    def test_subplan_hit_promotes_to_query_level(self, service):
        service.estimate_subplans(self.BIG)
        assert service.estimate(self.SMALL).cache_level == "subplan"
        assert service.estimate(self.SMALL).cache_level == "query"

    def test_plain_estimates_populate_subplan_table(self, service):
        """An isomorphic alias respelling of a served query hits the
        sub-plan table even though its query fingerprint differs."""
        computed = service.estimate(self.SMALL)
        respelled = service.estimate(
            "SELECT COUNT(*) FROM A x, B y WHERE x.id = y.aid AND x.x > 1")
        assert not computed.cached
        assert respelled.cache_level == "subplan"
        assert respelled.estimate == computed.estimate

    def test_subplan_map_assembled_from_table(self, service, fitted):
        """Once the table holds every sub-plan, estimate_subplans answers
        without calling the model at all."""
        service.estimate_subplans(self.BIG)
        calls = []
        original = fitted.estimate_subplans
        fitted.estimate_subplans = (
            lambda *a, **k: calls.append(a) or original(*a, **k))
        small_subplans = service.estimate_subplans(self.SMALL)
        fitted.estimate_subplans = original
        assert not calls
        want = original(parse_query(self.SMALL))
        assert set(small_subplans) == set(want)
        for subset, value in small_subplans.items():
            assert value == pytest.approx(want[subset], rel=1e-9), subset

    def test_reuse_disabled_skips_subplan_table(self, fitted):
        svc = EstimationService(cache_size=64, subplan_reuse=False)
        svc.register("default", fitted)
        svc.estimate_subplans(self.BIG)
        result = svc.estimate(self.SMALL)
        assert not result.cached and result.cache_level is None
        stats = svc._cache_of("default").stats()
        assert stats["subplan_size"] == 0
        assert stats["subplan_hits"] == 0 and stats["subplan_misses"] == 0

    def test_cache_level_in_describe(self, service):
        service.estimate_subplans(self.BIG)
        body = service.estimate(self.SMALL).describe()
        assert body["cache_level"] == "subplan" and body["cached"]
        assert service.estimate(self.SMALL).describe()[
            "cache_level"] == "query"

    def test_stats_report_both_levels(self, service):
        service.estimate_subplans(self.BIG)
        service.estimate(self.SMALL)
        cache_stats = service.stats()["caches"]["default"]
        assert cache_stats["subplan_hits"] >= 1
        assert cache_stats["subplan_size"] >= 5
        assert service.stats()["subplan_reuse"] is True


class TestUpdate:
    def test_update_invalidates_cache(self, service, toy_db):
        before = service.estimate(SQL)
        info = service.update("B", toy_db.table("B").head(30))
        after = service.estimate(SQL)
        assert info["rows"] == 30
        assert not after.cached
        # 30 extra B rows must raise the join estimate
        assert after.estimate > before.estimate

    def test_update_latency_recorded(self, service, toy_db):
        service.update("C", toy_db.table("C").head(3))
        assert service.update_latency.count == 1
        assert service.stats()["update_latency"]["count"] == 1

    def test_malformed_insert_rejected_before_mutation(self, service,
                                                       toy_db):
        """A column-set mismatch must fail up front — never half-apply."""
        from repro.data import Column, Table
        from repro.errors import DataError
        before = service.estimate(SQL).estimate
        bad = Table("B", [Column("aid", [1, 2])])  # missing cid, y
        with pytest.raises(DataError, match="exactly the columns"):
            service.update("B", bad)
        assert service.estimate(SQL).estimate == before

    def test_dtype_mismatch_rejected_before_mutation(self, service, toy_db):
        """Right columns, wrong dtype: the model's statistics must be
        untouched after the rejected insert (no half-applied update)."""
        import numpy as np
        from repro.data import Column, DataType, Table
        from repro.errors import DataError
        before = service.estimate(SQL).estimate
        bad = Table("B", [
            Column("aid", np.array([1.5, 2.5]), dtype=DataType.FLOAT),
            Column("cid", [1, 2]),
            Column("y", [0, 1]),
        ])
        with pytest.raises(DataError):
            service.update("B", bad)
        assert service.estimate(SQL).estimate == before

    def test_subplan_result_mutation_does_not_poison_cache(self, service):
        first = service.estimate_subplans(SQL)
        keys = set(first)
        first.clear()
        assert set(service.estimate_subplans(SQL)) == keys

    def test_insert_column_order_normalized(self, service, toy_db):
        from repro.data import Column, Table
        src = toy_db.table("B").head(4)
        shuffled = Table("B", [src["y"], src["aid"], src["cid"]])
        assert service.update("B", shuffled)["rows"] == 4

    def test_non_updatable_estimator_rejected_early(self, service):
        """A table estimator without update support fails cleanly, before
        any key statistics mutate."""
        from repro.estimators.base import BaseTableEstimator

        class Frozen(BaseTableEstimator):
            name = "frozen"

            def fit(self, *a, **k):
                return self

            def estimate_row_count(self, pred):
                return 0.0

            def key_distribution(self, column, pred):
                raise NotImplementedError

        model = service.registry.get("default")
        model._table_estimators["B"] = Frozen()
        with pytest.raises(NotImplementedError, match="cannot absorb"):
            service.update("B", None)


class TestHotSwap:
    def test_swap_invalidates_cache_and_bumps_version(self, service, toy_db):
        stale = service.estimate(SQL)
        assert service.estimate(SQL).cached
        refit = FactorJoin(FactorJoinConfig(n_bins=8)).fit(toy_db)
        service.register("default", refit)
        fresh = service.estimate(SQL)
        assert not fresh.cached
        assert fresh.version == 2
        assert fresh.estimate == refit.estimate(parse_query(SQL))
        assert stale.version == 1

    def test_stale_record_result_not_cached_after_swap(self, service,
                                                       toy_db):
        """A computation pinned to a pre-swap record (estimate_many does
        this deliberately) must not poison the cache for the new
        version."""
        old_record = service.registry.record("default")
        refit = FactorJoin(FactorJoinConfig(n_bins=8)).fit(toy_db)
        service.register("default", refit)
        stale = service._estimate_with(old_record, SQL)
        assert stale.version == 1                     # batch stays on v1
        fresh = service.estimate(SQL)
        assert fresh.version == 2
        assert not fresh.cached                       # v1's answer dropped
        assert fresh.estimate == refit.estimate(parse_query(SQL))

    def test_pinned_stale_record_never_serves_new_version_cache(
            self, service, toy_db):
        """A batch pinned to a swapped-out record must not return the new
        version's cached values labeled with the old version — at either
        cache level."""
        old_record = service.registry.record("default")
        refit = FactorJoin(FactorJoinConfig(n_bins=8)).fit(toy_db)
        service.register("default", refit)
        # new-version traffic repopulates both cache levels
        fresh = service.estimate(SQL)
        assert service.estimate(SQL).cached
        stale = service._estimate_with(old_record, SQL)
        assert stale.version == 1
        assert not stale.cached and stale.cache_level is None
        old_model = old_record.model
        assert stale.estimate == old_model.estimate(parse_query(SQL))
        assert fresh.estimate != stale.estimate

    def test_stats_shape(self, service):
        service.estimate(SQL)
        stats = service.stats()
        assert stats["models"][0]["name"] == "default"
        assert stats["estimate_latency"]["count"] == 1
        assert "default" in stats["caches"]
        assert stats["uptime_seconds"] >= 0


class TestConcurrency:
    def test_concurrent_estimates_with_updates(self, service, toy_db):
        """Readers keep getting positive finite answers while a writer
        applies incremental inserts and hot-swaps."""
        queries = [
            SQL,
            "SELECT COUNT(*) FROM B b, C c WHERE b.cid = c.id",
            "SELECT COUNT(*) FROM A a, B b, C c "
            "WHERE a.id = b.aid AND b.cid = c.id",
        ]
        errors = []
        done = threading.Event()

        def reader(sql):
            while not done.is_set():
                try:
                    result = service.estimate(sql)
                    if not result.estimate >= 0:
                        errors.append(result)
                except Exception as exc:  # noqa: BLE001 - recording
                    errors.append(exc)

        threads = [threading.Thread(target=reader, args=(q,))
                   for q in queries for _ in range(2)]
        for t in threads:
            t.start()
        try:
            for _ in range(5):
                service.update("B", toy_db.table("B").head(10))
            refit = FactorJoin(FactorJoinConfig(n_bins=4)).fit(toy_db)
            service.register("default", refit)
        finally:
            done.set()
            for t in threads:
                t.join()
        assert not errors
        assert service.latency.count > 0


class TestDeletes:
    def test_delete_through_service(self, toy_db):
        model = FactorJoin(FactorJoinConfig(
            n_bins=4, table_estimator="truescan")).fit(toy_db)
        svc = EstimationService()
        svc.register("default", model)
        before = svc.estimate(SQL).estimate
        batch = toy_db.table("B").head(25)
        svc.update("B", batch)
        mid = svc.estimate(SQL).estimate
        assert mid != before
        summary = svc.update("B", deleted_rows=batch)
        assert summary["deleted_rows"] == 25 and summary["rows"] == 0
        after = svc.estimate(SQL).estimate
        assert after == pytest.approx(before, rel=1e-9)

    def test_delete_invalidates_cache(self, toy_db):
        model = FactorJoin(FactorJoinConfig(
            n_bins=4, table_estimator="truescan")).fit(toy_db)
        svc = EstimationService()
        svc.register("default", model)
        svc.estimate(SQL)
        assert svc.estimate(SQL).cached
        svc.update("B", deleted_rows=toy_db.table("B").head(5))
        assert not svc.estimate(SQL).cached

    def test_unsupported_delete_rejected(self, service, toy_db):
        # the default fixture model uses bayescard, which cannot delete
        with pytest.raises(NotImplementedError, match="no delete"):
            service.update("B", deleted_rows=toy_db.table("B").head(2))

    def test_update_without_any_rows_rejected(self, service):
        from repro.errors import DataError

        with pytest.raises(DataError, match="new_rows and/or deleted"):
            service.update("B")


class TestSnapshots:
    def _exercised(self, svc):
        svc.estimate(SQL)
        svc.estimate_subplans("SELECT COUNT(*) FROM A a, B b, C c "
                              "WHERE a.id = b.aid AND b.cid = c.id")
        return svc

    def test_save_restore_round_trip(self, toy_db, tmp_path):
        model = FactorJoin(FactorJoinConfig(n_bins=4)).fit(toy_db)
        svc = EstimationService()
        svc.register("default", model)
        self._exercised(svc)
        path = tmp_path / "cache.snap"
        saved = svc.save_snapshot(path)
        assert saved["entries"] >= 2 and saved["subplans"] >= 1

        fresh = EstimationService()
        fresh.register("default", model)
        restored = fresh.restore_snapshot(path)
        assert restored["entries"] == saved["entries"]
        assert fresh.estimate(SQL).cached

    def test_restore_refused_for_different_model(self, toy_db, tmp_path):
        from repro.errors import ArtifactError

        model = FactorJoin(FactorJoinConfig(n_bins=4)).fit(toy_db)
        svc = EstimationService()
        svc.register("default", model)
        self._exercised(svc)
        path = tmp_path / "cache.snap"
        svc.save_snapshot(path)

        other = EstimationService()
        other.register("default",
                       FactorJoin(FactorJoinConfig(n_bins=8)).fit(toy_db))
        with pytest.raises(ArtifactError, match="refusing"):
            other.restore_snapshot(path)

    def test_update_changes_fingerprint(self, toy_db, tmp_path):
        """A snapshot saved pre-update must not restore post-update."""
        from repro.errors import ArtifactError

        model = FactorJoin(FactorJoinConfig(
            n_bins=4, table_estimator="truescan")).fit(toy_db)
        svc = EstimationService()
        svc.register("default", model,
                     metadata={"fingerprint": "artifact-sha"})
        self._exercised(svc)
        path = tmp_path / "cache.snap"
        svc.save_snapshot(path)
        svc.update("B", toy_db.table("B").head(3))
        # the artifact fingerprint was dropped by the update; the content
        # hash of the mutated model no longer matches the stamp
        with pytest.raises(ArtifactError, match="refusing"):
            svc.restore_snapshot(path)


class TestEnsembleConcurrency:
    """Satellite: parallel estimates against a served ShardedFactorJoin
    racing a per-shard update must never mix pre/post-update shard stats
    in one answer (extends the stamped-put race coverage)."""

    def _sharded_service(self, toy_db):
        from repro.shard import ShardedFactorJoin

        model = ShardedFactorJoin(
            FactorJoinConfig(n_bins=4, table_estimator="truescan"),
            n_shards=4, parallel="serial").fit(toy_db)
        svc = EstimationService(cache_size=64)
        svc.register("default", model)
        return svc, model

    def test_served_answers_are_pre_or_post_update(self, toy_db):
        svc, model = self._sharded_service(toy_db)
        query = parse_query(SQL)
        before = model.estimate(query)
        batch = toy_db.table("B").head(40)
        observed, errors = [], []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    observed.append(svc.estimate(SQL).estimate)
                except Exception as exc:  # noqa: BLE001 - recording
                    errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(3):
                svc.update("B", batch)
                svc.update("B", deleted_rows=batch)
        finally:
            stop.set()
            for t in threads:
                t.join()
        after = model.estimate(query)
        assert not errors
        assert after == pytest.approx(before, rel=1e-9)
        mid_model = None  # the transient post-insert value
        import copy as _copy

        probe = _copy.deepcopy(model)
        probe.update("B", batch)
        mid_model = probe.estimate(query)
        allowed = {before, after, mid_model}
        unexpected = [v for v in observed if v not in allowed]
        assert not unexpected, f"mixed-state answers: {unexpected[:5]}"

    def test_stamped_put_drops_raced_ensemble_entry(self, toy_db):
        """A cache put computed against the pre-update ensemble must not
        land after the update invalidated the cache."""
        svc, model = self._sharded_service(toy_db)
        cache = svc._cache_of("default")
        from repro.serve.cache import query_fingerprint

        query = parse_query(SQL)
        key = query_fingerprint(query)
        stamp = cache.invalidations
        stale_value = model.estimate(query)
        svc.update("B", toy_db.table("B").head(10))
        cache.put(key, stale_value, stamp=stamp)  # must be dropped
        assert cache.get(key) is None
