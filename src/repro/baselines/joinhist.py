"""JoinHist: the classical join-histogram method (paper [7, 26, 29]).

Reuses FactorJoin's machinery with the two classical simplifying
assumptions restored: per-bin *join uniformity* (the distinct-value formula
instead of the bound) and *attribute independence* (1-D histogram single
table estimator instead of a learned model).  The paper's Table 8 rows are
exactly the four combinations of these two switches.

As in the paper (Section 6.1), cyclic and self joins are rejected — the
classical construction assumes a tree of histogram multiplications.
"""

from __future__ import annotations

from repro.baselines.base import CardEstMethod, MethodCharacteristics
from repro.core.estimator import FactorJoin, FactorJoinConfig
from repro.data.database import Database
from repro.errors import UnsupportedQueryError
from repro.sql.query import Query


class JoinHistMethod(CardEstMethod):
    """JoinHist plus the two FactorJoin switches for the Table 8 ablation."""

    name = "JoinHist"
    characteristics = MethodCharacteristics(
        uses_binning=True, efficient=True, small_model_size=True,
        fast_training=True, scalable_with_joins=True,
        generalizes_to_new_queries=True)

    def __init__(self, n_bins: int = 100, with_bound: bool = False,
                 with_conditional: bool = False, seed: int = 0):
        super().__init__()
        self.with_bound = with_bound
        self.with_conditional = with_conditional
        if with_bound and with_conditional:
            self.name = "JoinHist+Both"
        elif with_bound:
            self.name = "JoinHist+Bound"
        elif with_conditional:
            self.name = "JoinHist+Conditional"
        self._config = FactorJoinConfig(
            n_bins=n_bins,
            binning="equal_depth",
            bound_mode="bound" if with_bound else "uniform",
            table_estimator="bayescard" if with_conditional else "histogram1d",
            seed=seed,
        )

    def _fit(self, database: Database, workload=None) -> None:
        self.model = FactorJoin(self._config).fit(database)

    def check_supported(self, query: Query) -> None:
        if query.is_cyclic() or query.has_self_join():
            raise UnsupportedQueryError(
                f"{self.name} supports only tree join templates")

    def estimate(self, query: Query) -> float:
        self.check_supported(query)
        return self.model.estimate(query)

    def estimate_subplans(self, query: Query,
                          min_tables: int = 1) -> dict[frozenset, float]:
        self.check_supported(query)
        return self.model.estimate_subplans(query, min_tables=min_tables)

    def open_session(self, query: Query):
        """The wrapped model's prepared session (tree templates only)."""
        self.check_supported(query)
        return self.model.open_session(query)

    def model_size_bytes(self) -> int:
        return self.model.model_size_bytes()
