"""Cache warming: record a workload, warm a fresh process, compare latency.

The serving cache has two levels — exact query fingerprints and a
cross-request *sub-plan table* keyed on canonical, alias-invariant
sub-plan fingerprints.  This walkthrough shows the operational loop that
exploits it:

1. serve traffic on process #1 while **recording** the workload to JSONL;
2. start a "fresh process" (new service, same artifact) — the cold
   reality every restart faces;
3. **warm** it by replaying the recorded workload into both cache levels
   before admitting traffic;
4. serve overlapping traffic (sub-plans of the recorded queries, spelled
   with different aliases) cold vs warm and print the latency difference.

Run:  python examples/cache_warming.py
"""

import tempfile
import time
from pathlib import Path

from repro import FactorJoin, FactorJoinConfig, parse_query
from repro.serve import EstimationService, load_model, warm_service
from repro.serve.warmup import load_workload

from quickstart import build_database


def overlapping_queries(recorded_sql: list[str]) -> list:
    """Sub-plans of the recorded queries, respelled with fresh aliases —
    the overlapping traffic an optimizer (or a dashboard variant)
    generates."""
    targets, seen = [], set()
    for sql in recorded_sql:
        query = parse_query(sql)
        for subset in query.connected_subsets(min_tables=2):
            sub = query.subquery(subset)
            key = sub.subplan_key()
            if key not in seen:
                seen.add(key)
                targets.append(sub)
    return targets


def timed(service, queries) -> tuple[list[float], list[float]]:
    latencies, answers = [], []
    for query in queries:
        start = time.perf_counter()
        answers.append(service.estimate(query).estimate)
        latencies.append(time.perf_counter() - start)
    return latencies, answers


def main() -> None:
    db = build_database()
    workdir = Path(tempfile.mkdtemp(prefix="repro-warming-"))
    artifact = workdir / "orders.fj"
    workload_log = workdir / "workload.jsonl"

    # -- 1. process #1: serve and record --------------------------------------
    model = FactorJoin(FactorJoinConfig(n_bins=128,
                                        table_estimator="bayescard"))
    model.fit(db)
    model.save(artifact)
    recording = EstimationService()
    recording.register("orders", load_model(artifact))
    recording.start_recording(workload_log)
    traffic = [
        "SELECT COUNT(*) FROM users u, orders o "
        "WHERE u.id = o.user_id AND u.age < 30",
        "SELECT COUNT(*) FROM users u, orders o "
        "WHERE u.id = o.user_id AND o.amount > 250",
        "SELECT COUNT(*) FROM users u, orders o WHERE u.id = o.user_id",
    ]
    for sql in traffic:
        # sub-plan requests warm richest: one entry per connected sub-plan
        recording.estimate_subplans(sql)
    recorded = recording.stop_recording()
    print(f"process #1 served {len(traffic)} queries, recorded {recorded} "
          f"workload entries to {workload_log.name}")

    # -- 2 + 3. a fresh process: cold vs warmed -------------------------------
    targets = overlapping_queries(traffic)

    cold = EstimationService()
    cold.register("orders", load_model(artifact))
    cold_lat, cold_answers = timed(cold, targets)

    warmed = EstimationService()
    warmed.register("orders", load_model(artifact))
    summary = warm_service(warmed, load_workload(workload_log))
    print(f"warmed {summary['entries']} entries in "
          f"{summary['seconds'] * 1e3:.1f} ms -> "
          f"{summary['caches']['orders']['subplan_size']} sub-plan entries")

    # -- 4. before/after on overlapping traffic -------------------------------
    warm_lat, warm_answers = timed(warmed, targets)
    assert warm_answers == cold_answers  # reuse never changes an answer

    print(f"\n{len(targets)} overlapping queries (sub-plans of the "
          f"recorded workload):")
    print(f"  cold (empty caches):   "
          f"{sum(cold_lat) / len(cold_lat) * 1e3:8.3f} ms/query")
    print(f"  warm (replayed log):   "
          f"{sum(warm_lat) / len(warm_lat) * 1e3:8.3f} ms/query")
    print(f"  speedup:               "
          f"{sum(cold_lat) / sum(warm_lat):8.1f}x")
    stats = warmed.stats()["caches"]["orders"]
    print(f"  warm cache stats:      {stats['subplan_hits']} sub-plan hits, "
          f"{stats['hits']} query-level hits")


if __name__ == "__main__":
    main()
