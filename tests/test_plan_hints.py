"""Hint round-trip properties and strict-parser rejection tests.

``parse_hints(render_hints(h, dialect))`` must be the identity for both
dialects over arbitrary join trees and cardinality sets (hypothesis),
and malformed hint text must raise ``ParseError`` rather than being
guessed at.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.optimizer.plans import JoinPlan
from repro.plan import (
    HINT_DIALECTS,
    PlanHints,
    hints_of,
    parse_hints,
    render_hints,
)

ALIASES = ("a", "b", "c", "d", "e", "t0", "t1", "users", "posts_x")


@st.composite
def leading_tree(draw):
    """A random join tree (nested pairs) over 1..6 distinct aliases."""
    count = draw(st.integers(1, 6))
    pool = list(draw(st.permutations(ALIASES))[:count])
    nodes = list(pool)
    while len(nodes) > 1:
        i = draw(st.integers(0, len(nodes) - 2))
        right = nodes.pop(i + 1)
        nodes[i] = (nodes[i], right)
    return nodes[0]


def tree_leaves(tree):
    if isinstance(tree, str):
        return [tree]
    return tree_leaves(tree[0]) + tree_leaves(tree[1])


@st.composite
def plan_hints(draw):
    tree = draw(leading_tree())
    leaves = tree_leaves(tree)
    rows = []
    if len(leaves) >= 2:
        n_rows = draw(st.integers(0, 4))
        seen = set()
        for _ in range(n_rows):
            size = draw(st.integers(2, len(leaves)))
            subset = tuple(sorted(draw(st.permutations(leaves))[:size]))
            if subset in seen:
                continue
            seen.add(subset)
            value = draw(st.one_of(
                st.integers(0, 10**12).map(float),
                st.floats(min_value=0.0, max_value=1e18,
                          allow_nan=False, allow_infinity=False)))
            rows.append((subset, value))
    return PlanHints(leading=tree, rows=tuple(rows))


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(hints=plan_hints(), dialect=st.sampled_from(HINT_DIALECTS))
    def test_parse_render_is_lossless(self, hints, dialect):
        text = render_hints(hints, dialect)
        assert parse_hints(text, dialect) == hints
        # dialect auto-detection must reach the same result
        assert parse_hints(text) == hints

    @settings(max_examples=100, deadline=None)
    @given(hints=plan_hints())
    def test_rendering_is_canonical(self, hints):
        """Equal hints render to bit-identical text in both dialects."""
        for dialect in HINT_DIALECTS:
            text = render_hints(hints, dialect)
            assert render_hints(parse_hints(text, dialect),
                                dialect) == text

    @settings(max_examples=100, deadline=None)
    @given(hints=plan_hints())
    def test_plan_reconstruction(self, hints):
        plan = hints.plan()
        assert isinstance(plan, JoinPlan)
        assert list(plan.leaves()) == list(hints.aliases)

    def test_float_precision_survives(self):
        value = 12345.678901234567  # needs all 17 significant digits
        hints = PlanHints(leading=("a", "b"),
                          rows=(((("a", "b")), value),))
        for dialect in HINT_DIALECTS:
            parsed = parse_hints(render_hints(hints, dialect), dialect)
            assert parsed.rows[0][1] == value


class TestHintsOf:
    def test_only_plan_subsets_injected(self):
        plan = JoinPlan.join(
            JoinPlan.join(JoinPlan.leaf("a"), JoinPlan.leaf("b")),
            JoinPlan.leaf("c"))
        cards = {
            frozenset(["a"]): 5.0,              # singleton: scan, not a join
            frozenset(["a", "b"]): 10.0,
            frozenset(["b", "c"]): 20.0,        # alternative order: injected
            frozenset(["a", "b", "c"]): 30.0,
            frozenset(["a", "z"]): 99.0,        # outside the plan: dropped
        }
        hints = hints_of(plan, cards)
        assert hints.cardinalities() == {
            frozenset(["a", "b"]): 10.0,
            frozenset(["b", "c"]): 20.0,
            frozenset(["a", "b", "c"]): 30.0,
        }

    def test_rows_sorted_canonically(self):
        plan = JoinPlan.join(
            JoinPlan.join(JoinPlan.leaf("c"), JoinPlan.leaf("b")),
            JoinPlan.leaf("a"))
        cards = {frozenset(["a", "b", "c"]): 3.0,
                 frozenset(["b", "c"]): 2.0}
        hints = hints_of(plan, cards)
        assert [r[0] for r in hints.rows] == [("b", "c"), ("a", "b", "c")]


class TestRejection:
    @pytest.mark.parametrize("text", [
        "",
        "   ",
        "Leading((a b))",                      # no comment markers
        "/*+ Leading((a b)) */ trailing",      # text after the block
        "/*+ */",                              # no Leading at all
        "/*+ Rows(a b #5) */",                 # Rows without Leading
        "/*+ Leading((a b)) Leading((b a)) */",
        "/*+ Leading((a b) */",                # unbalanced parens
        "/*+ Leading((a b c)) */",             # 3-ary pair
        "/*+ Leading((a a)) */",               # repeated alias
        "/*+ Leading((a b)) Rows(a b 5) */",   # missing '#'
        "/*+ Leading((a b)) Rows(a b #x) */",  # non-numeric count
        "/*+ Leading((a b)) Rows(a #5) */",    # single-alias Rows
        "/*+ Leading((a b)) Rows(a c #5) */",  # alias outside Leading
        "/*+ Leading((a b)) Rows(a b #5) Rows(b a #6) */",  # dup subset
        "/*+ Leading((a b)) Rows(a b #inf) */",  # non-finite count
        "/*+ Leading((a b)) Rows(a b #-3) */",   # negative count
        "/*+ Hash(a b) */",                    # unsupported hint
        "/*+ Leading((1a b)) */",              # invalid alias token
    ])
    def test_malformed_pg_hints_raise(self, text):
        with pytest.raises(ParseError):
            parse_hints(text, "pg_hint_plan")

    @pytest.mark.parametrize("text", [
        "not json",
        "[]",
        '{"leading": ["a", "b"]}',               # missing dialect
        '{"dialect": "json"}',                   # missing leading
        '{"dialect": "json", "leading": ["a", "b", "c"]}',
        '{"dialect": "json", "leading": ["a", "b"], "rows": [{}]}',
        '{"dialect": "json", "leading": ["a", "b"], '
        '"rows": [{"aliases": ["a", "b"], "rows": true}]}',
        '{"dialect": "json", "leading": ["a", "b"], '
        '"rows": [{"aliases": [], "rows": 5}]}',
        '{"dialect": "json", "leading": ["a", "b"], "extra": 1}',
        '{"dialect": "pg_hint_plan", "leading": ["a", "b"]}',
    ])
    def test_malformed_json_hints_raise(self, text):
        with pytest.raises(ParseError):
            parse_hints(text, "json")

    def test_unknown_dialect_raises(self):
        hints = PlanHints(leading="a")
        with pytest.raises(ValueError):
            render_hints(hints, "oracle")
        with pytest.raises(ValueError):
            parse_hints("/*+ Leading(a) */", "oracle")

    def test_undetectable_dialect_raises(self):
        with pytest.raises(ParseError):
            parse_hints("Leading((a b))")

    def test_constructor_validates(self):
        with pytest.raises(ParseError):
            PlanHints(leading=("a", "a"))
        with pytest.raises(ParseError):
            PlanHints(leading=("a", "b"),
                      rows=((("a", "b"), float("nan")),))
        with pytest.raises(ParseError):
            PlanHints(leading=("a", "b"), rows=((("a",), 5.0),))
        with pytest.raises(ParseError):
            PlanHints(leading=("a", "b"), rows=((("a", "c"), 5.0),))

    def test_nan_never_renders(self):
        # constructor rejects NaN, so no rendered text can carry one
        assert math.isnan(float("nan"))  # sanity on the guard itself
        with pytest.raises(ParseError):
            PlanHints(leading=("a", "b"),
                      rows=((("a", "b"), float("inf")),))
