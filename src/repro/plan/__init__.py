"""``repro.plan`` — the estimator as an optimizer's estimator.

The subsystem that turns cardinality numbers into *plans*, reproducing
the paper's end-to-end methodology (Section 6) with in-repo machinery:

- :mod:`repro.plan.generator` — :class:`CardinalityGenerator` backends
  (in-process model/service, or a remote server over ``/v1/subplans``)
  answering per-join-subset probes with a canonical
  ``subplan_key``-keyed memo;
- :mod:`repro.plan.hints` — join order + injected cardinalities as
  round-trippable hint text (pg_hint_plan and JSON dialects);
- :mod:`repro.plan.planner` — :func:`plan_query`: generator → DP
  optimizer → :class:`PlanDecision` (plan, cost, cards, hints);
- :mod:`repro.plan.harness` — :class:`PlanHarness`: replay a workload,
  plan under estimates vs. the truecard oracle, cost both under truth,
  report P-error / agreement / worst regressions;
- :mod:`repro.plan.messages` — the typed ``POST /v1/plan``
  request/response pair.
"""

from repro.plan.generator import (
    CardinalityGenerator,
    GeneratorError,
    LocalCardinalityGenerator,
    RemoteCardinalityGenerator,
)
from repro.plan.harness import PlanHarness, PlanQualityReport, PlanVerdict
from repro.plan.hints import (
    HINT_DIALECTS,
    PlanHints,
    hints_of,
    leading_as_json,
    parse_hints,
    render_hints,
)
from repro.plan.messages import PlanRequest, PlanResponse
from repro.plan.planner import PlanDecision, plan_query

__all__ = [
    "CardinalityGenerator",
    "GeneratorError",
    "HINT_DIALECTS",
    "LocalCardinalityGenerator",
    "PlanDecision",
    "PlanHarness",
    "PlanHints",
    "PlanQualityReport",
    "PlanRequest",
    "PlanResponse",
    "PlanVerdict",
    "RemoteCardinalityGenerator",
    "hints_of",
    "leading_as_json",
    "parse_hints",
    "plan_query",
    "render_hints",
]
