"""Drift detection: accuracy attribution and change-point scoring.

``repro_qerror`` / ``repro_shard_qerror`` record *that* accuracy moved;
this module answers *where* and *when*.  A :class:`DriftMonitor` absorbs
every feedback sample (q-error, and P-error when plan costs ride along)
and attributes it along four scopes at once:

- ``model`` — the served model as a whole;
- ``shard`` — every shard the estimate read (the service's
  ``_touched_shards`` pruning introspection), so a drifted partition is
  named, not inferred;
- ``table`` — every base table the query touches, the unit an
  update-driven shift actually lands on;
- ``template`` — the canonical join-graph fingerprint
  (:func:`template_of`), so a workload-shape regression separates from
  a data regression.

Each attribution key runs a Page-Hinkley change detector over the log
of the error stream (q-error is a ratio; drift is multiplicative) plus
rolling time-bucketed windows for recency: the detector says *that* the
mean shifted and roughly when, the windows say by *how much* lately.
Detector state is keyed by the **sample's own timestamp**
(:attr:`DriftSample.at`), stamped once by the absorbing service — so a
sample forwarded to a shard worker lands in exactly the bucket it would
have landed in locally, which is what makes the federated cluster view
bit-identical to in-process monitoring.

Snapshots (:meth:`DriftMonitor.snapshot`) are plain picklable dicts and
:func:`merge_drift_snapshot` folds them associatively; the cluster
routing keeps attribution keys disjoint across processes (workers hold
only their own shards' keys), so merging is lossless.
:class:`DriftFederator` mirrors :class:`~repro.obs.federate.
MetricsFederator`: per-worker state, restart-safe baseline folding by
pool-slot generation, stale-but-present semantics for unreachable
workers.  The clock is injectable throughout so tests (and the
detection-latency bench) drive windows deterministically.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, replace

from repro.obs.slo import BUCKET_SECONDS, DEFAULT_WINDOWS

#: Attribution scopes a sample fans out into (see module docstring).
SCOPES = ("model", "shard", "table", "template")

#: Page-Hinkley score at which a key is called drifting; ``critical``
#: is this times :data:`CRITICAL_FACTOR`.  The score accumulates
#: roughly ``log(shift) - delta`` per post-shift sample, so a 3x error
#: inflation crosses the default within a handful of samples while a
#: stable stream's score hovers near zero.
DRIFT_THRESHOLD = 8.0
CRITICAL_FACTOR = 2.0

#: Page-Hinkley drift tolerance: per-sample slack subtracted from the
#: deviation, absorbing benign noise around the stream mean.
PH_DELTA = 0.1

#: Keys report ``stable`` until they have seen this many samples — a
#: lone terrible estimate is an offender, not a trend.
MIN_SAMPLES = 8

#: Distinct attribution keys tracked per scope before new keys collapse
#: into the ``__overflow__`` key (per-template keys are workload-shaped
#: and unbounded; the monitor, like the metrics registry, must not be).
MAX_KEYS_PER_SCOPE = 256

#: The collapsed attribution key absorbing past-cap arrivals.
OVERFLOW_KEY = "__overflow__"


@dataclass(frozen=True)
class DriftSample:
    """One feedback observation, ready to attribute (and to pickle).

    ``at`` is the absorbing service's clock stamp; bucketing uses it
    rather than the local clock, so forwarding a sample to a shard
    worker never moves it between windows.
    """

    model: str
    metric: str
    value: float
    at: float
    shards: tuple = ()
    tables: tuple = ()
    template: str = ""


def template_of(query) -> str:
    """The canonical join-graph fingerprint of ``query``: sorted base
    tables plus alias-invariant join edges.

    Two alias spellings of the same join shape share one fingerprint;
    filters are deliberately excluded — the template scope groups by
    workload *shape* so a drifting join template separates from a
    drifting predicate (which the table scope catches).
    """
    tables = ",".join(sorted(t.table for t in query.tables))
    edges = sorted(
        tuple(sorted(((query.table_of(j.left.alias), j.left.column),
                      (query.table_of(j.right.alias), j.right.column))))
        for j in query.joins)
    joined = ";".join(f"{lt}.{lc}={rt}.{rc}"
                      for (lt, lc), (rt, rc) in edges)
    return f"{tables}|{joined}" if joined else tables


class _KeyState:
    """One attribution key's detector + window state.

    ``buckets`` maps time bucket → ``[count, total_log]``; the
    Page-Hinkley variables (``n``, ``mean``, ``mhat``, ``mmin``) run
    over the log-error stream; ``onset`` is the sample stamp at which
    the score first crossed the drift threshold (None while stable).
    """

    __slots__ = ("buckets", "n", "mean", "mhat", "mmin", "onset")

    def __init__(self):
        self.buckets: dict[int, list] = {}
        self.n = 0
        self.mean = 0.0
        self.mhat = 0.0
        self.mmin = 0.0
        self.onset: float | None = None

    def score(self) -> float:
        return self.mhat - self.mmin

    def as_tuple(self) -> tuple:
        return ({bucket: tuple(cell)
                 for bucket, cell in self.buckets.items()},
                self.n, self.mean, self.mhat, self.mmin, self.onset)

    @classmethod
    def from_tuple(cls, state: tuple) -> "_KeyState":
        out = cls()
        buckets, out.n, out.mean, out.mhat, out.mmin, out.onset = state
        out.buckets = {bucket: list(cell)
                       for bucket, cell in buckets.items()}
        return out


def empty_drift_snapshot() -> dict:
    """A zero-valued accumulator for :func:`merge_drift_snapshot`."""
    return {"keys": {}, "dropped_keys": 0}


def merge_drift_snapshot(acc: dict, snapshot: dict) -> dict:
    """Fold ``snapshot`` into accumulator ``acc`` (returned) without
    mutating ``snapshot``.

    Window buckets sum and detector state folds linearly (counts and
    cumulative deviations add, means weight by sample count, onsets take
    the earliest).  The fold is associative and commutative; it is
    additionally **lossless** whenever the two snapshots' key sets are
    disjoint — which the cluster routing guarantees, since every shard's
    keys live on exactly one worker and the driver keeps the other
    scopes to itself.
    """
    keys = acc["keys"]
    for key, state in snapshot["keys"].items():
        have = keys.get(key)
        if have is None:
            buckets, n, mean, mhat, mmin, onset = state
            keys[key] = ({bucket: tuple(cell)
                          for bucket, cell in buckets.items()},
                         n, mean, mhat, mmin, onset)
            continue
        buckets = {bucket: tuple(cell)
                   for bucket, cell in have[0].items()}
        for bucket, (count, total) in state[0].items():
            prev = buckets.get(bucket, (0, 0.0))
            buckets[bucket] = (prev[0] + count, prev[1] + total)
        n = have[1] + state[1]
        mean = ((have[1] * have[2] + state[1] * state[2]) / n
                if n else 0.0)
        onsets = [o for o in (have[5], state[5]) if o is not None]
        keys[key] = (buckets, n, mean, have[3] + state[3],
                     have[4] + state[4],
                     min(onsets) if onsets else None)
    acc["dropped_keys"] += snapshot.get("dropped_keys", 0)
    return acc


#: Drift-key status levels in escalation order (gauge values 0/1/2).
STATUSES = ("stable", "drifting", "critical")


class DriftReport:
    """A point-in-time drift assessment: one entry per attribution key,
    worst first, plus per-status counts and the top offenders.

    Built by :meth:`DriftMonitor.report` (optionally over federated
    worker snapshots); :meth:`to_json` is the ``GET /v1/drift`` body and
    :meth:`families` the ``repro_drift_*`` metric families.
    """

    def __init__(self, entries: list[dict], dropped_keys: int = 0,
                 top: int = 10):
        self.entries = sorted(
            entries, key=lambda e: (-e["score"], e["scope"], e["key"]))
        self.dropped_keys = dropped_keys
        self._top = top

    @property
    def counts(self) -> dict:
        """Entries per status (``stable`` / ``drifting`` / ``critical``)."""
        counts = {status: 0 for status in STATUSES}
        for entry in self.entries:
            counts[entry["status"]] += 1
        return counts

    def top(self, n: int | None = None) -> list[dict]:
        """The ``n`` worst-scoring non-stable keys (all scopes)."""
        n = self._top if n is None else n
        return [e for e in self.entries
                if e["status"] != "stable"][:n]

    def max_score(self) -> float:
        """The worst Page-Hinkley score across every key (0 when empty)."""
        return max((e["score"] for e in self.entries), default=0.0)

    def to_json(self) -> dict:
        """JSON-ready report: status counts, top offenders, every key."""
        return {
            "counts": self.counts,
            "samples": sum(e["samples"] for e in self.entries),
            "dropped_keys": self.dropped_keys,
            "top": self.top(),
            "keys": self.entries,
        }

    def families(self) -> list[tuple[str, str, str, list]]:
        """``repro_drift_*`` families for the metrics collector hook."""
        if not self.entries:
            return []
        labels_of = [({"model": e["model"], "scope": e["scope"],
                       "key": e["key"], "metric": e["metric"]}, e)
                     for e in self.entries]
        families = [
            ("gauge", "repro_drift_score",
             "Page-Hinkley drift score per attribution key "
             "(model/shard/table/template scopes).",
             [(labels, e["score"]) for labels, e in labels_of]),
            ("gauge", "repro_drift_state",
             "Drift status per attribution key "
             "(0 stable, 1 drifting, 2 critical).",
             [(labels, float(STATUSES.index(e["status"])))
              for labels, e in labels_of]),
            ("counter", "repro_drift_samples_total",
             "Feedback samples attributed to each drift key.",
             [(labels, float(e["samples"])) for labels, e in labels_of]),
        ]
        if self.dropped_keys:
            families.append((
                "counter", "repro_drift_dropped_keys_total",
                "Attribution keys collapsed into __overflow__ past the "
                "per-scope cap.", [({}, float(self.dropped_keys))]))
        return families


class DriftMonitor:
    """Rolling, attributed drift detection over the feedback stream.

    ``clock`` defaults to ``time.monotonic`` and is injectable (it
    stamps samples and ages onsets; bucket math uses the stamps, never
    the wall clock directly).  ``windows`` / ``bucket_seconds`` follow
    :mod:`repro.obs.slo`; the shortest window is the "recent" view
    magnitudes are computed from.
    """

    enabled = True

    def __init__(self, windows=DEFAULT_WINDOWS,
                 bucket_seconds: float = BUCKET_SECONDS, clock=None,
                 threshold: float = DRIFT_THRESHOLD,
                 critical_factor: float = CRITICAL_FACTOR,
                 delta: float = PH_DELTA,
                 min_samples: int = MIN_SAMPLES,
                 max_keys: int = MAX_KEYS_PER_SCOPE):
        self.windows = tuple(windows)
        self._bucket_seconds = float(bucket_seconds)
        self._horizon_buckets = int(
            max(width for _label, width in self.windows)
            / self._bucket_seconds) + 1
        self._clock = clock if clock is not None else time.monotonic
        self.threshold = float(threshold)
        self.critical_factor = float(critical_factor)
        self.delta = float(delta)
        self.min_samples = int(min_samples)
        self.max_keys = int(max_keys)
        self._lock = threading.Lock()
        self._keys: dict[tuple, _KeyState] = {}
        self._scope_counts: dict[str, int] = {}
        self._dropped_keys = 0

    def now(self) -> float:
        """The monitor's clock — what callers stamp samples with."""
        return self._clock()

    def sample_of(self, model: str, metric: str, value: float,
                  shards=(), tables=(), template: str = ""
                  ) -> DriftSample:
        """A :class:`DriftSample` stamped with this monitor's clock."""
        return DriftSample(model=model, metric=metric,
                           value=float(value), at=self.now(),
                           shards=tuple(shards), tables=tuple(tables),
                           template=template)

    # -- absorption ------------------------------------------------------------

    def _keys_of(self, sample: DriftSample, scopes) -> list[tuple]:
        keys = []
        for scope in scopes:
            if scope == "model":
                keys.append(("model", sample.model, "", sample.metric))
            elif scope == "shard":
                keys.extend(("shard", sample.model, str(shard),
                             sample.metric) for shard in sample.shards)
            elif scope == "table":
                keys.extend(("table", sample.model, table, sample.metric)
                            for table in sample.tables)
            elif scope == "template" and sample.template:
                keys.append(("template", sample.model, sample.template,
                             sample.metric))
        return keys

    def _state_of(self, key: tuple) -> _KeyState:
        """The key's state, creating it under the per-scope cap (past
        the cap, arrivals collapse into the scope's overflow key)."""
        state = self._keys.get(key)
        if state is not None:
            return state
        scope = key[0]
        if self._scope_counts.get(scope, 0) >= self.max_keys:
            self._dropped_keys += 1
            key = (scope, key[1], OVERFLOW_KEY, key[3])
            state = self._keys.get(key)
            if state is not None:
                return state
        state = self._keys[key] = _KeyState()
        self._scope_counts[scope] = self._scope_counts.get(scope, 0) + 1
        return state

    def absorb(self, sample: DriftSample, scopes=SCOPES) -> None:
        """Attribute one sample along ``scopes`` and advance each key's
        windows and change detector.

        The cluster path restricts ``scopes`` to ``("shard",)`` on the
        worker side — the driver keeps the model/table/template scopes
        itself — so no attribution key is ever fed from two processes.
        """
        x = math.log(max(float(sample.value), 1e-300))
        bucket = int(sample.at / self._bucket_seconds)
        with self._lock:
            for key in self._keys_of(sample, scopes):
                state = self._state_of(key)
                cell = state.buckets.get(bucket)
                if cell is None:
                    cell = state.buckets[bucket] = [0, 0.0]
                    self._prune(state, bucket)
                cell[0] += 1
                cell[1] += x
                state.n += 1
                state.mean += (x - state.mean) / state.n
                state.mhat += x - state.mean - self.delta
                if state.mhat < state.mmin:
                    state.mmin = state.mhat
                if state.n >= self.min_samples and \
                        state.score() >= self.threshold:
                    if state.onset is None:
                        state.onset = sample.at
                else:
                    state.onset = None

    def _prune(self, state: _KeyState, now_bucket: int) -> None:
        floor = now_bucket - self._horizon_buckets
        if len(state.buckets) > self._horizon_buckets:
            for bucket in [b for b in state.buckets if b < floor]:
                del state.buckets[bucket]

    # -- reporting -------------------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable monitor state: what a ``CollectDrift`` RPC ships
        and :func:`merge_drift_snapshot` folds."""
        with self._lock:
            return {
                "keys": {key: state.as_tuple()
                         for key, state in self._keys.items()},
                "dropped_keys": self._dropped_keys,
            }

    def report(self, extra=(), top: int = 10) -> DriftReport:
        """Assess every attribution key — optionally merged with
        ``extra`` snapshots (federated worker monitors) — into a
        :class:`DriftReport`."""
        merged = merge_drift_snapshot(empty_drift_snapshot(),
                                      self.snapshot())
        for snapshot in extra:
            merge_drift_snapshot(merged, snapshot)
        return build_report(
            merged, now=self.now(), windows=self.windows,
            bucket_seconds=self._bucket_seconds,
            threshold=self.threshold,
            critical_factor=self.critical_factor,
            min_samples=self.min_samples, top=top)

    def collect(self) -> list[tuple[str, str, str, list]]:
        """Collector hook: this monitor's own families (the serving
        layer collects through the service so federated worker state
        rides along; this is the standalone path)."""
        return self.report().families()


def build_report(snapshot: dict, *, now: float, windows=DEFAULT_WINDOWS,
                 bucket_seconds: float = BUCKET_SECONDS,
                 threshold: float = DRIFT_THRESHOLD,
                 critical_factor: float = CRITICAL_FACTOR,
                 min_samples: int = MIN_SAMPLES,
                 top: int = 10) -> DriftReport:
    """Assess a (possibly merged) drift snapshot into a
    :class:`DriftReport` as of clock instant ``now``.

    Per key: the Page-Hinkley score and its status, the stream's
    geometric-mean error (``baseline``), the shortest window's
    geometric mean (``recent``), ``magnitude`` = recent / baseline, and
    the onset stamp with its age.
    """
    recent_width = min(width for _label, width in windows)
    now_bucket = int(now / bucket_seconds)
    floor = now_bucket - int(recent_width / bucket_seconds)
    entries = []
    for key, state_tuple in snapshot["keys"].items():
        buckets, n, mean, mhat, mmin, onset = state_tuple
        score = mhat - mmin
        if n < min_samples:
            status = "stable"
        elif score >= threshold * critical_factor:
            status = "critical"
        elif score >= threshold:
            status = "drifting"
        else:
            status = "stable"
        recent_n, recent_total = 0, 0.0
        for bucket, (count, total) in buckets.items():
            if floor < bucket <= now_bucket:
                recent_n += count
                recent_total += total
        recent_mean = (recent_total / recent_n) if recent_n else mean
        scope, model, key_name, metric = key
        entries.append({
            "scope": scope,
            "model": model,
            "key": key_name,
            "metric": metric,
            "status": status,
            "score": score,
            "samples": n,
            "baseline": math.exp(mean) if n else 0.0,
            "recent": math.exp(recent_mean) if n else 0.0,
            "recent_samples": recent_n,
            "magnitude": math.exp(recent_mean - mean) if n else 0.0,
            "onset": onset,
            "onset_age_seconds": (now - onset
                                  if onset is not None else None),
        })
    return DriftReport(entries,
                       dropped_keys=snapshot.get("dropped_keys", 0),
                       top=top)


class _WorkerDrift:
    """One worker's federation state (baseline from prior incarnations,
    last scraped snapshot, freshness flag)."""

    __slots__ = ("generation", "baseline", "last", "fresh")

    def __init__(self):
        self.generation: int | None = None
        self.baseline = empty_drift_snapshot()
        self.last = empty_drift_snapshot()
        self.fresh = False


class DriftFederator:
    """Per-worker drift-snapshot ledger, mirroring
    :class:`~repro.obs.federate.MetricsFederator`'s semantics: a
    restarted worker (pool-slot generation advanced) has its previous
    incarnation's final snapshot folded into a monotone baseline, an
    unreachable worker keeps serving last-known state, and a retired
    worker is forgotten."""

    def __init__(self):
        self._lock = threading.Lock()
        self._workers: dict[object, _WorkerDrift] = {}

    def absorb(self, worker_id, generation: int, snapshot: dict) -> None:
        """Record one worker's scraped drift snapshot."""
        with self._lock:
            state = self._workers.get(worker_id)
            if state is None:
                state = self._workers[worker_id] = _WorkerDrift()
            if (state.generation is not None
                    and generation != state.generation):
                merge_drift_snapshot(state.baseline, state.last)
            state.generation = generation
            state.last = snapshot
            state.fresh = True

    def mark_unreachable(self, worker_id) -> None:
        """Flag a failed scrape; last-known state keeps serving."""
        with self._lock:
            state = self._workers.get(worker_id)
            if state is not None:
                state.fresh = False

    def forget(self, worker_id) -> None:
        """Drop a retired worker's state entirely."""
        with self._lock:
            self._workers.pop(worker_id, None)

    def merged(self) -> dict:
        """Every worker's ``baseline + last`` folded into one snapshot
        (the cluster model's contribution to ``GET /v1/drift``)."""
        merged = empty_drift_snapshot()
        with self._lock:
            states = sorted(self._workers.items(),
                            key=lambda item: str(item[0]))
            for _worker_id, state in states:
                merge_drift_snapshot(merged, state.baseline)
                merge_drift_snapshot(merged, state.last)
        return merged


class NullDriftMonitor:
    """No-op twin of :class:`DriftMonitor` (telemetry disabled)."""

    enabled = False
    windows = ()

    def now(self) -> float:
        return 0.0

    def sample_of(self, model, metric, value, shards=(), tables=(),
                  template="") -> DriftSample:
        return DriftSample(model=model, metric=metric,
                           value=float(value), at=0.0)

    def absorb(self, sample, scopes=SCOPES) -> None:
        return None

    def snapshot(self) -> dict:
        return empty_drift_snapshot()

    def report(self, extra=(), top: int = 10) -> DriftReport:
        return DriftReport([])

    def collect(self) -> list:
        return []


NULL_DRIFT = NullDriftMonitor()


# re-exported for forwarding call sites that rebuild a sub-sample
replace_sample = replace
