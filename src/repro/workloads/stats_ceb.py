"""Synthetic STATS-like database (paper Section 6.1, Table 2 left column).

Shape matches the real STATS dump of Stack Exchange: 8 tables, 13 join keys
forming exactly 2 equivalent key groups (everything references ``users.id``
or ``posts.id``), numeric/categorical attributes with correlations and
Zipf-skewed foreign keys.  Row counts scale linearly with ``scale``.
"""

from __future__ import annotations

import numpy as np

from repro.data import (
    Column,
    ColumnSchema,
    Database,
    DatabaseSchema,
    DataType,
    JoinRelation,
    Table,
    TableSchema,
)
from repro.utils import resolve_rng
from repro.workloads import generators as gen

INT = DataType.INT


def _t(name: str, keys: list[str], attrs: list[str]) -> TableSchema:
    cols = [ColumnSchema(k, INT, is_key=True) for k in keys]
    cols += [ColumnSchema(a, INT) for a in attrs]
    return TableSchema(name, cols)


def stats_schema() -> DatabaseSchema:
    tables = [
        _t("users", ["id"],
           ["reputation", "creation_date", "views", "upvotes", "downvotes"]),
        _t("posts", ["id", "owner_user_id"],
           ["creation_date", "score", "view_count", "answer_count",
            "comment_count", "favorite_count", "post_type"]),
        _t("badges", ["user_id"], ["date", "badge_class"]),
        _t("comments", ["post_id", "user_id"], ["score", "creation_date"]),
        _t("votes", ["post_id", "user_id"],
           ["vote_type", "creation_date", "bounty_amount"]),
        _t("postHistory", ["post_id", "user_id"],
           ["creation_date", "history_type"]),
        _t("postLinks", ["post_id", "related_post_id"],
           ["creation_date", "link_type"]),
        _t("tags", ["excerpt_post_id"], ["count"]),
    ]
    joins = [
        JoinRelation("users", "id", "posts", "owner_user_id"),
        JoinRelation("users", "id", "badges", "user_id"),
        JoinRelation("users", "id", "comments", "user_id"),
        JoinRelation("users", "id", "votes", "user_id"),
        JoinRelation("users", "id", "postHistory", "user_id"),
        JoinRelation("posts", "id", "comments", "post_id"),
        JoinRelation("posts", "id", "votes", "post_id"),
        JoinRelation("posts", "id", "postHistory", "post_id"),
        JoinRelation("posts", "id", "postLinks", "post_id"),
        JoinRelation("posts", "id", "postLinks", "related_post_id"),
        JoinRelation("posts", "id", "tags", "excerpt_post_id"),
    ]
    return DatabaseSchema(tables, joins)


def build_stats_database(scale: float = 1.0, seed: int = 0) -> Database:
    rng = resolve_rng(seed)
    n_users = max(50, int(4000 * scale))
    n_posts = max(80, int(10000 * scale))
    n_badges = max(40, int(8000 * scale))
    n_comments = max(80, int(16000 * scale))
    n_votes = max(80, int(14000 * scale))
    n_history = max(60, int(12000 * scale))
    n_links = max(30, int(2500 * scale))
    n_tags = max(20, int(800 * scale))

    # shared popularity permutations: the same users/posts are hot in
    # every referencing table (drives realistic join blow-up)
    users_perm = rng.permutation(n_users)
    posts_perm = rng.permutation(n_posts)
    # hotness: rank 0 = most referenced entity (via the shared perms)
    users_hot = np.empty(n_users, dtype=np.int64)
    users_hot[users_perm] = np.arange(n_users, 0, -1)
    posts_hot = np.empty(n_posts, dtype=np.int64)
    posts_hot[posts_perm] = np.arange(n_posts, 0, -1)

    # users: reputation correlated with activity (hot users earn karma) —
    # the filter-attribute/join-key correlation the paper's benchmarks
    # stress (a reputation filter selects exactly the high-degree users)
    reputation = gen.correlated_int(rng, users_hot, 0.6, 1, 10_000)
    users = Table("users", [
        Column("id", np.arange(n_users)),
        Column("reputation", reputation),
        Column("creation_date", gen.date_column(rng, n_users)),
        Column("views", gen.correlated_int(rng, reputation, 0.15, 0, 5000)),
        Column("upvotes", gen.correlated_int(rng, reputation, 0.1, 0, 3000)),
        Column("downvotes", gen.correlated_int(rng, reputation, 0.3, 0, 500)),
    ])

    # posts: heavy users write more posts (zipf on owner)
    owner, owner_null = gen.zipf_fk(rng, n_posts, n_users, a=1.25,
                                    null_fraction=0.02, perm=users_perm)
    # popular posts score higher: score correlates with join-key hotness
    score = gen.correlated_int(rng, posts_hot, 0.6, -3, 120)
    posts = Table("posts", [
        Column("id", np.arange(n_posts)),
        Column("owner_user_id", owner, null_mask=owner_null),
        Column("creation_date", gen.date_column(rng, n_posts)),
        Column("score", score),
        Column("view_count", gen.correlated_int(rng, score, 0.2, 0, 20_000)),
        Column("answer_count", gen.correlated_int(rng, score, 0.4, 0, 30)),
        Column("comment_count", gen.correlated_int(rng, score, 0.4, 0, 40)),
        Column("favorite_count", gen.correlated_int(rng, score, 0.3, 0, 80)),
        Column("post_type", gen.categorical(rng, n_posts, 6)),
    ])

    def fk_pair(n_rows, post_a, user_a, post_null=0.0, user_null=0.0):
        post_id, p_null = gen.zipf_fk(rng, n_rows, n_posts, a=post_a,
                                      null_fraction=post_null,
                                      perm=posts_perm)
        user_id, u_null = gen.zipf_fk(rng, n_rows, n_users, a=user_a,
                                      null_fraction=user_null,
                                      perm=users_perm)
        return (post_id, p_null), (user_id, u_null)

    badge_user, badge_null = gen.zipf_fk(rng, n_badges, n_users, a=1.2,
                                         perm=users_perm)
    badges = Table("badges", [
        Column("user_id", badge_user, null_mask=badge_null),
        Column("date", gen.date_column(rng, n_badges)),
        Column("badge_class", gen.categorical(rng, n_badges, 3)),
    ])

    (c_post, c_pnull), (c_user, c_unull) = fk_pair(
        n_comments, 1.3, 1.25, user_null=0.05)
    comments = Table("comments", [
        Column("post_id", c_post, null_mask=c_pnull),
        Column("user_id", c_user, null_mask=c_unull),
        Column("score", gen.correlated_int(rng, posts_hot[c_post], 0.6,
                                           0, 60)),
        Column("creation_date", gen.date_column(rng, n_comments)),
    ])

    (v_post, v_pnull), (v_user, v_unull) = fk_pair(
        n_votes, 1.35, 1.3, user_null=0.4)  # many anonymous votes
    votes = Table("votes", [
        Column("post_id", v_post, null_mask=v_pnull),
        Column("user_id", v_user, null_mask=v_unull),
        Column("vote_type", gen.categorical(rng, n_votes, 10)),
        Column("creation_date", gen.date_column(rng, n_votes)),
        Column("bounty_amount", gen.skewed_int(rng, n_votes, 0, 500, a=2.2)),
    ])

    (h_post, h_pnull), (h_user, h_unull) = fk_pair(
        n_history, 1.3, 1.3, user_null=0.1)
    post_history = Table("postHistory", [
        Column("post_id", h_post, null_mask=h_pnull),
        Column("user_id", h_user, null_mask=h_unull),
        Column("creation_date", gen.date_column(rng, n_history)),
        Column("history_type", gen.categorical(rng, n_history, 12)),
    ])

    l_post, l_pnull = gen.zipf_fk(rng, n_links, n_posts, a=1.3,
                                  perm=posts_perm)
    l_rel, l_rnull = gen.zipf_fk(rng, n_links, n_posts, a=1.3,
                                 perm=posts_perm)
    post_links = Table("postLinks", [
        Column("post_id", l_post, null_mask=l_pnull),
        Column("related_post_id", l_rel, null_mask=l_rnull),
        Column("creation_date", gen.date_column(rng, n_links)),
        Column("link_type", gen.categorical(rng, n_links, 2)),
    ])

    t_post, t_null = gen.zipf_fk(rng, n_tags, n_posts, a=1.1,
                                 null_fraction=0.1, perm=posts_perm)
    tags = Table("tags", [
        Column("excerpt_post_id", t_post, null_mask=t_null),
        Column("count", gen.skewed_int(rng, n_tags, 1, 40_000, a=1.3)),
    ])

    return Database(stats_schema(), [users, posts, badges, comments, votes,
                                     post_history, post_links, tags])


def build_stats_ceb(scale: float = 1.0, seed: int = 0,
                    n_queries: int = 146, n_templates: int = 70,
                    max_tables: int = 5):
    """Database + a CEB-style workload (146 queries / 70 templates)."""
    from repro.workloads.benchmark import Benchmark
    from repro.workloads.querygen import QueryGenerator

    database = build_stats_database(scale=scale, seed=seed)
    qgen = QueryGenerator(database, seed=seed + 1)
    templates = qgen.sample_templates(n_templates, max_tables=max_tables)
    workload = qgen.generate_workload(templates, n_queries,
                                      max_predicates=16)
    return Benchmark("STATS-CEB", database, workload)
