"""Filter predicate AST.

Covers the predicate classes of the two benchmarks the paper evaluates on:
STATS-CEB (numeric/categorical comparisons) and IMDB-JOB (adds IN lists,
BETWEEN, string LIKE, IS [NOT] NULL, and disjunctions).

Each node renders back to SQL via ``to_sql()`` and reports the columns it
touches via ``columns()`` so estimators can featurize or reject predicates
they do not support.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


class Predicate:
    """Base class; concrete nodes are the dataclasses below."""

    def columns(self) -> set[str]:
        raise NotImplementedError

    def to_sql(self, alias: str | None = None) -> str:
        raise NotImplementedError

    def conjuncts(self) -> list["Predicate"]:
        """Flatten a top-level conjunction into its parts."""
        return [self]

    def is_simple(self) -> bool:
        """True if the tree contains only AND-combined comparisons.

        This is what the learned data-driven baselines support; LIKE / OR /
        NOT make a predicate non-simple (paper Section 2.2).
        """
        return False


def _fmt_value(value) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return str(value)


def _qual(column: str, alias: str | None) -> str:
    return f"{alias}.{column}" if alias else column


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Matches every row (a table with no filter)."""

    def columns(self) -> set[str]:
        return set()

    def to_sql(self, alias: str | None = None) -> str:
        return "TRUE"

    def conjuncts(self) -> list[Predicate]:
        return []

    def is_simple(self) -> bool:
        return True


@dataclass(frozen=True)
class Comparison(Predicate):
    """``column <op> literal`` with op in =, !=, <, <=, >, >=."""

    column: str
    op: str
    value: object

    def __post_init__(self):
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def columns(self) -> set[str]:
        return {self.column}

    def to_sql(self, alias: str | None = None) -> str:
        op = "<>" if self.op == "!=" else self.op
        return f"{_qual(self.column, alias)} {op} {_fmt_value(self.value)}"

    def is_simple(self) -> bool:
        return True


@dataclass(frozen=True)
class Between(Predicate):
    """``column BETWEEN low AND high`` (inclusive both ends)."""

    column: str
    low: object
    high: object

    def columns(self) -> set[str]:
        return {self.column}

    def to_sql(self, alias: str | None = None) -> str:
        return (f"{_qual(self.column, alias)} BETWEEN "
                f"{_fmt_value(self.low)} AND {_fmt_value(self.high)}")

    def is_simple(self) -> bool:
        return True


@dataclass(frozen=True)
class In(Predicate):
    """``column IN (v1, v2, ...)``."""

    column: str
    values: tuple = ()

    def __init__(self, column: str, values: Sequence):
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "values", tuple(values))

    def columns(self) -> set[str]:
        return {self.column}

    def to_sql(self, alias: str | None = None) -> str:
        inner = ", ".join(_fmt_value(v) for v in self.values)
        return f"{_qual(self.column, alias)} IN ({inner})"

    def is_simple(self) -> bool:
        return True


@dataclass(frozen=True)
class Like(Predicate):
    """``column [NOT] LIKE pattern`` with SQL ``%``/``_`` wildcards."""

    column: str
    pattern: str
    negated: bool = False

    def columns(self) -> set[str]:
        return {self.column}

    def to_sql(self, alias: str | None = None) -> str:
        kw = "NOT LIKE" if self.negated else "LIKE"
        return f"{_qual(self.column, alias)} {kw} {_fmt_value(self.pattern)}"


@dataclass(frozen=True)
class IsNull(Predicate):
    """``column IS [NOT] NULL``."""

    column: str
    negated: bool = False

    def columns(self) -> set[str]:
        return {self.column}

    def to_sql(self, alias: str | None = None) -> str:
        kw = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{_qual(self.column, alias)} {kw}"


@dataclass(frozen=True)
class And(Predicate):
    children: tuple = ()

    def __init__(self, children: Sequence[Predicate]):
        object.__setattr__(self, "children", tuple(children))
        if not self.children:
            raise ValueError("And requires at least one child")

    def columns(self) -> set[str]:
        out: set[str] = set()
        for child in self.children:
            out |= child.columns()
        return out

    def to_sql(self, alias: str | None = None) -> str:
        return "(" + " AND ".join(c.to_sql(alias) for c in self.children) + ")"

    def conjuncts(self) -> list[Predicate]:
        out: list[Predicate] = []
        for child in self.children:
            out.extend(child.conjuncts())
        return out

    def is_simple(self) -> bool:
        return all(c.is_simple() for c in self.children)


@dataclass(frozen=True)
class Or(Predicate):
    children: tuple = ()

    def __init__(self, children: Sequence[Predicate]):
        object.__setattr__(self, "children", tuple(children))
        if not self.children:
            raise ValueError("Or requires at least one child")

    def columns(self) -> set[str]:
        out: set[str] = set()
        for child in self.children:
            out |= child.columns()
        return out

    def to_sql(self, alias: str | None = None) -> str:
        return "(" + " OR ".join(c.to_sql(alias) for c in self.children) + ")"


@dataclass(frozen=True)
class Not(Predicate):
    child: Predicate = field(default=None)  # type: ignore[assignment]

    def columns(self) -> set[str]:
        return self.child.columns()

    def to_sql(self, alias: str | None = None) -> str:
        return f"NOT ({self.child.to_sql(alias)})"


def conjoin(predicates: Sequence[Predicate]) -> Predicate:
    """AND a list of predicates, collapsing the trivial cases."""
    parts = [p for p in predicates if not isinstance(p, TruePredicate)]
    if not parts:
        return TruePredicate()
    if len(parts) == 1:
        return parts[0]
    return And(parts)
