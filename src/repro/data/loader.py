"""CSV persistence for tables and databases.

Nulls are stored as empty fields.  Column types come from the schema, so a
round-trip through disk reproduces the exact in-memory representation —
useful for exporting the synthetic benchmark instances or importing small
real datasets.
"""

from __future__ import annotations

import csv
import os

import numpy as np

from repro.data.column import Column
from repro.data.database import Database
from repro.data.schema import DatabaseSchema, TableSchema
from repro.data.table import Table
from repro.data.types import DataType
from repro.errors import DataError


def save_table(table: Table, path: str) -> None:
    """Write one table to a CSV file with a header row."""
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(table.column_names)
        columns = table.columns
        for i in range(len(table)):
            row = []
            for col in columns:
                if col.null_mask[i]:
                    row.append("")
                else:
                    row.append(col.values[i])
            writer.writerow(row)


def load_table(path: str, schema: TableSchema) -> Table:
    """Read one table from CSV, validating against its schema."""
    with open(path, newline="") as f:
        reader = csv.reader(f)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path}: empty CSV file") from None
        declared = [c.name for c in schema.columns]
        if header != declared:
            raise DataError(
                f"{path}: header {header} does not match schema {declared}")
        raw_rows = list(reader)

    columns = []
    for idx, cschema in enumerate(schema.columns):
        cells = [row[idx] for row in raw_rows]
        nulls = np.array([cell == "" for cell in cells], dtype=bool)
        if cschema.dtype is DataType.STRING:
            values = np.array([cell for cell in cells], dtype=object)
        else:
            caster = int if cschema.dtype is DataType.INT else float
            values = np.array(
                [caster(cell) if cell != "" else 0 for cell in cells],
                dtype=cschema.dtype.numpy_dtype)
        columns.append(Column(cschema.name, values, cschema.dtype, nulls))
    return Table(schema.name, columns)


def save_database(database: Database, directory: str) -> None:
    """Write every table as ``<directory>/<table>.csv``."""
    os.makedirs(directory, exist_ok=True)
    for name in database.table_names:
        save_table(database.table(name), os.path.join(directory,
                                                      f"{name}.csv"))


def load_database(directory: str, schema: DatabaseSchema) -> Database:
    """Read a database saved by :func:`save_database`."""
    tables = []
    for name in schema.table_names:
        path = os.path.join(directory, f"{name}.csv")
        if not os.path.exists(path):
            raise DataError(f"missing CSV for table {name!r}: {path}")
        tables.append(load_table(path, schema.table(name)))
    return Database(schema, tables)
