"""MSCN: learned query-driven estimation (paper [33], baseline 4).

A multi-set convolutional network maps a featurized query — sets of tables
(with sample bitmaps), joins, and filter predicates — to log(cardinality).
Training requires an executed workload with true cardinalities; at
estimation time inference is a few matrix multiplies.  The paper's critique
(needs executed queries, degrades off-distribution, must retrain on data
updates) is inherent in this construction.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import CardEstMethod, MethodCharacteristics
from repro.baselines.nn import MSCNNetwork
from repro.data.database import Database
from repro.engine.executor import CardinalityExecutor
from repro.engine.sampler import TableSample
from repro.errors import NotFittedError
from repro.sql.predicates import (
    Between,
    Comparison,
    In,
    IsNull,
    Like,
    Predicate,
)
from repro.sql.query import Query
from repro.utils import resolve_rng

_OPS = ("=", "!=", "<", "<=", ">", ">=", "between", "in", "like", "null")


class _Featurizer:
    """Stable featurization of queries against one database schema."""

    def __init__(self, database: Database, bitmap_rows: int, seed: int):
        rng = resolve_rng(seed)
        self.table_ids = {name: i for i, name in
                          enumerate(database.table_names)}
        self.column_ids = {}
        self.column_ranges = {}
        for name in database.table_names:
            table = database.table(name)
            for cschema in database.schema.table(name).columns:
                self.column_ids[(name, cschema.name)] = len(self.column_ids)
                col = table[cschema.name]
                vals = col.non_null_values()
                if cschema.dtype.is_numeric and len(vals):
                    self.column_ranges[(name, cschema.name)] = (
                        float(np.min(vals)), float(np.max(vals)))
        self.samples = {
            name: TableSample(database.table(name), max_rows=bitmap_rows,
                              rng=rng)
            for name in database.table_names
        }
        self.bitmap_rows = bitmap_rows
        self.n_table_feats = len(self.table_ids) + bitmap_rows
        self.n_join_feats = 2 * len(self.column_ids)
        self.n_pred_feats = len(self.column_ids) + len(_OPS) + 1

    def featurize(self, query: Query) -> dict:
        tables = []
        for alias in query.aliases:
            name = query.table_of(alias)
            vec = np.zeros(self.n_table_feats)
            vec[self.table_ids[name]] = 1.0
            bitmap = self.samples[name].bitmap(query.filter_of(alias))
            vec[len(self.table_ids):len(self.table_ids) + len(bitmap)] = bitmap
            tables.append(vec)
        joins = []
        for join in query.joins:
            vec = np.zeros(self.n_join_feats)
            lid = self.column_ids.get(
                (query.table_of(join.left.alias), join.left.column))
            rid = self.column_ids.get(
                (query.table_of(join.right.alias), join.right.column))
            if lid is not None:
                vec[lid] = 1.0
            if rid is not None:
                vec[len(self.column_ids) + rid] = 1.0
            joins.append(vec)
        preds = []
        for alias, pred in query.filters.items():
            name = query.table_of(alias)
            for leaf in pred.conjuncts():
                vec = self._predicate_vector(name, leaf)
                if vec is not None:
                    preds.append(vec)
        return {"tables": tables, "joins": joins, "preds": preds}

    def _predicate_vector(self, table: str, pred: Predicate) -> np.ndarray | None:
        cols = pred.columns()
        if len(cols) != 1:
            return None
        column = next(iter(cols))
        cid = self.column_ids.get((table, column))
        if cid is None:
            return None
        vec = np.zeros(self.n_pred_feats)
        vec[cid] = 1.0
        off = len(self.column_ids)

        def normalize(value) -> float:
            rng = self.column_ranges.get((table, column))
            if rng is None or rng[1] == rng[0]:
                return 0.5
            return (float(value) - rng[0]) / (rng[1] - rng[0])

        if isinstance(pred, Comparison) and not isinstance(pred.value, str):
            vec[off + _OPS.index(pred.op)] = 1.0
            vec[-1] = normalize(pred.value)
        elif isinstance(pred, Comparison):
            vec[off + _OPS.index(pred.op)] = 1.0
            vec[-1] = 0.5
        elif isinstance(pred, Between):
            vec[off + _OPS.index("between")] = 1.0
            vec[-1] = normalize(pred.high) - normalize(pred.low)
        elif isinstance(pred, In):
            vec[off + _OPS.index("in")] = 1.0
            vec[-1] = min(1.0, len(pred.values) / 10.0)
        elif isinstance(pred, Like):
            vec[off + _OPS.index("like")] = 1.0
            vec[-1] = min(1.0, len(pred.pattern) / 20.0)
        elif isinstance(pred, IsNull):
            vec[off + _OPS.index("null")] = 1.0
            vec[-1] = 0.0 if pred.negated else 1.0
        else:
            vec[off + _OPS.index("=")] = 1.0
            vec[-1] = 0.5
        return vec


def _pad_batch(featurized: list[dict], featurizer: "_Featurizer") -> dict:
    """Stack variable-length sets into padded arrays + masks."""
    def pad(key, width):
        max_len = max(1, max(len(f[key]) for f in featurized))
        arr = np.zeros((len(featurized), max_len, width))
        mask = np.zeros((len(featurized), max_len), dtype=bool)
        for i, f in enumerate(featurized):
            for j, vec in enumerate(f[key]):
                arr[i, j] = vec
                mask[i, j] = True
            if not f[key]:
                mask[i, 0] = True  # empty set -> one zero element
        return arr, mask

    tables, tables_mask = pad("tables", featurizer.n_table_feats)
    joins, joins_mask = pad("joins", featurizer.n_join_feats)
    preds, preds_mask = pad("preds", featurizer.n_pred_feats)
    return {"tables": tables, "tables_mask": tables_mask,
            "joins": joins, "joins_mask": joins_mask,
            "preds": preds, "preds_mask": preds_mask}


class MSCNMethod(CardEstMethod):
    name = "MSCN"
    characteristics = MethodCharacteristics(
        uses_machine_learning=True, uses_query_information=True,
        uses_sampling=True, efficient=True, scalable_with_joins=True,
        supports_cyclic_join=True)

    def __init__(self, hidden: int = 64, epochs: int = 30,
                 batch_size: int = 64, lr: float = 1e-3,
                 bitmap_rows: int = 64, training_subplans: bool = True,
                 max_training_queries: int = 2000, seed: int = 0):
        super().__init__()
        self._hidden = hidden
        self._epochs = epochs
        self._batch_size = batch_size
        self._lr = lr
        self._bitmap_rows = bitmap_rows
        self._training_subplans = training_subplans
        self._max_training = max_training_queries
        self._seed = seed
        self._net: MSCNNetwork | None = None

    def _fit(self, database: Database, workload=None) -> None:
        if not workload:
            raise ValueError(
                "MSCN is query-driven: it requires a training workload")
        self._featurizer = _Featurizer(database, self._bitmap_rows,
                                       self._seed)
        executor = CardinalityExecutor(database)

        # expand the workload to sub-plan queries with true cardinalities
        # (the paper trains on ~100K sub-plan queries; we scale down)
        training: list[tuple[Query, float]] = []
        for query in workload:
            if len(training) >= self._max_training:
                break
            if self._training_subplans:
                cards = executor.subplan_cardinalities(query, min_tables=1)
                for subset, card in cards.items():
                    training.append((query.subquery(set(subset)), card))
            else:
                training.append((query, executor.cardinality(query)))
        training = training[: self._max_training]

        featurized = [self._featurizer.featurize(q) for q, _ in training]
        log_cards = np.log1p(np.array([c for _, c in training]))
        self._log_scale = max(float(log_cards.max()), 1.0)
        targets_all = log_cards / self._log_scale

        self._net = MSCNNetwork(
            self._featurizer.n_table_feats, self._featurizer.n_join_feats,
            self._featurizer.n_pred_feats, hidden=self._hidden,
            seed=self._seed)
        rng = resolve_rng(self._seed)
        n = len(featurized)
        for _ in range(self._epochs):
            order = rng.permutation(n)
            batches, targets = [], []
            for start in range(0, n, self._batch_size):
                idx = order[start:start + self._batch_size]
                batches.append(_pad_batch([featurized[i] for i in idx],
                                          self._featurizer))
                targets.append(targets_all[idx])
            self._net.train_epoch(batches, targets, lr=self._lr)

    def estimate(self, query: Query) -> float:
        if self._net is None:
            raise NotFittedError("MSCNMethod not fitted")
        batch = _pad_batch([self._featurizer.featurize(query)],
                           self._featurizer)
        pred = float(self._net.predict(batch)[0])
        return float(np.expm1(max(pred, 0.0) * self._log_scale))
