"""Tests for the JSON HTTP API (routes, errors, concurrent clients)."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.estimator import FactorJoin, FactorJoinConfig
from repro.serve import EstimationService, serve_in_background

SQL = "SELECT COUNT(*) FROM A a, B b WHERE a.id = b.aid AND a.x > 1"


@pytest.fixture
def served(toy_db):
    model = FactorJoin(FactorJoinConfig(n_bins=4)).fit(toy_db)
    service = EstimationService()
    service.register("default", model)
    server, _ = serve_in_background(service, port=0)
    yield server, service, model
    server.shutdown()
    server.server_close()


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _post(server, path, payload):
    req = urllib.request.Request(
        _url(server, path), data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=10) as resp:
        return json.loads(resp.read())


def _get(server, path):
    with urllib.request.urlopen(_url(server, path), timeout=10) as resp:
        return json.loads(resp.read())


def _status_of(err_callable):
    with pytest.raises(urllib.error.HTTPError) as info:
        err_callable()
    return info.value.code, json.loads(info.value.read())


class TestRoutes:
    def test_estimate(self, served):
        server, _, model = served
        body = _post(server, "/estimate", {"sql": SQL})
        from repro.sql import parse_query
        assert body["estimate"] == model.estimate(parse_query(SQL))
        assert body["model"] == "default"
        assert not body["cached"]
        assert _post(server, "/estimate", {"sql": SQL})["cached"]

    def test_estimate_subplans(self, served):
        server, _, _ = served
        body = _post(server, "/estimate", {"sql": SQL, "subplans": True})
        assert set(body["subplans"]) == {"a", "b", "a,b"}

    def test_estimate_batch(self, served):
        server, _, _ = served
        other = "SELECT COUNT(*) FROM B b, C c WHERE b.cid = c.id"
        body = _post(server, "/estimate_batch", {"queries": [SQL, other]})
        assert len(body["results"]) == 2
        assert all(r["estimate"] > 0 for r in body["results"])

    def test_update_with_json_nulls(self, served):
        server, service, _ = served
        body = _post(server, "/update", {
            "table": "C",
            "rows": {"id": [1000, 1001, None], "z": [0, 1, 2]},
        })
        assert body["rows"] == 3
        assert service.update_latency.count == 1

    def test_update_accepts_any_column_order(self, served):
        # JSON objects are unordered; the service aligns columns to the
        # served table's storage order
        server, service, _ = served
        body = _post(server, "/update", {
            "table": "C",
            "rows": {"z": [0, 1], "id": [2000, 2001]},
        })
        assert body["rows"] == 2

    def test_warmup_inline_queries(self, served):
        server, service, _ = served
        big = ("SELECT COUNT(*) FROM A a, B b, C c "
               "WHERE a.id = b.aid AND b.cid = c.id AND a.x > 1")
        body = _post(server, "/warmup", {"queries": [big]})
        assert body["entries"] == 1 and not body["errors"]
        assert body["caches"]["default"]["subplan_size"] >= 6
        # a sub-plan of the warmed query is now served from cache
        hit = _post(server, "/estimate", {
            "sql": "SELECT COUNT(*) FROM A q, B r "
                   "WHERE q.id = r.aid AND q.x > 1"})
        assert hit["cached"] and hit["cache_level"] == "subplan"

    def test_warmup_from_workload_file(self, served, tmp_path):
        server, _, _ = served
        workload = tmp_path / "warm.jsonl"
        workload.write_text(json.dumps({"sql": SQL}) + "\n")
        body = _post(server, "/warmup", {"path": str(workload)})
        assert body["entries"] == 1
        assert _post(server, "/estimate", {"sql": SQL})["cached"]

    def test_models_and_stats_and_health(self, served):
        server, _, _ = served
        _post(server, "/estimate", {"sql": SQL})
        assert _get(server, "/models")["models"][0]["name"] == "default"
        stats = _get(server, "/stats")
        assert stats["estimate_latency"]["count"] == 1
        assert _get(server, "/health") == {"ok": True}


def _post_raw(server, path, payload):
    """POST returning (body, headers) for header assertions."""
    req = urllib.request.Request(
        _url(server, path), data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=10) as resp:
        return json.loads(resp.read()), dict(resp.headers)


class TestV1Routes:
    """The versioned API: typed responses, explain traces, capability
    listings, and the machine-readable error taxonomy."""

    def test_v1_estimate(self, served):
        server, _, model = served
        body = _post(server, "/v1/estimate", {"sql": SQL})
        from repro.sql import parse_query
        assert body["estimate"] == model.estimate(parse_query(SQL))
        assert body["api_version"] == "v1"
        assert body["explain"] is None
        assert not body["cached"]
        assert _post(server, "/v1/estimate", {"sql": SQL})["cached"]

    def test_v1_estimate_with_explain(self, served):
        server, _, _ = served
        body = _post(server, "/v1/estimate",
                     {"sql": SQL, "explain": True})
        trace = body["explain"]
        assert trace["bound_mode"] == "bound"
        assert trace["aliases"] == ["a", "b"]
        assert trace["bins_touched"] >= 1
        assert trace["capabilities"]["name"] == "factorjoin"

    def test_v1_explain_reports_cache_level(self, served):
        server, _, _ = served
        first = _post(server, "/v1/explain", {"sql": SQL})
        assert first["explain"]["cache_level"] is None
        again = _post(server, "/v1/explain", {"sql": SQL})
        assert again["explain"]["cache_level"] == "query"
        assert again["estimate"] == first["estimate"]

    def test_v1_subplans(self, served):
        server, _, _ = served
        body = _post(server, "/v1/subplans", {"sql": SQL})
        assert set(body["subplans"]) == {"a", "b", "a,b"}
        assert body["count"] == 3
        assert body["api_version"] == "v1"

    def test_v1_update(self, served):
        server, _, _ = served
        body = _post(server, "/v1/update", {
            "table": "C", "rows": {"id": [3000], "z": [1]}})
        assert body["rows"] == 1 and body["deleted_rows"] == 0
        assert body["api_version"] == "v1"

    def test_v1_models_lists_capabilities(self, served):
        server, _, _ = served
        body = _get(server, "/v1/models")
        (entry,) = body["models"]
        assert entry["name"] == "default"
        caps = entry["capabilities"]
        assert caps["supports_subplans"] and caps["supports_sessions"]
        assert caps["name"] == "factorjoin"

    def test_v1_error_taxonomy(self, served):
        server, _, _ = served
        cases = [
            ("/v1/estimate", {"sql": "not sql"}, 400, "parse_error"),
            ("/v1/estimate", {"sql": SQL, "model": "nope"}, 404,
             "model_not_found"),
            ("/v1/estimate", {}, 400, "invalid_request"),
            ("/v1/update", {"table": "C", "rows": {"id": [1], "z": [0]},
                            "op": "delete"}, 400,
             "unsupported_operation"),  # bayescard: no delete
        ]
        for path, payload, want_status, want_code in cases:
            status, body = _status_of(lambda: _post(server, path, payload))
            assert status == want_status, (path, body)
            assert body["error"]["code"] == want_code, (path, body)
            assert body["error"]["message"]

    def test_legacy_routes_carry_deprecation_header(self, served):
        server, _, _ = served
        _, headers = _post_raw(server, "/estimate", {"sql": SQL})
        assert headers.get("Deprecation") == "true"
        _, batch_headers = _post_raw(server, "/estimate_batch",
                                     {"queries": [SQL]})
        assert batch_headers.get("Deprecation") == "true"
        body, v1_headers = _post_raw(server, "/v1/estimate", {"sql": SQL})
        assert "Deprecation" not in v1_headers
        # shim and /v1 answer identically
        legacy = _post(server, "/estimate", {"sql": SQL})
        assert legacy["estimate"] == body["estimate"]


class TestErrors:
    def test_unknown_model_is_404(self, served):
        server, _, _ = served
        code, body = _status_of(lambda: _post(
            server, "/estimate", {"sql": SQL, "model": "nope"}))
        assert code == 404 and "nope" in body["error"]

    def test_bad_sql_is_400(self, served):
        server, _, _ = served
        code, body = _status_of(lambda: _post(
            server, "/estimate", {"sql": "not sql at all"}))
        assert code == 400 and body["error"]

    def test_missing_field_is_400(self, served):
        server, _, _ = served
        code, body = _status_of(lambda: _post(server, "/estimate", {}))
        assert code == 400 and "sql" in body["error"]

    def test_unknown_route_is_404(self, served):
        server, _, _ = served
        code, _ = _status_of(lambda: _get(server, "/nope"))
        assert code == 404

    def test_warmup_requires_exactly_one_source(self, served):
        server, _, _ = served
        code, body = _status_of(lambda: _post(server, "/warmup", {}))
        assert code == 400 and "exactly one" in body["error"]
        code, _ = _status_of(lambda: _post(
            server, "/warmup", {"queries": [SQL], "path": "x"}))
        assert code == 400

    def test_warmup_empty_queries_rejected(self, served):
        server, _, _ = served
        code, _ = _status_of(lambda: _post(
            server, "/warmup", {"queries": []}))
        assert code == 400

    def test_warmup_missing_path_is_400_not_500(self, served):
        """A typo'd workload path is the client's bad request, not an
        internal error."""
        server, _, _ = served
        code, body = _status_of(lambda: _post(
            server, "/warmup", {"path": "/nonexistent/workload.jsonl"}))
        assert code == 400 and "cannot read workload" in body["error"]
        code, _ = _status_of(lambda: _post(
            server, "/warmup", {"path": 5}))
        assert code == 400

    def test_warmup_path_never_leaks_file_content(self, served, tmp_path):
        """Pointing /warmup at a non-workload file must not echo the
        file's lines back to the client."""
        server, _, _ = served
        secret = tmp_path / "secret.conf"
        secret.write_text("password=hunter2\ntoken=abcd\n")
        code, body = _status_of(lambda: _post(
            server, "/warmup", {"path": str(secret)}))
        assert code == 400
        assert "hunter2" not in body["error"]
        assert "abcd" not in body["error"]

    def test_warmup_path_replay_errors_report_counts_only(self, served,
                                                          tmp_path):
        """Workload-shaped lines that fail replay (e.g. unknown tables)
        must not be quoted back either — only inline-query errors are
        echoed verbatim."""
        server, _, _ = served
        workload = tmp_path / "w.jsonl"
        workload.write_text(
            json.dumps({"sql": "SELECT COUNT(*) FROM Hidden h"}) + "\n"
            + json.dumps({"sql": SQL}) + "\n")
        body = _post(server, "/warmup", {"path": str(workload)})
        assert body["warmed_subplan_maps"] == 1
        assert body["errors"] == ["1 workload entries failed to replay"]
        assert all("Hidden" not in e for e in body["errors"])

    def test_batch_requires_list(self, served):
        server, _, _ = served
        code, _ = _status_of(lambda: _post(
            server, "/estimate_batch", {"queries": SQL}))
        assert code == 400

    def test_negative_content_length_rejected(self, served):
        # read(-1) would block until client EOF; must 400 and close instead
        import http.client
        server, _, _ = served
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=5)
        try:
            conn.putrequest("POST", "/estimate")
            conn.putheader("Content-Length", "-1")
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
            assert b"Content-Length" in response.read()
        finally:
            conn.close()


class TestConcurrentClients:
    def test_many_clients_batching_concurrently(self, served):
        """The acceptance scenario: concurrent POST /estimate_batch clients
        all receive complete, consistent answers."""
        server, service, model = served
        from repro.sql import parse_query
        want = model.estimate(parse_query(SQL))
        other = "SELECT COUNT(*) FROM B b, C c WHERE b.cid = c.id"
        results, errors = [], []

        def client():
            try:
                body = _post(server, "/estimate_batch",
                             {"queries": [SQL, other]})
                results.append(body["results"])
            except Exception as exc:  # noqa: BLE001 - recording
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 12
        assert all(batch[0]["estimate"] == want for batch in results)
        assert service.latency.count == 24


@pytest.fixture
def served_scan(toy_db):
    """A served truescan model (supports deletes), plus the raw rows."""
    model = FactorJoin(FactorJoinConfig(
        n_bins=4, table_estimator="truescan")).fit(toy_db)
    service = EstimationService()
    service.register("default", model)
    server, _ = serve_in_background(service, port=0)
    yield server, service, model
    server.shutdown()
    server.server_close()


class TestUpdateOps:
    def _rows(self, toy_db, n=10):
        table = toy_db.table("B").head(n)
        return {name: table[name].values.tolist()
                for name in table.column_names}

    def test_update_op_delete_round_trip(self, served_scan, toy_db):
        server, _, _ = served_scan
        before = _post(server, "/estimate", {"sql": SQL})["estimate"]
        rows = self._rows(toy_db)
        inserted = _post(server, "/update", {"table": "B", "rows": rows})
        assert inserted["rows"] == 10
        deleted = _post(server, "/update",
                        {"table": "B", "rows": rows, "op": "delete"})
        assert deleted["deleted_rows"] == 10
        after = _post(server, "/estimate", {"sql": SQL})["estimate"]
        assert after == pytest.approx(before, rel=1e-9)

    def test_update_bad_op_is_400(self, served_scan, toy_db):
        server, _, _ = served_scan
        status, body = _status_of(lambda: _post(
            server, "/update",
            {"table": "B", "rows": self._rows(toy_db), "op": "upsert"}))
        assert status == 400
        assert "op" in body["error"]

    def test_delete_on_unsupporting_model_is_400(self, served, toy_db):
        server, _, _ = served  # bayescard: no delete support
        rows = {"aid": [1], "cid": [1], "y": [1]}
        status, body = _status_of(lambda: _post(
            server, "/update",
            {"table": "B", "rows": rows, "op": "delete"}))
        assert status == 400
        assert "delete" in body["error"]


class TestSnapshotRoute:
    """POST /snapshot is only live when the server was given a snapshot
    directory, and every client-named path must stay inside it — the
    endpoint writes files on save and unpickles them on restore."""

    @pytest.fixture
    def snapshot_server(self, served, tmp_path):
        _, service, _ = served
        server, _ = serve_in_background(service, port=0,
                                        snapshot_dir=tmp_path)
        yield server, service
        server.shutdown()
        server.server_close()

    def test_save_then_restore(self, snapshot_server):
        server, service = snapshot_server
        _post(server, "/estimate", {"sql": SQL})
        saved = _post(server, "/snapshot",
                      {"action": "save", "path": "cache.snap"})
        assert saved["entries"] >= 1

        service._cache_of("default").invalidate()
        assert not _post(server, "/estimate", {"sql": SQL})["cached"]
        restored = _post(server, "/snapshot",
                         {"action": "restore", "path": "cache.snap"})
        assert restored["entries"] == saved["entries"]
        assert _post(server, "/estimate", {"sql": SQL})["cached"]

    def test_bad_action_is_400(self, snapshot_server):
        server, _ = snapshot_server
        status, body = _status_of(lambda: _post(
            server, "/snapshot", {"action": "rotate", "path": "x.snap"}))
        assert status == 400
        assert "action" in body["error"]

    def test_disabled_without_snapshot_dir(self, served):
        server, _, _ = served  # no snapshot_dir configured
        status, body = _status_of(lambda: _post(
            server, "/snapshot",
            {"action": "save", "path": "cache.snap"}))
        assert status == 400
        assert "disabled" in body["error"]

    def test_path_escape_is_rejected(self, snapshot_server):
        server, _ = snapshot_server
        for evil in ("../outside.snap", "/etc/hostile.snap"):
            status, body = _status_of(lambda: _post(
                server, "/snapshot", {"action": "save", "path": evil}))
            assert status == 400
            assert "snapshot" in body["error"]

    def test_non_snap_extension_is_rejected(self, snapshot_server):
        """The snapshot dir may be an artifact dir — a client must not be
        able to overwrite model.pkl or manifest.json."""
        server, _ = snapshot_server
        for name in ("model.pkl", "manifest.json", "cache"):
            status, body = _status_of(lambda: _post(
                server, "/snapshot", {"action": "save", "path": name}))
            assert status == 400
            assert ".snap" in body["error"]

    def test_fingerprint_mismatch_is_400(self, snapshot_server,
                                         served_scan, tmp_path):
        server_a, _ = snapshot_server
        _post(server_a, "/estimate", {"sql": SQL})
        _post(server_a, "/snapshot",
              {"action": "save", "path": "cache.snap"})

        _, scan_service, _ = served_scan
        server_b, _ = serve_in_background(scan_service, port=0,
                                          snapshot_dir=tmp_path)
        try:
            status, body = _status_of(lambda: _post(
                server_b, "/snapshot",
                {"action": "restore", "path": "cache.snap"}))
        finally:
            server_b.shutdown()
            server_b.server_close()
        assert status == 400
        assert "refusing" in body["error"]

    def test_missing_fields_are_400(self, snapshot_server):
        server, _ = snapshot_server
        status, _ = _status_of(lambda: _post(
            server, "/snapshot", {"action": "save"}))
        assert status == 400
