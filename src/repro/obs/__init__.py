"""Observability layer: metrics, tracing, and accuracy telemetry.

The serving and cluster stack spans five layers (model → session → cache
→ service → cluster workers); this package gives every one of them a
shared, dependency-free instrumentation surface:

- :mod:`repro.obs.metrics` — a **metrics registry** of counters, gauges,
  and histograms with exact streaming percentiles (values quantized to
  three significant figures, so percentiles are exact over the *whole*
  stream in bounded memory, not a recent window).  One registry per
  service absorbs the former ``LatencyStats``/cache-counter one-offs and
  renders itself as Prometheus text (``GET /metrics``) or JSON
  (``GET /v1/stats``).
- :mod:`repro.obs.trace` — **structured tracing**: every request gets a
  trace id and a span tree (parse → session prep → cache lookup →
  per-shard probe fan-out → bound fold).  The trace context propagates
  inside cluster RPC envelopes, so worker-side spans (artifact load,
  probe batches, journal replay, reseed) nest under the driver's request
  span.  Finished traces land in a ring-buffer
  :class:`~repro.obs.trace.TraceLog` (recent + slow queries, served at
  ``GET /v1/traces``) and optionally in a JSONL export file
  (``repro serve --trace-log FILE``).
- :mod:`repro.obs.export` — the Prometheus text exposition renderer and
  a validating parser (the CI scrape check), plus the JSONL trace
  exporter.

Instrumentation is **always on and cheap**: spans are plain objects with
two clock reads, metric updates are one dict operation under a short
lock, and the no-op twins (:data:`NULL_METRICS`, :data:`NULL_TRACER`)
exist so ``benchmarks/bench_obs_overhead.py`` can hold the overhead
under its <5% QPS gate.
"""

from repro.obs.export import (
    JsonlTraceExporter,
    parse_prometheus_text,
    render_prometheus,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    quantize,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceLog,
    Tracer,
    absorb_remote_spans,
    capture_context,
    trace_span,
    use_context,
    wire_context,
)

__all__ = [
    "absorb_remote_spans",
    "capture_context",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlTraceExporter",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "parse_prometheus_text",
    "quantize",
    "render_prometheus",
    "Span",
    "TraceLog",
    "trace_span",
    "Tracer",
    "use_context",
    "wire_context",
]
