"""Distributed fit: shard models fitted in worker processes, ensemble
assembled from shipped statistics.

:func:`~repro.shard.ensemble.fit_shard` is a pure function of
``(config, shard_db, binnings)``, so fitting distributes trivially: the
driver computes the global binnings (the cheap serial prologue),
partitions the database, and ships one
:class:`~repro.cluster.messages.FitShardRequest` per shard to the worker
pool.  Each worker fits its shard, **saves the sub-artifact itself**
(checksum-manifested, optionally gzip-compressed), and ships back only
the shard's mergeable :class:`~repro.shard.ensemble.ShardStats`, pruning
summary, and manifest entry.  The driver merges the statistics — the
same lossless :func:`~repro.shard.ensemble.merged_components` the
in-process fit uses — and writes ``shared.pkl`` plus the ensemble
manifest, **without ever materializing a shard model**: peak driver
memory is one merged statistics set, not ``n_shards`` models.

The resulting artifact is indistinguishable from
``ShardedFactorJoin.fit(...).save(...)`` output: load it with
:func:`~repro.shard.artifact.load_ensemble` for in-process serving or
:meth:`~repro.cluster.model.ClusterModel.from_artifact` for
multi-process serving, and its estimates are bit-identical to the
in-process fit's (same ``fit_shard``, same merge).
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

from repro.cluster.messages import FitShardRequest, FitShardResult
from repro.cluster.pool import WorkerPool
from repro.core.estimator import FactorJoin, FactorJoinConfig
from repro.data.database import Database
from repro.errors import WorkerError
from repro.shard.artifact import _shard_dir, write_ensemble_files
from repro.shard.ensemble import (
    ShardedFactorJoin,
    merged_components,
    shared_payload,
)
from repro.shard.policy import (
    ShardingPolicy,
    make_policy,
    partition_database,
)
from repro.utils import Timer

#: Per-shard fit deadline in seconds.  Fits legitimately run far past
#: the pool's probe deadline; hitting this one means the worker is
#: genuinely wedged, and the shard refits in the driver.
FIT_TIMEOUT = 3600.0


def fit_distributed(config: FactorJoinConfig, database: Database,
                    save: str | Path, *, n_shards: int = 4,
                    policy: ShardingPolicy | str = "hash",
                    workers: int | None = None,
                    pool: WorkerPool | None = None,
                    name: str | None = None,
                    compress: bool = False,
                    inline: bool = False,
                    fit_timeout: float = FIT_TIMEOUT) -> dict:
    """Fit an ``n_shards`` ensemble through worker processes and save it
    to the directory ``save``; returns a JSON-ready summary.

    A worker crash mid-fit falls back to fitting that shard in the
    driver (the fit is pure, so the artifact is identical either way);
    the summary's ``fallback`` field records any degradation.
    """
    save = Path(save)
    policy = (policy if isinstance(policy, ShardingPolicy)
              else make_policy(policy, n_shards))
    shard_config = replace(config, keep_pairwise_joints=True)
    own_pool = pool is None
    if pool is None:
        pool = WorkerPool(min(workers or policy.n_shards, policy.n_shards),
                          inline=inline)
    fallbacks = 0
    try:
        with Timer() as timer:
            binnings = FactorJoin(replace(config)).build_binnings(database)
            shard_dbs = partition_database(database, policy)
            save.mkdir(parents=True, exist_ok=True)
            requests = [
                FitShardRequest(
                    config=shard_config, database=shard_db,
                    binnings=binnings,
                    save_dir=str(save / _shard_dir(index)),
                    name=f"{name or 'ensemble'}-shard{index}",
                    compress=compress)
                for index, shard_db in enumerate(shard_dbs)
            ]
            futures = [pool.submit(pool.owner_of(index), request,
                                   timeout=fit_timeout)
                       for index, request in enumerate(requests)]
            results: list[FitShardResult] = []
            for index, future in enumerate(futures):
                try:
                    results.append(future.result())
                except WorkerError:
                    # the fit is pure: redo this shard in the driver and
                    # let the pool restart the worker for the next one
                    pool.ensure_alive(pool.owner_of(index))
                    fallbacks += 1
                    results.append(_fit_locally(requests[index]))

            stats_list = [result.stats for result in results]
            key_stats, merged_pairs, key_trees, key_joints, supports = (
                merged_components(database.schema, stats_list))
        payload = shared_payload(
            config=config, policy=policy, parallel="process",
            max_workers=pool.n_workers, parallel_fallback=pool.fallback,
            fit_seconds=timer.elapsed, last_update_seconds=0.0,
            shard_fit_seconds=[r.fit_seconds for r in results],
            summaries=tuple(r.summary for r in results),
            key_stats=key_stats, key_trees=key_trees,
            key_joints=key_joints, merged_pairs=merged_pairs,
            supports=supports, db_shell=database.empty_copy())
        shard_entries = [{"dir": _shard_dir(index), **result.entry}
                         for index, result in enumerate(results)]
        write_ensemble_files(
            save, payload, shard_entries,
            kind=(f"{ShardedFactorJoin.__module__}."
                  f"{ShardedFactorJoin.__qualname__}"),
            name=name, policy=policy, schema=database.schema,
            fit_seconds=timer.elapsed, config=config)
    finally:
        if own_pool:
            pool.shutdown()
    return {
        "path": str(save),
        "n_shards": policy.n_shards,
        "policy": policy.kind,
        "workers": pool.n_workers,
        "fit_seconds": timer.elapsed,
        "shard_fit_seconds": [r.fit_seconds for r in results],
        "compress": compress,
        "fallback": pool.fallback,
        "local_refits": fallbacks,
    }


def _fit_locally(request: FitShardRequest) -> FitShardResult:
    """The driver-side fallback: the worker's own fit-and-save
    computation (:func:`~repro.cluster.worker.fit_and_save`), so the
    artifact is identical either way."""
    from repro.cluster.worker import fit_and_save

    return fit_and_save(request)
