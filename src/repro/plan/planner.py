"""Plan selection: a cardinality generator drives the DP optimizer.

One call — :func:`plan_query` — turns a query plus a
:class:`~repro.plan.generator.CardinalityGenerator` into a
:class:`PlanDecision`: the chosen join order, the sub-plan cardinalities
that were injected to choose it, the estimated cost, and the rendered
hint text an external engine would attach to the query.  Equal-cost ties
inside the DP resolve by :func:`~repro.optimizer.dp.plan_order_key`, so
the same generator always yields a bit-identical decision (and therefore
bit-identical hint text).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import coerce_query
from repro.optimizer.cost import C_OUT, CostModel
from repro.optimizer.dp import optimize
from repro.optimizer.plans import JoinPlan
from repro.plan.generator import CardinalityGenerator
from repro.plan.hints import PlanHints, hints_of, render_hints
from repro.sql.query import Query


@dataclass(frozen=True)
class PlanDecision:
    """One planned query: the order chosen, the numbers that chose it,
    and the hint text that would inject both into an external engine."""

    query: Query
    plan: JoinPlan
    estimated_cost: float
    cardinalities: dict
    hints: PlanHints

    def hint_text(self, dialect: str = "pg_hint_plan") -> str:
        """The decision rendered as plan hints (see
        :mod:`repro.plan.hints` for the dialects)."""
        return render_hints(self.hints, dialect)


def plan_query(query: Query | str, generator: CardinalityGenerator,
               cost_model: CostModel = C_OUT) -> PlanDecision:
    """Choose a join order for ``query`` under ``generator``'s estimates.

    The generator's whole sub-plan lattice is fetched in one round trip
    (:meth:`~repro.plan.generator.CardinalityGenerator.prepare`), the DP
    optimizer picks the cheapest order under ``cost_model``, and every
    injected multi-table cardinality inside the plan is rendered into
    the hints — so an engine replanning under those hints prices
    alternative orders with the same estimates.
    """
    query = coerce_query(query)
    cards = generator.prepare(query)
    if len(query.aliases) == 1:
        plan, cost = JoinPlan.leaf(query.aliases[0]), 0.0
    else:
        def probe(aliases: frozenset) -> float:
            value = cards.get(frozenset(aliases))
            if value is not None:
                return value
            return generator.card(query, aliases)

        plan, cost = optimize(query, probe, cost_model)
        # a disconnected join graph probes off-lattice cross products —
        # fold whatever the fallback planner asked for into the hints
        for node in plan.inner_nodes():
            cards.setdefault(frozenset(node.aliases),
                             generator.card(query, node.aliases))
    return PlanDecision(query=query, plan=plan, estimated_cost=cost,
                        cardinalities=cards,
                        hints=hints_of(plan, cards))
