"""Top-k value statistics of a join key (the U-Block baseline's input)."""

from __future__ import annotations

import numpy as np


class TopKStatistics:
    """The ``k`` heaviest values of a key plus a uniform tail summary."""

    def __init__(self, values: np.ndarray, k: int = 64):
        values = np.asarray(values, dtype=np.int64)
        self.total = float(len(values))
        if len(values) == 0:
            self.top_values = np.zeros(0, dtype=np.int64)
            self.top_counts = np.zeros(0)
            self.tail_count = 0.0
            self.tail_ndv = 0
            self.tail_max = 0.0
            return
        distinct, counts = np.unique(values, return_counts=True)
        order = np.argsort(counts)[::-1]
        top = order[:k]
        tail = order[k:]
        self.top_values = distinct[top]
        self.top_counts = counts[top].astype(np.float64)
        # sort top by value for fast intersection
        v_order = np.argsort(self.top_values)
        self.top_values = self.top_values[v_order]
        self.top_counts = self.top_counts[v_order]
        self.tail_count = float(counts[tail].sum())
        self.tail_ndv = int(len(tail))
        self.tail_max = float(counts[tail].max()) if len(tail) else 0.0

    def join_upper_bound(self, other: "TopKStatistics") -> float:
        """Upper bound on the join size of the two keys.

        Matched top values multiply exactly; each side's tail can pair with
        the other side's heaviest remaining multiplicity.
        """
        common, idx_a, idx_b = np.intersect1d(
            self.top_values, other.top_values, return_indices=True)
        bound = float((self.top_counts[idx_a] * other.top_counts[idx_b]).sum())
        max_other = max(other.tail_max,
                        float(other.top_counts.max()) if len(other.top_counts)
                        else 0.0)
        max_self = max(self.tail_max,
                       float(self.top_counts.max()) if len(self.top_counts)
                       else 0.0)
        bound += self.tail_count * max_other
        bound += other.tail_count * max_self
        return bound
