"""Elastic pool: grow/retire workers, shard re-homing, and races between
re-homing and live estimate/update/hot-swap traffic — always
bit-identical, never a mixed state or a dropped in-flight token."""

import threading

import pytest

from repro.cluster import ClusterModel, WorkerServer
from repro.errors import ReproError
from repro.shard import save_shard_artifact
from repro.sql import parse_query
from tests.test_cluster_model import (
    N_SHARDS,
    QUERIES,
    _fit_sharded,
    _insert_batch,
    _refit_shard,
)

N_WORKERS = 2


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    from tests.conftest import build_toy_db

    db = build_toy_db(seed=3)
    path = tmp_path_factory.mktemp("cluster-elastic") / "ensemble"
    _fit_sharded(db).save(path)
    return str(path), db


@pytest.fixture
def cluster(artifact):
    path, db = artifact
    with ClusterModel.from_artifact(path, workers=N_WORKERS) as model:
        yield model, _fit_sharded(db), db


def _owner(model, index):
    return model._require_state().shard_set.model(index).worker_id


class TestGrowAndRehome:
    def test_grow_then_rehome_is_bit_identical(self, cluster):
        model, reference, _ = cluster
        added = model.grow_workers(1)
        assert added == [2]
        assert model.pool.active_workers() == [0, 1, 2]
        info = model.rehome_shard(0, worker_id=2)
        assert info["moved"] and info["worker"] == 2
        assert _owner(model, 0) == 2
        for sql in QUERIES:
            assert model.estimate(parse_query(sql)) == \
                reference.estimate(parse_query(sql))
        # the new worker really owns the state (not a silent fallback)
        health = model.workers_health()
        assert health[2]["alive"] and health[2]["tokens"]

    def test_default_target_is_least_loaded(self, cluster):
        model, _, _ = cluster
        # 3 shards on 2 workers: worker 0 holds shards 0 and 2
        model.grow_workers(1)
        info = model.rehome_shard(0)
        assert info["worker"] == 2  # the empty worker, not worker 1
        info = model.rehome_shard(2)
        assert info["worker"] == 1  # now 1 holds one shard, 2 holds one

    def test_rehome_to_current_owner_is_a_noop(self, cluster):
        model, _, _ = cluster
        owner = _owner(model, 1)
        info = model.rehome_shard(1, worker_id=owner)
        assert info["moved"] is False

    def test_rehome_rejects_bad_targets(self, cluster):
        model, _, _ = cluster
        with pytest.raises(ReproError, match="retired or unknown"):
            model.rehome_shard(0, worker_id=99)
        with pytest.raises(ReproError, match="out of range"):
            model.rehome_shard(99)

    def test_rehome_preserves_journal_and_reseeds(self, cluster):
        """A re-homed shard carries its update journal; a crash of the
        NEW owner replays it there."""
        model, reference, _ = cluster
        batch = _insert_batch()
        model.update("C", batch)
        reference.update("C", batch)
        model.grow_workers(1)
        model.rehome_shard(1, worker_id=2)
        victim = model.pool.workers[2]
        if getattr(victim.transport, "process", None) is not None:
            victim.transport.process.kill()
        for sql in QUERIES:
            assert model.estimate(parse_query(sql)) == \
                reference.estimate(parse_query(sql))
        assert model.workers_health()[2]["tokens"]

    def test_grow_with_tcp_address(self, cluster):
        """A pipe pool grows with an externally managed TCP worker and
        re-homes a shard onto it (same host, plain paths resolve)."""
        model, reference, _ = cluster
        with WorkerServer() as server:
            server.start()
            added = model.grow_workers(
                addresses=[f"{server.address[0]}:{server.address[1]}"])
            assert added == [2]
            model.rehome_shard(0, worker_id=2)
            for sql in QUERIES:
                assert model.estimate(parse_query(sql)) == \
                    reference.estimate(parse_query(sql))
            assert server.worker._slots  # the TCP worker holds the state


class TestShrink:
    def test_shrink_moves_shards_and_retires(self, cluster):
        model, reference, _ = cluster
        model.grow_workers(1)
        info = model.shrink_worker(0)
        assert info["retired"] and info["moved_shards"]
        assert model.pool.active_workers() == [1, 2]
        assert all(_owner(model, i) != 0 for i in range(N_SHARDS))
        health = model.workers_health()
        assert health[0]["retired"] and not health[0]["alive"]
        for sql in QUERIES:
            assert model.estimate(parse_query(sql)) == \
                reference.estimate(parse_query(sql))
        # updates route to the new owners
        batch = _insert_batch()
        model.update("C", batch)
        reference.update("C", batch)
        for sql in QUERIES:
            assert model.estimate(parse_query(sql)) == \
                reference.estimate(parse_query(sql))

    def test_shrink_last_other_worker_is_refused(self, cluster):
        model, _, _ = cluster
        model.shrink_worker(1)
        with pytest.raises(ReproError, match="no other active worker"):
            model.shrink_worker(0)

    def test_retired_worker_probes_fall_back_to_ledger(self, cluster):
        """In-flight tokens on a retired worker are never dropped: a
        probe pinned to them answers from the driver-side ledger,
        bit-identically (no re-home happened here at all)."""
        model, reference, _ = cluster
        query = parse_query(QUERIES[2])
        want = reference.estimate(query)
        assert model.estimate(query) == want
        model.pool.retire(0)  # shards NOT re-homed: tokens stay pinned
        fresh = parse_query(QUERIES[1])  # uncached: forces real probes
        assert model.estimate(fresh) == reference.estimate(fresh)
        assert model.estimate(query) == want

    def test_owner_of_skips_retired_workers(self, cluster):
        model, _, _ = cluster
        pool = model.pool
        before = [pool.owner_of(i) for i in range(N_SHARDS)]
        assert set(before) == {0, 1}
        model.grow_workers(1)
        model.shrink_worker(0)
        after = [pool.owner_of(i) for i in range(N_SHARDS)]
        assert 0 not in after and set(after) <= {1, 2}


class TestElasticRaces:
    def test_rehome_under_concurrent_estimates(self, cluster):
        """Estimates racing a storm of re-homes all equal the single
        reference answer — statistics never change, so any deviation
        would be a mixed state."""
        model, reference, _ = cluster
        model.grow_workers(1)
        query = parse_query(QUERIES[2])
        want = reference.estimate(query)
        stop = threading.Event()
        observed, errors = [], []

        def hammer():
            while not stop.is_set():
                try:
                    observed.append(model.estimate(query))
                except Exception as exc:  # noqa: BLE001 - recorded
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for round_no in range(6):
                for index in range(N_SHARDS):
                    model.rehome_shard(index)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors
        assert observed and set(observed) == {want}

    def test_rehome_races_update_and_hot_swap(self, cluster, tmp_path):
        """Re-homes concurrent with updates and a hot-swap: every
        observed estimate equals one of the published states' answers,
        never a blend, and no token is dropped."""
        model, reference, db = cluster
        model.grow_workers(1)
        query = parse_query(QUERIES[2])
        batch = _insert_batch()
        v0 = reference.estimate(query)
        reference.update("C", batch)
        v1 = reference.estimate(query)
        refit = _refit_shard(db, 1, rows_factor=0.5)
        shard_path = tmp_path / "refresh-elastic"
        save_shard_artifact(refit.model, shard_path, summary=refit.summary)
        reference.hot_swap_shard(1, refit.model, summary=refit.summary)
        v2 = reference.estimate(query)
        allowed = {v0, v1, v2}
        assert len(allowed) == 3  # the race is observable

        stop = threading.Event()
        observed, errors = [], []

        def hammer():
            while not stop.is_set():
                try:
                    observed.append(model.estimate(query))
                except Exception as exc:  # noqa: BLE001 - recorded
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            model.rehome_shard(0)
            model.update("C", batch)
            model.rehome_shard(1)
            model.hot_swap_shard(1, shard_path)
            model.rehome_shard(2)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors
        assert observed and set(observed) <= allowed
        assert model.estimate(query) == v2

    def test_shrink_under_concurrent_estimates(self, cluster):
        model, reference, _ = cluster
        model.grow_workers(2)
        query = parse_query(QUERIES[0])
        want = reference.estimate(query)
        stop = threading.Event()
        observed, errors = [], []

        def hammer():
            while not stop.is_set():
                try:
                    observed.append(model.estimate(query))
                except Exception as exc:  # noqa: BLE001 - recorded
                    errors.append(exc)
                    return

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            model.shrink_worker(0)
            model.shrink_worker(1)
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not errors
        assert observed and set(observed) == {want}
        assert model.pool.active_workers() == [2, 3]
