"""TrueScan estimator: exact single-table statistics computed at query time.

The paper's Table 7 ablation: scanning and filtering the real table gives an
*exact* upper bound input (the probabilistic bound becomes a true bound) at
the cost of high estimation latency.
"""

from __future__ import annotations

import numpy as np

from repro.core.binning import Binning
from repro.data.schema import TableSchema
from repro.data.table import Table
from repro.engine.filter import evaluate_predicate
from repro.errors import NotFittedError
from repro.estimators.base import BaseTableEstimator, register_estimator
from repro.sql.predicates import Predicate, TruePredicate


@register_estimator
class TrueScanEstimator(BaseTableEstimator):
    name = "truescan"

    def __init__(self):
        self._table: Table | None = None
        self._binnings: dict[str, Binning] = {}

    def fit(self, table: Table, schema: TableSchema,
            key_binnings: dict[str, Binning]) -> "TrueScanEstimator":
        self._table = table
        self._binnings = dict(key_binnings)
        return self

    def _require_table(self) -> Table:
        if self._table is None:
            raise NotFittedError("TrueScanEstimator not fitted")
        return self._table

    def estimate_row_count(self, pred: Predicate) -> float:
        table = self._require_table()
        if isinstance(pred, TruePredicate):
            return float(len(table))
        return float(evaluate_predicate(pred, table).sum())

    def key_distribution(self, column: str, pred: Predicate) -> np.ndarray:
        table = self._require_table()
        binning = self._binnings[column]
        mask = evaluate_predicate(pred, table)
        col = table[column]
        mask = mask & ~col.null_mask
        bins = binning.assign(col.values[mask])
        return np.bincount(bins, minlength=binning.n_bins).astype(np.float64)

    def update(self, new_rows: Table) -> None:
        self._table = self._require_table().concat(new_rows)

    def delete(self, deleted_rows: Table) -> None:
        # non-strict: a row deleted twice (or unknown after a reload)
        # simply stops contributing; the scan stays exact for what
        # remains.  Matching goes through the table's cached
        # row-locations map (Table.row_locations): O(batch) lookups
        # after one build per table version — and while this estimator
        # still holds the same Table object as the database view (true
        # right after fit), the matching pass FactorJoin.update already
        # ran for the view is shared here rather than repeated.
        self._table = self._require_table().remove_rows(deleted_rows,
                                                        strict=False)
