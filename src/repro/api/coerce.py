"""The one canonical query-coercion helper.

Every entry point that accepts "a query" — the estimation service, the
HTTP layer, the CLI, warmup replay — used to carry its own ``_as_query``
variant.  They all route here now, so SQL-vs-``Query`` handling, type
validation, and the taxonomy error raised for garbage input are defined
exactly once.
"""

from __future__ import annotations

from repro.sql.query import Query


def coerce_query(query: "Query | str") -> Query:
    """``Query`` passes through; SQL text parses; anything else raises.

    Parse failures raise :class:`~repro.errors.ParseError` (taxonomy code
    ``parse_error``); non-query, non-string input raises ``TypeError``
    (taxonomy code ``invalid_request``).
    """
    if isinstance(query, Query):
        return query
    if isinstance(query, str):
        from repro.sql import parse_query

        return parse_query(query)
    raise TypeError(
        f"expected a Query or a SQL string, got {type(query).__name__}")
