"""Predicate-based shard pruning: skip shards that provably match nothing.

Every shard keeps a tiny per-table summary — row count, per-column
min/max over non-null values, null counts, and (for low-cardinality
columns) the exact distinct-value set.  At estimation time a filter
predicate is tested against the summary; a shard is *excluded* only when
the predicate can be **proved** to select no rows there, so pruning never
changes an answer, it only skips work.  Anything unprovable (LIKE, NOT,
unknown columns, non-numeric bounds) conservatively keeps the shard.

Summaries only ever widen on incremental updates (inserts extend min/max
and distinct sets; deletes leave bounds untouched), so a stale summary is
always on the safe side of the proof.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.column import Column
from repro.data.database import Database
from repro.data.table import Table
from repro.sql.predicates import (
    And,
    Between,
    Comparison,
    In,
    IsNull,
    Predicate,
    TruePredicate,
)

# columns with at most this many distinct non-null values keep the exact
# value set, enabling equality/IN pruning beyond min/max ranges
MAX_TRACKED_DISTINCT = 32


@dataclass(frozen=True)
class ColumnSummary:
    """Provable facts about one column within one shard."""

    non_null_count: int
    null_count: int
    minimum: float | None = None
    maximum: float | None = None
    values: frozenset | None = None

    @classmethod
    def of(cls, column: Column) -> "ColumnSummary":
        non_null = column.non_null_values()
        null_count = int(column.null_mask.sum())
        if len(non_null) == 0:
            return cls(0, null_count)
        minimum = maximum = None
        try:
            minimum = float(non_null.min())
            maximum = float(non_null.max())
        except (TypeError, ValueError):
            pass  # non-orderable (string) columns: no range pruning
        values = None
        distinct = np.unique(non_null)
        if len(distinct) <= MAX_TRACKED_DISTINCT:
            values = frozenset(distinct.tolist())
        return cls(len(non_null), null_count, minimum, maximum, values)

    def widened_by(self, column: Column) -> "ColumnSummary":
        """Summary after inserting ``column``'s rows (bounds only grow)."""
        other = ColumnSummary.of(column)
        values = None
        if self.values is not None and other.non_null_count == 0:
            values = self.values
        elif self.values is not None and other.values is not None:
            merged = self.values | other.values
            if len(merged) <= MAX_TRACKED_DISTINCT:
                values = merged
        return ColumnSummary(
            self.non_null_count + other.non_null_count,
            self.null_count + other.null_count,
            _opt_min(self.minimum, other.minimum),
            _opt_max(self.maximum, other.maximum),
            values,
        )


def _opt_min(a, b):
    return b if a is None else (a if b is None else min(a, b))


def _opt_max(a, b):
    return b if a is None else (a if b is None else max(a, b))


@dataclass(frozen=True)
class TableSummary:
    """Per-shard facts about one table."""

    row_count: int
    columns: dict[str, ColumnSummary] = field(default_factory=dict)

    @classmethod
    def of(cls, table: Table) -> "TableSummary":
        return cls(len(table),
                   {c.name: ColumnSummary.of(c) for c in table.columns})

    def after_insert(self, rows: Table) -> "TableSummary":
        columns = {
            name: (summary.widened_by(rows[name]) if name in rows
                   else summary)
            for name, summary in self.columns.items()
        }
        return TableSummary(self.row_count + len(rows), columns)

    def after_delete(self, rows: Table, remaining_rows: int | None = None
                     ) -> "TableSummary":
        """Summary after a delete: bounds stay (conservative), the row
        count shrinks only when the caller supplies one.

        Callers must pass a remaining count that is a *proven floor* —
        never 0 unless the shard is provably empty (non-strict deletes
        tolerate absent rows, so approximate estimators can under-count;
        a summary claiming false emptiness would make pruning exclude a
        shard that still has rows).
        """
        if remaining_rows is None:
            return self
        return TableSummary(remaining_rows, self.columns)


@dataclass(frozen=True)
class ShardSummary:
    """All table summaries of one shard (the pruning index)."""

    tables: dict[str, TableSummary] = field(default_factory=dict)

    @classmethod
    def of(cls, database: Database) -> "ShardSummary":
        return cls({name: TableSummary.of(database.table(name))
                    for name in database.table_names})

    def table(self, name: str) -> TableSummary | None:
        return self.tables.get(name)


def predicate_excludes(pred: Predicate, summary: TableSummary) -> bool:
    """True only when ``pred`` provably matches no row of the shard.

    Unknown predicate classes, unknown columns, and columns without
    range information all return False (keep the shard).
    """
    if summary.row_count == 0:
        return True
    return _excludes(pred, summary)


def _excludes(pred: Predicate, summary: TableSummary) -> bool:
    if isinstance(pred, TruePredicate):
        return False
    if isinstance(pred, And):
        return any(_excludes(child, summary) for child in pred.children)
    # Or is imported lazily to keep the explicit-class dispatch below
    from repro.sql.predicates import Or

    if isinstance(pred, Or):
        return bool(pred.children) and all(
            _excludes(child, summary) for child in pred.children)
    if isinstance(pred, IsNull):
        col = summary.columns.get(pred.column)
        if col is None:
            return False
        if pred.negated:  # IS NOT NULL matches nothing iff all-NULL
            return col.non_null_count == 0
        return col.null_count == 0
    if isinstance(pred, Comparison):
        return _comparison_excludes(pred, summary)
    if isinstance(pred, Between):
        col = summary.columns.get(pred.column)
        if col is None or col.non_null_count == 0:
            return col is not None
        low, high = _as_float(pred.low), _as_float(pred.high)
        if low is None or high is None or col.minimum is None:
            return False
        return high < col.minimum or low > col.maximum
    if isinstance(pred, In):
        col = summary.columns.get(pred.column)
        if col is None:
            return False
        if col.non_null_count == 0:
            return True
        if col.values is not None:
            return not any(_in_values(v, col.values) for v in pred.values)
        if col.minimum is None:
            return False
        floats = [_as_float(v) for v in pred.values]
        if any(f is None for f in floats):
            return False
        return all(f < col.minimum or f > col.maximum for f in floats)
    return False  # LIKE, NOT, anything unknown: cannot prove emptiness


def _comparison_excludes(pred: Comparison, summary: TableSummary) -> bool:
    col = summary.columns.get(pred.column)
    if col is None:
        return False
    if col.non_null_count == 0:
        return True  # comparisons never match NULL
    if pred.op == "=" and col.values is not None:
        return not _in_values(pred.value, col.values)
    value = _as_float(pred.value)
    if value is None or col.minimum is None:
        return False
    if pred.op == "=":
        return value < col.minimum or value > col.maximum
    if pred.op == "<":
        return col.minimum >= value
    if pred.op == "<=":
        return col.minimum > value
    if pred.op == ">":
        return col.maximum <= value
    if pred.op == ">=":
        return col.maximum < value
    if pred.op == "!=":
        return col.minimum == col.maximum == value
    return False


def _in_values(value, values: frozenset) -> bool:
    if value in values:
        return True
    as_float = _as_float(value)
    if as_float is None:
        return False
    return any(_as_float(v) == as_float for v in values)


def _as_float(value) -> float | None:
    if isinstance(value, bool) or not isinstance(
            value, (int, float, np.integer, np.floating)):
        return None
    return float(value)
